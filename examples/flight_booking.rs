//! The motivating scenario of §1.3, end to end: a replicated flight
//! booking system keeps selling tickets in *both* halves of a network
//! partition; reconciliation detects the overbooking (85 sold / 80
//! seats) and the application rebooks five passengers.
//!
//! Also demonstrates dynamic (algorithmic) threat negotiation and the
//! §5.5.2 partition-sensitive variant that avoids the inconsistency
//! altogether.
//!
//! Run with: `cargo run --example flight_booking`

use dedisys_apps::flight::{
    booking_cluster, create_flight, flight_app, flight_methods,
    partition_sensitive_ticket_constraint, sell_tickets,
};
use dedisys_core::nodes;
use dedisys_core::{ClusterBuilder, ReconOps, ThreatDecision, ViolationReport};
use dedisys_types::{NodeId, Result, Value};

fn main() -> Result<()> {
    plain_ticket_constraint_scenario()?;
    partition_sensitive_scenario()?;
    Ok(())
}

fn plain_ticket_constraint_scenario() -> Result<()> {
    println!("=== §1.3: trading integrity for availability ===");
    let mut cluster = booking_cluster(4)?;
    let flight = create_flight(&mut cluster, NodeId(0), "LH-441", 80, 70)?;
    println!("healthy: flight LH-441 with 80 seats, 70 sold");

    // Partition: {0,1} (side A) vs {2,3} (side B).
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    println!("partition: {}", cluster.topology());

    // Side A registers a dynamic negotiation handler for its sale —
    // accept anything but attach booking data for reconciliation.
    let mut session = cluster.session(NodeId(0));
    session.register_negotiation_handler(Box::new(
        |threat: &mut dedisys_core::ConsistencyThreat| {
            threat.app_data = Some(Value::from("sold by agent A"));
            println!(
                "  [negotiation] {} is {} — accepting",
                threat.constraint, threat.degree
            );
            ThreatDecision::Accept
        },
    ));
    let f = flight.clone();
    session.invoke(&f, "sellTickets", vec![Value::Int(7)])?;
    session.commit()?;
    println!("side A: sold 7 (77/80 on its copies)");

    sell_tickets(&mut cluster, NodeId(2), &flight, 8)?;
    println!("side B: sold 8 (78/80 on its copies)");

    // Reunification.
    cluster.heal();
    println!("healed — reconciling…");

    // Replica reconciliation: sales are increments, so merge them.
    let mut merge_sales = |conflict: &dedisys_core::ReplicaConflict| {
        let healthy_sold = 70;
        let total: i64 = conflict
            .candidates
            .iter()
            .filter_map(|(_, s)| s.as_ref())
            .filter_map(|s| s.field("sold").as_int())
            .map(|sold| sold - healthy_sold)
            .sum();
        let mut merged = conflict.candidates[0].1.clone().expect("live state");
        merged.set_field(
            "sold",
            Value::Int(healthy_sold + total),
            dedisys_types::SimTime::ZERO,
        );
        println!(
            "  [replica handler] merged sales: {} total",
            healthy_sold + total
        );
        Some(merged)
    };
    // Constraint reconciliation: rebook the surplus passengers.
    let flight_for_fix = flight.clone();
    let mut rebook = move |violation: &ViolationReport, ops: &mut ReconOps<'_>| {
        let sold = ops.read(&flight_for_fix, "sold").unwrap().as_int().unwrap();
        let seats = ops
            .read(&flight_for_fix, "seats")
            .unwrap()
            .as_int()
            .unwrap();
        println!(
            "  [reconciliation handler] {} violated: {sold} sold / {seats} seats — rebooking {}",
            violation.identity.constraint,
            sold - seats
        );
        ops.write(&flight_for_fix, "sold", Value::Int(seats))
            .unwrap();
        true
    };
    let summary = cluster.reconcile(&mut merge_sales, &mut rebook);
    println!(
        "summary: {} conflict(s), {} violation(s), {} resolved by handler",
        summary.replica.conflicts.len(),
        summary.constraints.violations,
        summary.constraints.resolved_by_handler
    );
    println!(
        "final: {} sold / 80 seats, mode = {}\n",
        cluster.entity_on(NodeId(3), &flight).unwrap().field("sold"),
        cluster.mode()
    );
    Ok(())
}

fn partition_sensitive_scenario() -> Result<()> {
    println!("=== §5.5.2: partition-sensitive ticket constraint ===");
    let mut cluster = ClusterBuilder::new(4, flight_app())
        .methods(flight_methods())
        .constraint(partition_sensitive_ticket_constraint())
        .build()?;
    let flight = create_flight(&mut cluster, NodeId(0), "LH-441", 80, 70)?;
    cluster.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    println!("partition: each side holds weight 1/2 → 5 of the 10 remaining tickets");

    for node in [NodeId(0), NodeId(2)] {
        let sold = sell_tickets(&mut cluster, node, &flight, 5);
        println!(
            "  {node}: sell 5 → {:?}",
            sold.map(|s| format!("ok ({s} on local copy)"))
        );
        let denied = sell_tickets(&mut cluster, node, &flight, 1);
        println!("  {node}: sell 1 more → {}", denied.unwrap_err());
    }
    println!("no overbooking possible: 70 + 5 + 5 = 80 = seats");
    Ok(())
}
