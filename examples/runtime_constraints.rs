//! Explicit *runtime* management of integrity constraints (§2.1.4):
//! constraints loaded from a deployment descriptor, then added,
//! disabled, re-enabled and removed while the system runs — the
//! capability that motivates the repository-based design despite its
//! overhead (Chapter 2).
//!
//! Run with: `cargo run --example runtime_constraints`

use dedisys_constraints::{ConstraintConfigSet, ImplRegistry};
use dedisys_core::ClusterBuilder;
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{ConstraintName, NodeId, ObjectId, Result, Value};

/// The deployment descriptor (the Listing 4.1 equivalent, as JSON).
const DESCRIPTOR: &str = r#"{
  "constraints": [
    {
      "name": "StockNonNegative",
      "type": "HARD",
      "priority": "RELAXABLE",
      "minSatisfactionDegree": "POSSIBLY_SATISFIED",
      "contextClass": "Warehouse",
      "expr": "self.stock >= 0",
      "affectedMethods": [
        { "class": "Warehouse", "method": "setStock",
          "preparation": { "kind": "calledObject" } }
      ]
    },
    {
      "name": "StockBelowCapacity",
      "type": "HARD",
      "contextClass": "Warehouse",
      "expr": "self.stock <= self.capacity",
      "affectedMethods": [
        { "class": "Warehouse", "method": "setStock",
          "preparation": { "kind": "calledObject" } }
      ]
    }
  ]
}"#;

fn main() -> Result<()> {
    let app = AppDescriptor::new("inventory").with_class(
        ClassDescriptor::new("Warehouse")
            .with_field("stock", Value::Int(0))
            .with_field("capacity", Value::Int(100)),
    );

    // Load constraints from the descriptor at deployment (§4.2.2).
    let configs = ConstraintConfigSet::from_json(DESCRIPTOR)?;
    let constraints = configs.resolve(&ImplRegistry::new())?;
    println!(
        "deployed {} constraints from the descriptor",
        constraints.len()
    );

    let mut cluster = ClusterBuilder::new(2, app)
        .constraints(constraints)
        .build()?;
    let wh = ObjectId::new("Warehouse", "W1");
    let node = NodeId(0);
    cluster.run_tx(node, |c, tx| {
        c.create(node, tx, EntityState::for_class(c.app(), &wh)?)
    })?;

    // Both constraints enforce.
    let too_much = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &wh, "stock", Value::Int(150))
    });
    println!("stock=150 → {}", too_much.unwrap_err());

    // Disable the capacity constraint at runtime (e.g. for a bulk
    // import, cf. [OCS01] in §6.2) …
    let capacity = ConstraintName::from("StockBelowCapacity");
    cluster.set_constraint_enabled(&capacity, false)?;
    cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &wh, "stock", Value::Int(150))
    })?;
    println!("constraint disabled: stock=150 accepted");

    // … re-enable it, and watch it bite again.
    cluster.set_constraint_enabled(&capacity, true)?;
    let still_over = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &wh, "stock", Value::Int(160))
    });
    println!(
        "constraint re-enabled: stock=160 → {}",
        still_over.unwrap_err()
    );

    // Remove it entirely.
    cluster.remove_constraint(&capacity);
    cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &wh, "stock", Value::Int(160))
    })?;
    println!("constraint removed: stock=160 accepted");
    println!(
        "repository now holds {} constraint(s); lookup stats: {:?}",
        cluster.repository().len(),
        cluster.repository().stats()
    );
    Ok(())
}
