//! The distributed alarm tracking system (ATS) of §1.4 / Figure 1.5.
//!
//! Administrative operators (managing alarms) and technical operators
//! (filing repair reports) work at different locations against
//! different servers. A network split between those servers must not
//! stop either of them — the `ComponentKindReferenceConsistency`
//! constraint is traded during the split and re-evaluated afterwards.
//!
//! Run with: `cargo run --example alarm_tracking`

use dedisys_apps::ats::{ats_cluster, create_alarm_with_report};
use dedisys_core::nodes;
use dedisys_core::{DeferAll, HighestVersionWins};
use dedisys_types::{NodeId, Result, Value};

fn main() -> Result<()> {
    let mut cluster = ats_cluster(2)?;
    let admin = NodeId(0); // administrative operators' server
    let tech = NodeId(1); // technical operators' server

    let (alarm, report) = create_alarm_with_report(&mut cluster, admin, "A-17")?;
    println!("healthy: alarm A-17 (kind=Signal) with linked repair report");

    // Healthy mode: an inconsistent repair is rejected outright.
    let bad = cluster.run_tx(tech, |c, tx| {
        c.set_field(tech, tx, &report, "componentKind", Value::from("Fuse"))
    });
    println!(
        "healthy: repairing a Signal alarm with a Fuse → {}",
        bad.unwrap_err()
    );

    // The split between the two sites.
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    println!("\nsplit between the sites: {}", cluster.topology());

    // Admin changes the alarm kind on its side…
    cluster.run_tx(admin, |c, tx| {
        c.set_field(admin, tx, &alarm, "alarmKind", Value::from("Power"))
    })?;
    println!("admin side: alarmKind → Power (threat accepted)");

    // …while the technician — still seeing the stale "Signal" alarm —
    // files a Fuse repair. Locally this looks *possibly violated*, but
    // the ATS policy accepts it: the technician knows the component.
    cluster.run_tx(tech, |c, tx| {
        c.set_field(tech, tx, &report, "componentKind", Value::from("Fuse"))
    })?;
    println!("tech side: componentKind → Fuse (possibly-violated threat accepted)");
    println!(
        "stored threats: {} identity/ies from {} accepted threat(s)",
        cluster.threats().identities().len(),
        cluster.stats().ccm.threats_accepted
    );

    // Repair the link; reconciliation discovers that the merged state
    // (Power alarm + Fuse component) actually satisfies the constraint.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    println!(
        "\nreconciled: {} re-evaluated, {} satisfied (removed), {} violation(s)",
        summary.constraints.re_evaluated,
        summary.constraints.satisfied_removed,
        summary.constraints.violations
    );
    println!(
        "final state: alarmKind={} componentKind={} — no inconsistency to clean up",
        cluster.entity_on(admin, &alarm).unwrap().field("alarmKind"),
        cluster
            .entity_on(admin, &report)
            .unwrap()
            .field("componentKind"),
    );
    Ok(())
}
