//! The distributed telecommunication management system (DTMS) of
//! §1.4 — the dissertation's primary motivating application.
//!
//! Channel endpoints are *bound* to their site's node (strong
//! ownership, no cross-site replication), so a partition makes the
//! peer genuinely unreachable: constraint checks become `uncheckable`
//! (NCC) rather than merely unreliable (LCC).
//!
//! Run with: `cargo run --example telecom_channels`

use dedisys_apps::dtms::{create_channel, dtms_cluster, retune};
use dedisys_core::nodes;
use dedisys_core::{HighestVersionWins, ReconOps, ViolationReport};
use dedisys_types::{NodeId, Result, SatisfactionDegree, Value};

fn main() -> Result<()> {
    let mut cluster = dtms_cluster(3)?;
    let vienna = NodeId(0);
    let graz = NodeId(1);

    let (ep_v, ep_g) = create_channel(&mut cluster, "tower-ops", vienna, graz, 121_500)?;
    println!("channel 'tower-ops': endpoints bound to Vienna (n0) and Graz (n1), 121.500 MHz");

    // Coordinated retune within one transaction: allowed (soft
    // constraint validates at commit, when both ends agree again).
    cluster.run_tx(vienna, |c, tx| {
        c.set_field(vienna, tx, &ep_v, "frequency", Value::Int(122_000))?;
        c.set_field(vienna, tx, &ep_g, "frequency", Value::Int(122_000))
    })?;
    println!("healthy: coordinated retune to 122.000 MHz committed");

    // Lone retune: violates at commit.
    let lone = retune(&mut cluster, vienna, &ep_v, 123_000);
    println!("healthy: lone retune rejected: {}", lone.unwrap_err());

    // Vienna loses its link to the other sites.
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    println!("\nVienna isolated: {}", cluster.topology());

    // The Graz endpoint is unreachable from Vienna — the constraint is
    // uncheckable (NCC), accepted per the DTMS policy so the site
    // stays operable.
    retune(&mut cluster, vienna, &ep_v, 123_000)?;
    let threat = &cluster.threats().threats()[0];
    println!(
        "degraded: Vienna retuned to 123.000 MHz — threat degree = {} (peer unreachable)",
        threat.degree
    );
    assert_eq!(threat.degree, SatisfactionDegree::Uncheckable);

    // Repair: reconciliation re-validates with full reach and finds the
    // real violation; the operator fixes it by retuning Graz.
    cluster.heal();
    let ep_g_fix = ep_g.clone();
    let mut fix = move |violation: &ViolationReport, ops: &mut ReconOps<'_>| {
        println!(
            "  [reconciliation] {} violated — retuning the Graz endpoint to match",
            violation.identity.constraint
        );
        ops.write(&ep_g_fix, "frequency", Value::Int(123_000))
            .unwrap();
        true
    };
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut fix);
    println!(
        "reconciled: {} violation(s), {} resolved immediately",
        summary.constraints.violations, summary.constraints.resolved_by_handler
    );
    println!(
        "final: Vienna={} Hz, Graz={} Hz",
        cluster.entity_on(vienna, &ep_v).unwrap().field("frequency"),
        cluster.entity_on(graz, &ep_g).unwrap().field("frequency"),
    );
    Ok(())
}
