//! Negotiation callbacks for Web clients (§4.5, Figure 4.8).
//!
//! HTTP cannot call back into a browser, so the negotiation request is
//! shipped as the *response* to the business request, the user's
//! decision arrives as a *new request*, and the business result rides
//! on that request's response. This example plays the browser side of
//! the flight-booking front-end.
//!
//! Run with: `cargo run --example web_negotiation`

use dedisys_apps::flight::{booking_cluster, create_flight};
use dedisys_core::nodes;
use dedisys_core::web::{WebDecision, WebGateway, WebResponse};
use dedisys_types::{NodeId, Result, Value};
use std::sync::{Arc, Mutex};

fn main() -> Result<()> {
    let mut cluster = booking_cluster(2)?;
    let flight = create_flight(&mut cluster, NodeId(0), "LH-441", 80, 78)?;
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    println!("degraded flight-booking system; browser talks to node 0\n");

    let mut gateway = WebGateway::new(Arc::new(Mutex::new(cluster)), NodeId(0));

    // Browser: POST /buy?flight=LH-441&count=1
    println!("browser → POST /buy (1 ticket)");
    let f = flight.clone();
    let response = gateway
        .submit(move |c, tx| c.invoke(NodeId(0), tx, &f, "sellTickets", vec![Value::Int(1)]));

    // Server: the HTTP response carries a negotiation request.
    let (id, threat) = match response {
        WebResponse::NegotiationRequired {
            negotiation_id,
            threat,
        } => (negotiation_id, threat),
        WebResponse::BusinessResult(r) => {
            println!("unexpected direct result: {r:?}");
            return Ok(());
        }
    };
    println!(
        "server → 200 OK with negotiation form: constraint '{}' is {} — proceed?",
        threat.constraint, threat.degree
    );

    // Browser: the user clicks "yes" → POST /negotiate?id=…&accept=1
    println!("browser → POST /negotiate (accept)");
    let response = gateway.decide(id, WebDecision { accept: true });
    match response {
        WebResponse::BusinessResult(Ok(total)) => {
            println!("server → 200 OK: ticket sold, {total} seats now taken");
        }
        other => println!("server → {other:?}"),
    }

    let cluster = gateway.cluster();
    let cluster = cluster.lock().unwrap();
    println!(
        "\nserver state: sold={} threats stored={}",
        cluster.entity_on(NodeId(0), &flight).unwrap().field("sold"),
        cluster.threats().len()
    );
    Ok(())
}
