//! Quickstart: explicit runtime integrity constraints in five minutes.
//!
//! Builds a three-node cluster, deploys a class with a declarative
//! constraint, watches the middleware enforce it in healthy mode,
//! trade it during a partition, and re-establish consistency during
//! reconciliation.
//!
//! Run with: `cargo run --example quickstart`

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::{ClusterBuilder, DeferAll, HighestVersionWins};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, Result, SatisfactionDegree, Value};
use std::sync::Arc;

fn main() -> Result<()> {
    // 1. The application model: an account that must never overdraw.
    let app = AppDescriptor::new("bank").with_class(
        ClassDescriptor::new("Account")
            .with_field("balance", Value::Int(0))
            .with_field("limit", Value::Int(0)),
    );

    // 2. The integrity constraint — explicit, declarative, tradeable
    //    during degraded mode down to "possibly satisfied".
    let no_overdraft = RegisteredConstraint::new(
        ConstraintMeta::new("NoOverdraft")
            .tradeable(SatisfactionDegree::PossiblySatisfied)
            .describe("balance must not fall below the limit"),
        Arc::new(ExprConstraint::parse("self.balance >= self.limit")?),
    )
    .context_class("Account")
    .affects("Account", "setBalance", ContextPreparation::CalledObject);

    // 3. A three-node replicated cluster (primary-per-partition).
    let mut cluster = ClusterBuilder::new(3, app)
        .constraint(no_overdraft)
        .build()?;
    let account = ObjectId::new("Account", "alice");
    let node = NodeId(0);

    cluster.run_tx(node, |c, tx| {
        c.create(node, tx, EntityState::for_class(c.app(), &account)?)?;
        c.set_field(node, tx, &account, "limit", Value::Int(-100))?;
        c.set_field(node, tx, &account, "balance", Value::Int(50))
    })?;
    println!("healthy: balance set to 50 — replicated to all 3 nodes");

    // Healthy mode: a violating write aborts the transaction.
    let overdraw = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &account, "balance", Value::Int(-200))
    });
    println!("healthy: overdraw rejected: {}", overdraw.unwrap_err());

    // 4. Degraded mode: a partition splits the cluster; both sides stay
    //    available, trading consistency threats.
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    println!(
        "\npartition installed: {:?} — mode = {}",
        cluster.topology(),
        cluster.mode()
    );
    cluster.run_tx(NodeId(0), |c, tx| {
        c.set_field(NodeId(0), tx, &account, "balance", Value::Int(20))
    })?;
    cluster.run_tx(NodeId(1), |c, tx| {
        c.set_field(NodeId(1), tx, &account, "balance", Value::Int(10))
    })?;
    println!(
        "degraded: both partitions wrote; {} consistency threat(s) stored",
        cluster.threats().identities().len()
    );

    // 5. Reconciliation: repair the network and re-establish replica
    //    and constraint consistency.
    cluster.heal();
    let summary = cluster.reconcile(&mut HighestVersionWins, &mut DeferAll);
    println!(
        "\nreconciled: {} replica conflict(s), {} threat(s) re-evaluated, {} violation(s)",
        summary.replica.conflicts.len(),
        summary.constraints.re_evaluated,
        summary.constraints.violations,
    );
    println!(
        "final balance everywhere: {}",
        cluster
            .entity_on(NodeId(2), &account)
            .unwrap()
            .field("balance")
    );
    println!("mode = {}", cluster.mode());
    Ok(())
}
