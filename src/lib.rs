//! Facade crate re-exporting the DeDiSys-RS workspace.
pub use dedisys_core as core;
pub use dedisys_federation as federation;
pub use dedisys_telemetry as telemetry;
