//! # dedisys-federation
//!
//! The sharded federation layer: many independent [`Cluster`]s
//! ("shards") behind one deterministic router, scaling the paper's
//! per-constraint availability/consistency trade to deployments where
//! partitions and degraded modes differ *per shard*.
//!
//! * [`ShardMap`] — a deterministic consistent-hash ring with virtual
//!   nodes. `shard_of(ObjectId)` is total and seed-stable; explicit
//!   [`ShardMap::plan_rebalance`] produces typed [`MigrationStep`]s
//!   that [`FederatedCluster::rebalance`] executes over the core
//!   WAL/state-transfer path.
//! * [`FederatedCluster`] — N shards built on **one shared virtual
//!   clock and seed**, so cross-shard timelines (2PC deadlines,
//!   detector heartbeats, trace timestamps) stay mutually consistent
//!   and every run is byte-deterministic.
//! * Cross-shard transactions — a federation coordinator drives the
//!   per-shard `prepare`/in-doubt/presumed-abort machinery across
//!   shards (`xshard_begin` → stage → `xshard_prepare` →
//!   `xshard_commit`), with coordinator-crash recovery
//!   ([`FederatedCluster::crash_coordinator`] +
//!   [`FederatedCluster::resolve_xshard_in_doubt`]) and an
//!   all-or-nothing outcome record per transaction.
//! * Federated modes — per-shard [`SystemMode`] summarized as a
//!   [`FederationMode`], with a [`RoutingPolicy`]
//!   (`RejectDegraded` / `RouteAnyway` / `Sticky`) applied at routing
//!   time and pushed into each shard's
//!   [`RequestPlane`](dedisys_core::RequestPlane) admission via
//!   [`ModeGate`](dedisys_core::ModeGate).
//!
//! Telemetry: `shard_routed`, `shard_migrated`, `xshard_prepared` and
//! `xshard_resolved` events on the federation bus plus `federation.*`
//! metrics; `repro shard-sweep` drives the goodput / cross-shard
//! abort-rate table.

mod federated;
mod shard_map;

pub use federated::{
    FederatedCluster, FederationBuilder, FederationMode, FederationStats, MigrationReport,
    RoutingPolicy, XShardOutcome,
};
pub use shard_map::{MigrationStep, RebalancePlan, ShardId, ShardMap};

// Re-exported so federation users need not depend on dedisys-core for
// the common construction path.
pub use dedisys_core::Cluster;
pub use dedisys_types::SystemMode;
