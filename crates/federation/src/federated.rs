//! The federated cluster: N shards, one virtual clock, one router.
//!
//! See the crate docs for the subsystem overview. Everything here is
//! synchronous and deterministic: shards are stepped by the caller,
//! all randomness lives in the caller's seed, and the federation's own
//! telemetry bus shares the one [`SimClock`] every shard runs on.

use crate::shard_map::{MigrationStep, RebalancePlan, ShardId, ShardMap};
use dedisys_core::{Cluster, ClusterBuilder, ClusterConfig, ModeGate, RequestPlane, Session};
use dedisys_net::SimClock;
use dedisys_object::{AppDescriptor, EntityState};
use dedisys_telemetry::{Telemetry, TraceEvent};
use dedisys_types::{
    Error, NodeId, ObjectId, PriorityClass, Result, SimDuration, SimTime, SystemMode, TxId, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// How the router treats a request whose target shard is not in
/// [`SystemMode::Healthy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum RoutingPolicy {
    /// Consistency-first: refuse the request at the router (and at
    /// each shard plane's admission, via
    /// [`ModeGate::RejectUnlessHealthy`]) while the target shard is
    /// degraded or reconciling.
    RejectDegraded,
    /// Availability-first: route regardless of the target shard's
    /// mode; degraded shards serve with threatened consistency, as in
    /// the single-cluster trade.
    #[default]
    RouteAnyway,
    /// Availability plus routing stability: the first successful route
    /// pins the object to its shard, and later requests follow the pin
    /// even across map changes — until an explicit migration re-pins
    /// it. Degraded pinned shards still serve.
    Sticky,
}

/// The per-shard [`SystemMode`]s folded into one federation summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum FederationMode {
    /// Every shard is healthy.
    Healthy,
    /// Some shards are degraded or reconciling.
    PartiallyDegraded {
        /// Shards not in `Healthy` mode.
        degraded: u32,
        /// Total shards.
        total: u32,
    },
    /// No shard is healthy.
    Degraded,
}

/// Federation-level counters (also mirrored as `federation.*` metrics
/// on the federation telemetry bus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FederationStats {
    /// Routing decisions taken (admitted or not).
    pub routed: u64,
    /// Requests refused by the `RejectDegraded` policy at the router.
    pub rejected_degraded: u64,
    /// Objects migrated between shards by explicit rebalances.
    pub migrated: u64,
    /// Cross-shard transactions begun.
    pub xshard_begun: u64,
    /// Cross-shard transactions that reached the prepared state on
    /// every participant.
    pub xshard_prepared: u64,
    /// Cross-shard transactions committed on every participant.
    pub xshard_committed: u64,
    /// Cross-shard transactions aborted (explicitly, by a failed
    /// prepare, or by presumed abort).
    pub xshard_aborted: u64,
    /// Aborts that came from federation-level presumed-abort recovery.
    pub xshard_presumed_aborted: u64,
}

/// The recorded fate of one finished cross-shard transaction — the
/// all-or-nothing evidence the chaos invariant checker audits.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct XShardOutcome {
    /// Whether every participant committed (`false`: every participant
    /// rolled back or is resolving to rollback via shard-level
    /// presumed abort).
    pub committed: bool,
    /// Whether the abort came from federation-level presumed-abort
    /// recovery after a coordinator crash.
    pub presumed_abort: bool,
    /// The per-shard participant transactions.
    pub participants: Vec<(ShardId, TxId)>,
}

/// What [`FederatedCluster::rebalance`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationReport {
    /// Objects whose committed state moved.
    pub migrated: u64,
    /// Steps skipped because a participant shard had crashed nodes or
    /// the object was locked — re-plan once the fault clears.
    pub deferred: Vec<MigrationStep>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XState {
    Staging,
    Prepared,
    /// Prepared everywhere, then the federation coordinator crashed:
    /// waiting for the presumed-abort deadline.
    InDoubt {
        deadline: SimTime,
    },
}

#[derive(Debug)]
struct OpenXTx {
    state: XState,
    /// Shard → (coordinator node, participant transaction).
    participants: BTreeMap<u32, (NodeId, TxId)>,
}

/// A shard-configuration hook applied to every shard before build.
type ConfigureHook = Box<dyn Fn(&mut ClusterConfig)>;

/// Builder for [`FederatedCluster`].
pub struct FederationBuilder {
    shards: u32,
    nodes_per_shard: u32,
    app: AppDescriptor,
    vnodes: u32,
    seed: u64,
    policy: RoutingPolicy,
    xshard_timeout: SimDuration,
    configure: Option<ConfigureHook>,
}

impl FederationBuilder {
    /// Virtual nodes per shard on the consistent-hash ring
    /// (default: 32).
    pub fn vnodes(mut self, vnodes: u32) -> Self {
        self.vnodes = vnodes;
        self
    }

    /// Seeds the ring hash (default: 0). Same seed ⇒ identical
    /// placement.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the degraded-shard routing policy (default:
    /// [`RoutingPolicy::RouteAnyway`]).
    pub fn policy(mut self, policy: RoutingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Presumed-abort deadline for cross-shard transactions whose
    /// federation coordinator crashed (default: 50 virtual ms).
    pub fn xshard_timeout(mut self, timeout: SimDuration) -> Self {
        self.xshard_timeout = timeout;
        self
    }

    /// Applies `f` to every shard's [`ClusterConfig`] before build.
    pub fn configure(mut self, f: impl Fn(&mut ClusterConfig) + 'static) -> Self {
        self.configure = Some(Box::new(f));
        self
    }

    /// Builds the federation: every shard on one shared clock, one
    /// request plane per shard, and the federation telemetry bus on
    /// the same clock.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for zero shards/nodes or an invalid
    /// shard config.
    pub fn build(self) -> Result<FederatedCluster> {
        let map = ShardMap::new(self.shards, self.vnodes, self.seed)?;
        let clock = SimClock::new();
        let telemetry = Telemetry::new(clock.clone());
        let mut shards = Vec::with_capacity(self.shards as usize);
        let mut planes = Vec::with_capacity(self.shards as usize);
        for shard in 0..self.shards {
            let mut builder = ClusterBuilder::new(self.nodes_per_shard, self.app.clone())
                .clock(clock.clone())
                .configure(|c| {
                    // Distinct per-shard membership seeds keep detector
                    // draws independent while still derived from the
                    // one federation seed.
                    c.membership.seed = self.seed.wrapping_add(u64::from(shard));
                });
            if let Some(f) = &self.configure {
                builder = builder.configure(f);
            }
            shards.push(builder.build()?);
            let mut plane = RequestPlane::new();
            if self.policy == RoutingPolicy::RejectDegraded {
                plane.set_mode_gate(ModeGate::RejectUnlessHealthy);
            }
            planes.push(plane);
        }
        Ok(FederatedCluster {
            clock,
            telemetry,
            shards,
            planes,
            map,
            policy: self.policy,
            sticky: BTreeMap::new(),
            next_xtx: 0,
            open_x: BTreeMap::new(),
            resolved_x: BTreeMap::new(),
            stats: FederationStats::default(),
            xshard_timeout: self.xshard_timeout,
        })
    }
}

/// N independent [`Cluster`] shards on one shared virtual clock, with
/// consistent-hash routing, explicit rebalancing, cross-shard 2PC and
/// mode-aware admission. See the crate docs.
pub struct FederatedCluster {
    clock: SimClock,
    telemetry: Telemetry,
    shards: Vec<Cluster>,
    planes: Vec<RequestPlane>,
    map: ShardMap,
    policy: RoutingPolicy,
    sticky: BTreeMap<ObjectId, ShardId>,
    next_xtx: u64,
    open_x: BTreeMap<u64, OpenXTx>,
    resolved_x: BTreeMap<u64, XShardOutcome>,
    stats: FederationStats,
    xshard_timeout: SimDuration,
}

impl std::fmt::Debug for FederatedCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FederatedCluster")
            .field("shards", &self.shards.len())
            .field("mode", &self.mode())
            .field("open_xshard", &self.open_x.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl FederatedCluster {
    /// Starts a builder for `shards` shards of `nodes_per_shard` nodes
    /// each, every shard running `app`.
    pub fn builder(shards: u32, nodes_per_shard: u32, app: AppDescriptor) -> FederationBuilder {
        FederationBuilder {
            shards,
            nodes_per_shard,
            app,
            vnodes: 32,
            seed: 0,
            policy: RoutingPolicy::default(),
            xshard_timeout: SimDuration::from_millis(50),
            configure: None,
        }
    }

    /// The shared virtual clock every shard runs on.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The federation-level telemetry bus (routing, migration and
    /// cross-shard events; each shard keeps its own bus).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The current shard map.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// The degraded-shard routing policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Read access to one shard.
    pub fn shard(&self, shard: ShardId) -> &Cluster {
        &self.shards[shard.index()]
    }

    /// Write access to one shard (fault injection, direct operations).
    pub fn shard_mut(&mut self, shard: ShardId) -> &mut Cluster {
        &mut self.shards[shard.index()]
    }

    /// Read access to one shard's request plane.
    pub fn plane(&self, shard: ShardId) -> &RequestPlane {
        &self.planes[shard.index()]
    }

    /// Federation-level counters.
    pub fn stats(&self) -> &FederationStats {
        &self.stats
    }

    /// Outcomes of finished cross-shard transactions, by federation
    /// transaction id.
    pub fn xshard_outcomes(&self) -> &BTreeMap<u64, XShardOutcome> {
        &self.resolved_x
    }

    /// Cross-shard transactions still open (staging or prepared,
    /// including in-doubt ones).
    pub fn open_xshard_count(&self) -> usize {
        self.open_x.len()
    }

    /// Cross-shard transactions waiting on the federation-level
    /// presumed-abort deadline.
    pub fn xshard_in_doubt_count(&self) -> usize {
        self.open_x
            .values()
            .filter(|x| matches!(x.state, XState::InDoubt { .. }))
            .count()
    }

    /// The per-shard modes folded into one summary.
    pub fn mode(&self) -> FederationMode {
        let total = self.shards.len() as u32;
        let degraded = self
            .shards
            .iter()
            .filter(|s| s.mode() != SystemMode::Healthy)
            .count() as u32;
        match degraded {
            0 => FederationMode::Healthy,
            d if d == total => FederationMode::Degraded,
            d => FederationMode::PartiallyDegraded { degraded: d, total },
        }
    }

    /// The node a shard-level operation executes on: the shard's first
    /// live node.
    pub fn coordinator_node(&self, shard: ShardId) -> Option<NodeId> {
        let cluster = &self.shards[shard.index()];
        cluster.topology().nodes().find(|n| !cluster.is_crashed(*n))
    }

    /// Routes `id` under the current map and policy, emitting a
    /// `shard_routed` event and bumping `federation.routed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ModeRestriction`] when the policy is
    /// [`RoutingPolicy::RejectDegraded`] and the target shard is not
    /// healthy.
    pub fn route(&mut self, id: &ObjectId) -> Result<ShardId> {
        let shard = match self.policy {
            RoutingPolicy::Sticky => self
                .sticky
                .get(id)
                .copied()
                .unwrap_or_else(|| self.map.shard_of(id)),
            _ => self.map.shard_of(id),
        };
        let mode = self.shards[shard.index()].mode();
        let admitted =
            !(self.policy == RoutingPolicy::RejectDegraded && mode != SystemMode::Healthy);
        self.stats.routed += 1;
        self.telemetry.metrics().incr("federation.routed");
        let object = id.to_string();
        self.telemetry.emit(move || TraceEvent::ShardRouted {
            object,
            shard: shard.0,
            mode,
            admitted,
        });
        if !admitted {
            self.stats.rejected_degraded += 1;
            self.telemetry
                .metrics()
                .incr("federation.rejected_degraded");
            return Err(Error::ModeRestriction(format!(
                "routing refused: shard {shard} is {mode:?}"
            )));
        }
        if self.policy == RoutingPolicy::Sticky {
            self.sticky.insert(id.clone(), shard);
        }
        Ok(shard)
    }

    /// Creates `id` (class defaults) on its owning shard, bypassing
    /// the degraded-mode policy — placement follows the map even while
    /// a shard is degraded. Returns the owning shard.
    ///
    /// # Errors
    ///
    /// Propagates shard-level create errors.
    pub fn create(&mut self, id: &ObjectId) -> Result<ShardId> {
        let shard = match self.policy {
            RoutingPolicy::Sticky => self
                .sticky
                .get(id)
                .copied()
                .unwrap_or_else(|| self.map.shard_of(id)),
            _ => self.map.shard_of(id),
        };
        let node = self
            .coordinator_node(shard)
            .ok_or(Error::Config(format!("{shard}: every node crashed")))?;
        let cluster = &mut self.shards[shard.index()];
        let id = id.clone();
        cluster.run_tx(node, move |c, tx| {
            let entity = EntityState::for_class(c.app(), &id)?;
            c.create(node, tx, entity)
        })?;
        Ok(shard)
    }

    /// Runs `f` in a fresh single-shard transaction on `id`'s shard
    /// (routed, so the degraded-mode policy applies).
    ///
    /// # Errors
    ///
    /// Routing refusals ([`Error::ModeRestriction`]) and shard-level
    /// transaction errors.
    pub fn run_routed<T>(
        &mut self,
        id: &ObjectId,
        f: impl for<'a> FnOnce(Session<'a>) -> Result<T>,
    ) -> Result<T> {
        let shard = self.route(id)?;
        let node = self
            .coordinator_node(shard)
            .ok_or(Error::Config(format!("{shard}: every node crashed")))?;
        f(self.shards[shard.index()].session(node))
    }

    /// Submits `work` for `id` through the target shard's request
    /// plane under `class` — the routed admission path. The plane's
    /// [`ModeGate`] mirrors the federation policy, so admission itself
    /// consults the target shard's mode.
    ///
    /// # Errors
    ///
    /// Routing refusals plus every [`RequestPlane::submit`] error.
    pub fn submit(
        &mut self,
        id: &ObjectId,
        class: PriorityClass,
        work: impl for<'a> FnOnce(Session<'a>) -> Result<()> + 'static,
    ) -> Result<u64> {
        let shard = self.route(id)?;
        let node = self
            .coordinator_node(shard)
            .ok_or(Error::Config(format!("{shard}: every node crashed")))?;
        self.planes[shard.index()].submit(&mut self.shards[shard.index()], node, class, work)
    }

    /// Takes one dispatch step across the federation: shards are
    /// stepped in shard order, one plane action each. Returns `false`
    /// once every plane is idle.
    pub fn step(&mut self) -> bool {
        let mut progressed = false;
        for i in 0..self.shards.len() {
            progressed |= self.planes[i].step(&mut self.shards[i]);
        }
        progressed
    }

    /// Drains every shard's plane. Returns the number of federation
    /// steps taken.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut steps = 0;
        while self.step() {
            steps += 1;
        }
        steps
    }

    // ------------------------------------------------------------------
    // Cross-shard transactions
    // ------------------------------------------------------------------

    /// Opens a cross-shard transaction and returns its federation-wide
    /// id. Participants join lazily as objects are staged.
    pub fn xshard_begin(&mut self) -> u64 {
        self.next_xtx += 1;
        let xtx = self.next_xtx;
        self.open_x.insert(
            xtx,
            OpenXTx {
                state: XState::Staging,
                participants: BTreeMap::new(),
            },
        );
        self.stats.xshard_begun += 1;
        self.telemetry.metrics().incr("federation.xshard.begun");
        xtx
    }

    /// Stages one write (`id.field = value`) inside `xtx`, routing the
    /// object and lazily opening a participant transaction on its
    /// shard.
    ///
    /// # Errors
    ///
    /// Routing refusals, unknown/finished `xtx`
    /// ([`Error::NoSuchTransaction`] with the participant id 0), and
    /// shard-level invocation errors (the caller should
    /// [`FederatedCluster::xshard_abort`] on failure).
    pub fn xshard_set_field(
        &mut self,
        xtx: u64,
        id: &ObjectId,
        field: &str,
        value: Value,
    ) -> Result<ShardId> {
        let shard = self.route(id)?;
        let x = self
            .open_x
            .get(&xtx)
            .filter(|x| x.state == XState::Staging)
            .ok_or(Error::Config(format!("xshard tx {xtx} is not staging")))?;
        let (node, tx) = match x.participants.get(&shard.0) {
            Some(&(node, tx)) => (node, tx),
            None => {
                let node = self
                    .coordinator_node(shard)
                    .ok_or(Error::Config(format!("{shard}: every node crashed")))?;
                let tx = self.shards[shard.index()].session(node).detach();
                let x = self.open_x.get_mut(&xtx).expect("xtx just read");
                x.participants.insert(shard.0, (node, tx));
                (node, tx)
            }
        };
        self.shards[shard.index()].set_field(node, tx, id, field, value)?;
        Ok(shard)
    }

    /// Phase 1 across shards: prepares every participant. On any
    /// refusal the already-prepared participants are rolled back and
    /// the transaction resolves aborted.
    ///
    /// # Errors
    ///
    /// The participant's prepare error, after the all-shards rollback.
    pub fn xshard_prepare(&mut self, xtx: u64) -> Result<()> {
        let x = self
            .open_x
            .get(&xtx)
            .filter(|x| x.state == XState::Staging)
            .ok_or(Error::Config(format!("xshard tx {xtx} is not staging")))?;
        let participants: Vec<(u32, NodeId, TxId)> = x
            .participants
            .iter()
            .map(|(s, &(node, tx))| (*s, node, tx))
            .collect();
        for (shard, _, tx) in &participants {
            if let Err(e) = self.shards[*shard as usize].prepare(*tx) {
                // One no vote aborts the whole transaction. The
                // refusing participant is already rolled back by
                // `Cluster::prepare`; unwind the rest. (Compare by
                // shard, not `TxId` — each shard numbers its own
                // transactions, so ids collide across shards.)
                for (other, _, other_tx) in &participants {
                    if other != shard {
                        let _ = self.shards[*other as usize].rollback(*other_tx);
                    }
                }
                self.finish_xshard(xtx, false, false);
                return Err(e);
            }
        }
        let x = self.open_x.get_mut(&xtx).expect("xtx just read");
        x.state = XState::Prepared;
        self.stats.xshard_prepared += 1;
        self.telemetry.metrics().incr("federation.xshard.prepared");
        let shards: Vec<u32> = participants.iter().map(|(s, _, _)| *s).collect();
        self.telemetry
            .emit(move || TraceEvent::XShardPrepared { xtx, shards });
        Ok(())
    }

    /// Phase 2 across shards: commits every participant. The decision
    /// point re-checks that every participant is still committable —
    /// if a shard-level coordinator crashed after phase 1 and dragged
    /// its participant into the shard's in-doubt registry, the
    /// federation aborts everywhere instead (the in-doubt participant
    /// resolves to the same abort by shard-level presumed abort).
    ///
    /// # Errors
    ///
    /// [`Error::TxInDoubt`] when the decision point had to abort;
    /// participant commit errors otherwise.
    pub fn xshard_commit(&mut self, xtx: u64) -> Result<()> {
        let x = self
            .open_x
            .get(&xtx)
            .filter(|x| x.state == XState::Prepared)
            .ok_or(Error::Config(format!("xshard tx {xtx} is not prepared")))?;
        let participants: Vec<(u32, TxId)> = x
            .participants
            .iter()
            .map(|(s, &(_, tx))| (*s, tx))
            .collect();
        if let Some(&(shard, tx)) = participants.iter().find(|(s, tx)| {
            self.shards[*s as usize]
                .in_doubt_txs()
                .any(|(t, _)| t == *tx)
        }) {
            for (other, other_tx) in &participants {
                if *other != shard {
                    let _ = self.shards[*other as usize].rollback(*other_tx);
                }
            }
            self.finish_xshard(xtx, false, false);
            return Err(Error::TxInDoubt(tx));
        }
        let mut first_err = None;
        for (shard, tx) in &participants {
            if let Err(e) = self.shards[*shard as usize].commit(*tx) {
                first_err.get_or_insert(e);
            }
        }
        self.finish_xshard(xtx, true, false);
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Explicitly aborts `xtx`, rolling back every participant.
    ///
    /// # Errors
    ///
    /// Unknown or already-finished `xtx`.
    pub fn xshard_abort(&mut self, xtx: u64) -> Result<()> {
        let x = self
            .open_x
            .get(&xtx)
            .ok_or(Error::Config(format!("xshard tx {xtx} is not open")))?;
        let participants: Vec<(u32, TxId)> = x
            .participants
            .iter()
            .map(|(s, &(_, tx))| (*s, tx))
            .collect();
        for (shard, tx) in &participants {
            let _ = self.shards[*shard as usize].rollback(*tx);
        }
        self.finish_xshard(xtx, false, false);
        Ok(())
    }

    /// Simulates the federation coordinator crashing after phase 1:
    /// `xtx` must be prepared everywhere; its participants stay
    /// prepared (locks held) until
    /// [`FederatedCluster::resolve_xshard_in_doubt`] passes the
    /// presumed-abort deadline.
    ///
    /// # Errors
    ///
    /// `xtx` is not in the prepared state.
    pub fn crash_coordinator(&mut self, xtx: u64) -> Result<()> {
        let deadline = self.clock.now() + self.xshard_timeout;
        let x = self
            .open_x
            .get_mut(&xtx)
            .filter(|x| x.state == XState::Prepared)
            .ok_or(Error::Config(format!("xshard tx {xtx} is not prepared")))?;
        x.state = XState::InDoubt { deadline };
        self.telemetry.metrics().incr("federation.xshard.in_doubt");
        Ok(())
    }

    /// Runs the federation-level in-doubt recovery: every coordinator-
    /// crashed cross-shard transaction whose deadline has passed rolls
    /// back on all participants (presumed abort, mirroring the
    /// shard-level protocol). Returns the number resolved.
    pub fn resolve_xshard_in_doubt(&mut self) -> usize {
        let now = self.clock.now();
        let due: Vec<u64> = self
            .open_x
            .iter()
            .filter(|(_, x)| matches!(x.state, XState::InDoubt { deadline } if deadline <= now))
            .map(|(xtx, _)| *xtx)
            .collect();
        let resolved = due.len();
        for xtx in due {
            let x = self.open_x.get(&xtx).expect("due xtx is open");
            let participants: Vec<(u32, TxId)> = x
                .participants
                .iter()
                .map(|(s, &(_, tx))| (*s, tx))
                .collect();
            for (shard, tx) in &participants {
                // A participant may itself be shard-level in-doubt
                // (its node coordinator crashed too); that path
                // presumes abort on its own, to the same outcome.
                let _ = self.shards[*shard as usize].rollback(*tx);
            }
            self.finish_xshard(xtx, false, true);
        }
        resolved
    }

    fn finish_xshard(&mut self, xtx: u64, committed: bool, presumed_abort: bool) {
        let Some(x) = self.open_x.remove(&xtx) else {
            return;
        };
        let participants: Vec<(ShardId, TxId)> = x
            .participants
            .iter()
            .map(|(s, &(_, tx))| (ShardId(*s), tx))
            .collect();
        if committed {
            self.stats.xshard_committed += 1;
            self.telemetry.metrics().incr("federation.xshard.committed");
        } else {
            self.stats.xshard_aborted += 1;
            self.telemetry.metrics().incr("federation.xshard.aborted");
            if presumed_abort {
                self.stats.xshard_presumed_aborted += 1;
                self.telemetry
                    .metrics()
                    .incr("federation.xshard.presumed_abort");
            }
        }
        self.resolved_x.insert(
            xtx,
            XShardOutcome {
                committed,
                presumed_abort,
                participants,
            },
        );
        self.telemetry.emit(move || TraceEvent::XShardResolved {
            xtx,
            committed,
            presumed_abort,
        });
    }

    // ------------------------------------------------------------------
    // Rebalancing
    // ------------------------------------------------------------------

    /// Every committed object across all shards, in id order.
    pub fn committed_objects(&self) -> Vec<ObjectId> {
        let mut ids = BTreeSet::new();
        for (i, cluster) in self.shards.iter().enumerate() {
            if let Some(node) = self.coordinator_node(ShardId(i as u32)) {
                ids.extend(cluster.committed_ids_on(node));
            }
        }
        ids.into_iter().collect()
    }

    /// Plans the migration to a ring over `shards` shards (same seed
    /// and virtual-node count) across the current committed object
    /// population.
    ///
    /// # Errors
    ///
    /// As [`ShardMap::with_shards`].
    pub fn plan_rebalance_to(&self, shards: u32) -> Result<RebalancePlan> {
        let target = self.map.with_shards(shards)?;
        let keys = self.committed_objects();
        Ok(self.map.plan_rebalance(&target, &keys))
    }

    /// Executes a rebalance plan: per step, the object's committed
    /// state is exported from the source shard, evicted there, and
    /// installed on the target shard over the journalled WAL path,
    /// emitting `shard_migrated`. Steps whose source or target shard
    /// currently has crashed nodes — or whose object is locked — are
    /// deferred, not failed. The target map is installed afterwards.
    ///
    /// # Errors
    ///
    /// A plan targeting more shards than the federation hosts.
    pub fn rebalance(&mut self, plan: RebalancePlan) -> Result<MigrationReport> {
        if plan.target.shards() > self.shard_count() {
            return Err(Error::Config(format!(
                "plan targets {} shards, federation has {}",
                plan.target.shards(),
                self.shard_count()
            )));
        }
        let mut migrated = 0u64;
        let mut deferred = Vec::new();
        for step in plan.steps {
            let from = &self.shards[step.from.index()];
            let to = &self.shards[step.to.index()];
            let faulted = from.crashed_nodes().next().is_some()
                || to.crashed_nodes().next().is_some()
                || from.held_locks().iter().any(|(id, _)| *id == step.object);
            if faulted {
                deferred.push(step);
                continue;
            }
            let Some(entity) = self.shards[step.from.index()].export_object(&step.object) else {
                // Nothing committed under this id (deleted since the
                // plan was made) — the map flip alone suffices.
                continue;
            };
            self.shards[step.from.index()].evict_object(&step.object);
            let replicas = self.shards[step.to.index()].install_object(entity)?;
            migrated += 1;
            self.stats.migrated += 1;
            self.telemetry.metrics().incr("federation.migrated");
            if self.policy == RoutingPolicy::Sticky {
                self.sticky.insert(step.object.clone(), step.to);
            }
            let object = step.object.to_string();
            let (f, t) = (step.from.0, step.to.0);
            self.telemetry.emit(move || TraceEvent::ShardMigrated {
                object,
                from: f,
                to: t,
                replicas,
            });
        }
        self.map = plan.target;
        Ok(MigrationReport { migrated, deferred })
    }
}
