//! The deterministic consistent-hash shard map.
//!
//! A [`ShardMap`] places every [`ObjectId`] on one shard via a
//! consistent-hash ring with virtual nodes: each shard contributes
//! [`ShardMap::vnodes`] points to a `u64` ring, and an object belongs
//! to the shard owning the first point at or after the object's own
//! hash (wrapping). Ring points depend only on `(seed, shard, vnode)`
//! — never on the total shard count — so growing or shrinking the
//! federation leaves every surviving shard's points in place and moves
//! exactly the keys whose ring segment changed hands (the classic
//! minimal-disruption property, proptested in
//! `tests/shard_map_props.rs`).
//!
//! Rebalancing is explicit: [`ShardMap::plan_rebalance`] diffs two
//! maps over a concrete key population and returns a typed
//! [`RebalancePlan`] of per-object [`MigrationStep`]s, which
//! `FederatedCluster::rebalance` executes via the core WAL/state
//! transfer hooks. Nothing moves implicitly.

use dedisys_types::{Error, ObjectId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifies one shard (one [`Cluster`](dedisys_core::Cluster)) in a
/// federation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ShardId(pub u32);

impl ShardId {
    /// The shard's index into the federation's shard vector.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ShardId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The ring hash: FNV-1a over the bytes, then a splitmix64-style
/// avalanche finalizer. Stable across platforms and Rust versions
/// (std's `DefaultHasher` makes no such promise). Plain FNV-1a is not
/// enough here — on short structured inputs (`seed‖shard‖vnode`) its
/// high bits barely avalanche, which clumps ring points and key
/// hashes into narrow bands; the finalizer spreads them over the full
/// `u64` ring.
fn ring_hash(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// One typed step of a rebalance: move `object`'s committed state from
/// shard `from` to shard `to`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationStep {
    /// The object whose ring segment changed hands.
    pub object: ObjectId,
    /// The shard giving the object up.
    pub from: ShardId,
    /// The shard that owns it under the target map.
    pub to: ShardId,
}

/// The typed output of [`ShardMap::plan_rebalance`]: the target map
/// plus every migration the transition requires, in object order.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// The map to install once the steps have run.
    pub target: ShardMap,
    /// Object moves, sorted by object id (deterministic execution
    /// order).
    pub steps: Vec<MigrationStep>,
}

/// The deterministic consistent-hash ring (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    shards: u32,
    vnodes: u32,
    seed: u64,
    /// Ring point → owning shard.
    ring: BTreeMap<u64, u32>,
}

impl ShardMap {
    /// Builds the ring for `shards` shards with `vnodes` virtual nodes
    /// per shard, seeded by `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when `shards` or `vnodes` is zero.
    pub fn new(shards: u32, vnodes: u32, seed: u64) -> Result<Self> {
        if shards == 0 {
            return Err(Error::Config("a shard map needs at least one shard".into()));
        }
        if vnodes == 0 {
            return Err(Error::Config(
                "a shard map needs at least one virtual node per shard".into(),
            ));
        }
        let mut ring = BTreeMap::new();
        for shard in 0..shards {
            for vnode in 0..vnodes {
                let point = ring_hash(
                    seed.to_le_bytes()
                        .into_iter()
                        .chain(shard.to_le_bytes())
                        .chain(vnode.to_le_bytes()),
                );
                // On the astronomically unlikely point collision the
                // lower shard id wins, deterministically.
                ring.entry(point).or_insert(shard);
            }
        }
        Ok(Self {
            shards,
            vnodes,
            seed,
            ring,
        })
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Virtual nodes per shard.
    pub fn vnodes(&self) -> u32 {
        self.vnodes
    }

    /// The ring seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A map with the same seed and virtual-node count over a
    /// different shard count — the usual way to spell a grow/shrink
    /// target for [`ShardMap::plan_rebalance`].
    ///
    /// # Errors
    ///
    /// As [`ShardMap::new`].
    pub fn with_shards(&self, shards: u32) -> Result<Self> {
        Self::new(shards, self.vnodes, self.seed)
    }

    /// The shard owning `id`: the first ring point at or after the
    /// object's hash, wrapping past the top. Total — every object maps
    /// to exactly one shard.
    pub fn shard_of(&self, id: &ObjectId) -> ShardId {
        let h = ring_hash(
            self.seed
                .to_le_bytes()
                .into_iter()
                .chain(id.to_string().into_bytes()),
        );
        let owner = self
            .ring
            .range(h..)
            .next()
            .or_else(|| self.ring.iter().next())
            .map(|(_, shard)| *shard)
            .expect("ring is nonempty by construction");
        ShardId(owner)
    }

    /// Diffs this map against `target` over `keys` and returns the
    /// typed migration steps for exactly the keys whose owner changed.
    pub fn plan_rebalance<'a>(
        &self,
        target: &ShardMap,
        keys: impl IntoIterator<Item = &'a ObjectId>,
    ) -> RebalancePlan {
        let mut steps: Vec<MigrationStep> = keys
            .into_iter()
            .filter_map(|id| {
                let from = self.shard_of(id);
                let to = target.shard_of(id);
                (from != to).then(|| MigrationStep {
                    object: id.clone(),
                    from,
                    to,
                })
            })
            .collect();
        steps.sort_by(|a, b| a.object.cmp(&b.object));
        steps.dedup();
        RebalancePlan {
            target: target.clone(),
            steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u32) -> Vec<ObjectId> {
        (0..n)
            .map(|i| ObjectId::new("Item", format!("k{i}")))
            .collect()
    }

    #[test]
    fn routing_is_total_and_stable() {
        let map = ShardMap::new(4, 16, 7).unwrap();
        let again = ShardMap::new(4, 16, 7).unwrap();
        for id in keys(200) {
            let s = map.shard_of(&id);
            assert!(s.0 < 4);
            assert_eq!(s, again.shard_of(&id));
        }
    }

    #[test]
    fn zero_shards_or_vnodes_is_a_config_error() {
        assert!(matches!(ShardMap::new(0, 8, 0), Err(Error::Config(_))));
        assert!(matches!(ShardMap::new(3, 0, 0), Err(Error::Config(_))));
    }

    #[test]
    fn growth_moves_keys_only_to_the_new_shard() {
        let old = ShardMap::new(3, 32, 11).unwrap();
        let new = old.with_shards(4).unwrap();
        let population = keys(500);
        let plan = old.plan_rebalance(&new, &population);
        assert!(!plan.steps.is_empty(), "some keys should move");
        for step in &plan.steps {
            assert_eq!(step.to, ShardId(3), "grown ring only feeds the new shard");
        }
        // And far from everything moves.
        assert!(plan.steps.len() < population.len() / 2);
    }
}
