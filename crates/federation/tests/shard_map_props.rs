//! Property tests for the consistent-hash shard map: total,
//! deterministic routing and minimal key movement under rebalancing.

use dedisys_federation::{ShardId, ShardMap};
use dedisys_types::ObjectId;
use proptest::prelude::*;

fn population(n: usize) -> Vec<ObjectId> {
    (0..n)
        .map(|i| ObjectId::new("Item", format!("key-{i}")))
        .collect()
}

proptest! {
    /// Routing is total (every key lands on a valid shard) and
    /// deterministic (an identically-constructed ring agrees on every
    /// key) for arbitrary ring shapes and seeds.
    #[test]
    fn routing_is_total_and_deterministic(
        shards in 1u32..8,
        vnodes in 1u32..64,
        seed in any::<u64>(),
        keys in 1usize..300,
    ) {
        let map = ShardMap::new(shards, vnodes, seed).unwrap();
        let twin = ShardMap::new(shards, vnodes, seed).unwrap();
        for id in population(keys) {
            let owner = map.shard_of(&id);
            prop_assert!(owner.0 < shards, "{id} routed to nonexistent {owner}");
            prop_assert_eq!(owner, twin.shard_of(&id), "twin disagrees on {}", id);
        }
    }

    /// Seeds shuffle placement but never break totality: two different
    /// seeds still route every key to a valid shard of the same ring
    /// size.
    #[test]
    fn routing_is_total_across_seeds(
        shards in 1u32..6,
        vnodes in 1u32..48,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = ShardMap::new(shards, vnodes, seed_a).unwrap();
        let b = ShardMap::new(shards, vnodes, seed_b).unwrap();
        for id in population(100) {
            prop_assert!(a.shard_of(&id).0 < shards);
            prop_assert!(b.shard_of(&id).0 < shards);
        }
    }

    /// Growing the ring by one shard moves only the keys whose ring
    /// segment the new shard claimed: every migration step lands on
    /// the added shard, and every key outside the plan keeps its
    /// owner.
    #[test]
    fn growth_moves_only_the_new_shards_segments(
        shards in 1u32..7,
        vnodes in 1u32..48,
        seed in any::<u64>(),
        keys in 1usize..300,
    ) {
        let old = ShardMap::new(shards, vnodes, seed).unwrap();
        let new = old.with_shards(shards + 1).unwrap();
        let pop = population(keys);
        let plan = old.plan_rebalance(&new, &pop);
        let moved: std::collections::BTreeSet<_> =
            plan.steps.iter().map(|s| s.object.clone()).collect();
        for step in &plan.steps {
            prop_assert_eq!(
                step.to,
                ShardId(shards),
                "grown ring may only feed the new shard (step {:?})",
                step
            );
            prop_assert_eq!(step.from, old.shard_of(&step.object));
        }
        for id in &pop {
            if !moved.contains(id) {
                prop_assert_eq!(
                    old.shard_of(id),
                    new.shard_of(id),
                    "unmoved key {} changed owner",
                    id
                );
            }
        }
    }

    /// Shrinking the ring by one shard moves only the keys the removed
    /// shard owned — surviving shards never trade keys among
    /// themselves.
    #[test]
    fn shrink_moves_only_the_removed_shards_keys(
        shards in 2u32..8,
        vnodes in 1u32..48,
        seed in any::<u64>(),
        keys in 1usize..300,
    ) {
        let old = ShardMap::new(shards, vnodes, seed).unwrap();
        let new = old.with_shards(shards - 1).unwrap();
        let pop = population(keys);
        let plan = old.plan_rebalance(&new, &pop);
        for step in &plan.steps {
            prop_assert_eq!(
                step.from,
                ShardId(shards - 1),
                "only the removed shard gives keys up (step {:?})",
                step
            );
            prop_assert!(step.to.0 < shards - 1);
        }
    }
}
