//! The transaction manager.

use dedisys_telemetry::{Telemetry, TraceEvent};
use dedisys_types::{Error, NodeId, Result, TxId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Life-cycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxStatus {
    /// Running; operations may be performed.
    Active,
    /// Phase 1 of 2PC succeeded; the outcome is pending phase 2. If the
    /// coordinator crashes now the transaction is *in doubt* and must
    /// be resolved by the recovery protocol (presumed abort).
    Prepared,
    /// Successfully committed.
    Committed,
    /// Rolled back (explicitly, by veto, or by 2PC failure).
    RolledBack,
}

/// Counters kept by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TxStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed.
    pub committed: u64,
    /// Transactions rolled back.
    pub rolled_back: u64,
}

#[derive(Debug)]
struct TxRecord {
    status: TxStatus,
    rollback_only: bool,
}

/// Tracks transaction life cycles and the rollback-only veto flag.
///
/// The manager is deliberately policy-free: two-phase commit over
/// resources is driven by [`crate::TwoPhaseCoordinator`], locking by
/// [`crate::LockTable`]; the middleware node wires them together.
#[derive(Debug, Default)]
pub struct TransactionManager {
    records: HashMap<TxId, TxRecord>,
    next_seq: HashMap<NodeId, u64>,
    stats: TxStats,
    telemetry: Option<Telemetry>,
}

impl TransactionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wires a telemetry bus; life-cycle events (`tx_begin`,
    /// `tx_commit`, `tx_rollback`) are emitted from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.telemetry {
            t.emit(build);
        }
    }

    /// Begins a transaction on behalf of `node`.
    pub fn begin(&mut self, node: NodeId) -> TxId {
        let seq = self.next_seq.entry(node).or_insert(0);
        let tx = TxId::new(node, *seq);
        *seq += 1;
        self.records.insert(
            tx,
            TxRecord {
                status: TxStatus::Active,
                rollback_only: false,
            },
        );
        self.stats.begun += 1;
        self.emit(|| TraceEvent::TxBegin { tx });
        tx
    }

    /// The status of `tx`, if known.
    pub fn status(&self, tx: TxId) -> Option<TxStatus> {
        self.records.get(&tx).map(|r| r.status)
    }

    /// Whether `tx` is active.
    pub fn is_active(&self, tx: TxId) -> bool {
        self.status(tx) == Some(TxStatus::Active)
    }

    /// Whether `tx` is prepared (awaiting phase 2 of 2PC).
    pub fn is_prepared(&self, tx: TxId) -> bool {
        self.status(tx) == Some(TxStatus::Prepared)
    }

    /// Number of transactions that are still open (active or
    /// prepared) — used by invariant checkers to assert transaction
    /// conservation: `begun == committed + rolled_back + open`.
    pub fn open_count(&self) -> usize {
        self.records
            .values()
            .filter(|r| matches!(r.status, TxStatus::Active | TxStatus::Prepared))
            .count()
    }

    /// Moves an active transaction to [`TxStatus::Prepared`] after a
    /// successful phase 1 of 2PC.
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuchTransaction`] — unknown or terminated.
    /// * [`Error::RollbackOnly`] — the transaction was vetoed; it is
    ///   rolled back as a side effect (a vetoed transaction can never
    ///   vote yes).
    pub fn mark_prepared(&mut self, tx: TxId) -> Result<()> {
        let record = self.active_record(tx)?;
        if record.rollback_only {
            record.status = TxStatus::RolledBack;
            self.stats.rolled_back += 1;
            self.emit(|| TraceEvent::TxRollback { tx });
            return Err(Error::RollbackOnly(tx));
        }
        record.status = TxStatus::Prepared;
        Ok(())
    }

    /// Marks `tx` rollback-only: any later commit attempt fails and
    /// rolls back instead. This is how the CCMgr vetoes transactions
    /// whose constraints are violated (§4.2.3).
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTransaction`] if `tx` is unknown or
    /// already terminated.
    pub fn set_rollback_only(&mut self, tx: TxId) -> Result<()> {
        let record = self.active_record(tx)?;
        record.rollback_only = true;
        Ok(())
    }

    /// Whether `tx` has been marked rollback-only.
    pub fn is_rollback_only(&self, tx: TxId) -> bool {
        self.records.get(&tx).is_some_and(|r| r.rollback_only)
    }

    /// Commits `tx`.
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuchTransaction`] — unknown or terminated.
    /// * [`Error::RollbackOnly`] — the transaction was vetoed; it is
    ///   rolled back as a side effect.
    pub fn commit(&mut self, tx: TxId) -> Result<()> {
        let record = self.active_record(tx)?;
        if record.rollback_only {
            record.status = TxStatus::RolledBack;
            self.stats.rolled_back += 1;
            self.emit(|| TraceEvent::TxRollback { tx });
            return Err(Error::RollbackOnly(tx));
        }
        record.status = TxStatus::Committed;
        self.stats.committed += 1;
        self.emit(|| TraceEvent::TxCommit { tx });
        Ok(())
    }

    /// Rolls back `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NoSuchTransaction`] if unknown or terminated.
    pub fn rollback(&mut self, tx: TxId) -> Result<()> {
        let record = self.active_record(tx)?;
        record.status = TxStatus::RolledBack;
        self.stats.rolled_back += 1;
        self.emit(|| TraceEvent::TxRollback { tx });
        Ok(())
    }

    /// Marks an active or prepared transaction as rolled back without
    /// an explicit `rollback` call — used when 2PC aborts and when the
    /// in-doubt recovery protocol presumes abort.
    pub fn force_rollback(&mut self, tx: TxId) {
        if let Some(record) = self.records.get_mut(&tx) {
            if matches!(record.status, TxStatus::Active | TxStatus::Prepared) {
                record.status = TxStatus::RolledBack;
                self.stats.rolled_back += 1;
                if let Some(t) = &self.telemetry {
                    t.emit(|| TraceEvent::TxRollback { tx });
                }
            }
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> TxStats {
        self.stats
    }

    /// A record that is still open (active or prepared).
    fn active_record(&mut self, tx: TxId) -> Result<&mut TxRecord> {
        match self.records.get_mut(&tx) {
            Some(r) if matches!(r.status, TxStatus::Active | TxStatus::Prepared) => Ok(r),
            _ => Err(Error::NoSuchTransaction(tx)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_commit_lifecycle() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        assert!(tm.is_active(tx));
        tm.commit(tx).unwrap();
        assert_eq!(tm.status(tx), Some(TxStatus::Committed));
        assert_eq!(tm.stats().committed, 1);
    }

    #[test]
    fn rollback_only_vetoes_commit() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        tm.set_rollback_only(tx).unwrap();
        assert!(tm.is_rollback_only(tx));
        assert_eq!(tm.commit(tx), Err(Error::RollbackOnly(tx)));
        assert_eq!(tm.status(tx), Some(TxStatus::RolledBack));
    }

    #[test]
    fn terminated_transactions_reject_operations() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        tm.rollback(tx).unwrap();
        assert_eq!(tm.commit(tx), Err(Error::NoSuchTransaction(tx)));
        assert_eq!(tm.set_rollback_only(tx), Err(Error::NoSuchTransaction(tx)));
    }

    #[test]
    fn ids_are_unique_per_node() {
        let mut tm = TransactionManager::new();
        let a = tm.begin(NodeId(0));
        let b = tm.begin(NodeId(0));
        let c = tm.begin(NodeId(1));
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn prepared_lifecycle_commits_or_presumes_abort() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        tm.mark_prepared(tx).unwrap();
        assert!(tm.is_prepared(tx));
        assert!(!tm.is_active(tx));
        assert_eq!(tm.open_count(), 1);
        // Phase 2 commit succeeds from Prepared.
        tm.commit(tx).unwrap();
        assert_eq!(tm.status(tx), Some(TxStatus::Committed));
        assert_eq!(tm.open_count(), 0);
        // Presumed abort rolls back a prepared transaction.
        let tx2 = tm.begin(NodeId(1));
        tm.mark_prepared(tx2).unwrap();
        tm.force_rollback(tx2);
        assert_eq!(tm.status(tx2), Some(TxStatus::RolledBack));
    }

    #[test]
    fn vetoed_transaction_cannot_prepare() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        tm.set_rollback_only(tx).unwrap();
        assert_eq!(tm.mark_prepared(tx), Err(Error::RollbackOnly(tx)));
        assert_eq!(tm.status(tx), Some(TxStatus::RolledBack));
    }

    #[test]
    fn force_rollback_only_affects_active() {
        let mut tm = TransactionManager::new();
        let tx = tm.begin(NodeId(0));
        tm.commit(tx).unwrap();
        tm.force_rollback(tx); // no-op on committed
        assert_eq!(tm.status(tx), Some(TxStatus::Committed));
        let tx2 = tm.begin(NodeId(0));
        tm.force_rollback(tx2);
        assert_eq!(tm.status(tx2), Some(TxStatus::RolledBack));
    }
}
