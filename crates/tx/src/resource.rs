//! The transactional-resource participant trait.

use dedisys_types::TxId;

/// A participant's answer to the prepare phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Vote {
    /// Ready to commit.
    Prepared,
    /// Refuses to commit, with a reason (forces rollback of the
    /// transaction).
    Abort(String),
}

/// A participant in two-phase commit.
///
/// The constraint consistency manager registers as such a resource
/// (§4.2.3): its `prepare` validates the transaction's soft constraints
/// and votes [`Vote::Abort`] if any are violated or a threat was
/// rejected.
pub trait TransactionalResource {
    /// Human-readable participant name (used in error reporting).
    fn name(&self) -> &str;

    /// Phase one: vote on whether `tx` may commit.
    fn prepare(&mut self, tx: TxId) -> Vote;

    /// Phase two (success): make the transaction's effects durable.
    fn commit(&mut self, tx: TxId);

    /// Phase two (failure) or explicit abort: discard effects.
    fn rollback(&mut self, tx: TxId);
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;

    /// A scriptable resource for coordinator tests.
    #[derive(Debug)]
    pub struct ScriptedResource {
        pub name: String,
        pub vote: Vote,
        pub prepared: Vec<TxId>,
        pub committed: Vec<TxId>,
        pub rolled_back: Vec<TxId>,
    }

    impl ScriptedResource {
        pub fn voting(name: &str, vote: Vote) -> Self {
            Self {
                name: name.to_owned(),
                vote,
                prepared: Vec::new(),
                committed: Vec::new(),
                rolled_back: Vec::new(),
            }
        }
    }

    impl TransactionalResource for ScriptedResource {
        fn name(&self) -> &str {
            &self.name
        }

        fn prepare(&mut self, tx: TxId) -> Vote {
            self.prepared.push(tx);
            self.vote.clone()
        }

        fn commit(&mut self, tx: TxId) {
            self.committed.push(tx);
        }

        fn rollback(&mut self, tx: TxId) {
            self.rolled_back.push(tx);
        }
    }
}
