//! # dedisys-tx
//!
//! Transaction substrate — the JBossTS replacement.
//!
//! The balancing approach keeps atomicity, isolation and durability
//! strictly bound to transactions ("AID" transactions, Figure 1.2)
//! while replication and constraint consistency operate on top. This
//! crate provides:
//!
//! * [`TransactionManager`] — begin/commit/rollback life cycle,
//!   **rollback-only** marking (the CCMgr's veto, §4.2.3), and
//!   per-transaction bookkeeping.
//! * [`TransactionalResource`] — the participant trait
//!   (prepare/commit/rollback); the constraint consistency manager
//!   registers as such a resource to take part in two-phase commit.
//! * [`TwoPhaseCoordinator`] — a 2PC driver over participants.
//! * [`LockTable`] — exclusive per-object locks (entity-bean locking).
//!
//! ## Example
//!
//! ```
//! use dedisys_tx::{TransactionManager, TxStatus};
//! use dedisys_types::NodeId;
//!
//! let mut tm = TransactionManager::new();
//! let tx = tm.begin(NodeId(0));
//! assert_eq!(tm.status(tx), Some(TxStatus::Active));
//!
//! tm.set_rollback_only(tx);
//! assert!(tm.commit(tx).is_err()); // vetoed
//! assert_eq!(tm.status(tx), Some(TxStatus::RolledBack));
//! ```

mod locks;
mod manager;
mod resource;
mod two_phase;

pub use locks::LockTable;
pub use manager::{TransactionManager, TxStats, TxStatus};
pub use resource::{TransactionalResource, Vote};
pub use two_phase::TwoPhaseCoordinator;
