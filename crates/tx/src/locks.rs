//! Exclusive per-object locks.

use dedisys_types::{Error, ObjectId, Result, TxId};
use std::collections::HashMap;

/// An exclusive lock table keyed by [`ObjectId`] — the entity-bean
/// locking the paper lists among the services already performed per
/// invocation (§5.1).
///
/// Locks are re-entrant for the holding transaction. The soft-
/// constraint limitation of §5.3 (a validation transaction must be able
/// to read objects locked by the business transaction) is honoured by
/// [`LockTable::acquire_shared_with`], which allows a designated reader
/// transaction to pass.
#[derive(Debug, Clone, Default)]
pub struct LockTable {
    locks: HashMap<ObjectId, TxId>,
}

impl LockTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the exclusive lock on `object` for `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LockConflict`] if another transaction holds the
    /// lock.
    pub fn acquire(&mut self, tx: TxId, object: &ObjectId) -> Result<()> {
        match self.locks.get(object) {
            Some(&holder) if holder != tx => Err(Error::LockConflict {
                object: object.clone(),
                holder,
            }),
            _ => {
                self.locks.insert(object.clone(), tx);
                Ok(())
            }
        }
    }

    /// Read access for `reader` that tolerates a lock held by
    /// `business_tx` — the §5.3 soft-constraint validation arrangement.
    ///
    /// # Errors
    ///
    /// Returns [`Error::LockConflict`] if a third transaction holds the
    /// lock.
    pub fn acquire_shared_with(
        &mut self,
        reader: TxId,
        business_tx: TxId,
        object: &ObjectId,
    ) -> Result<()> {
        match self.locks.get(object) {
            Some(&holder) if holder != reader && holder != business_tx => {
                Err(Error::LockConflict {
                    object: object.clone(),
                    holder,
                })
            }
            _ => Ok(()),
        }
    }

    /// The holder of the lock on `object`, if any.
    pub fn holder(&self, object: &ObjectId) -> Option<TxId> {
        self.locks.get(object).copied()
    }

    /// Releases every lock held by `tx`; returns how many were freed.
    pub fn release_all(&mut self, tx: TxId) -> usize {
        let before = self.locks.len();
        self.locks.retain(|_, holder| *holder != tx);
        before - self.locks.len()
    }

    /// Iterates over every held lock as `(object, holder)` pairs — used
    /// by invariant checkers to detect orphaned locks (locks held by a
    /// transaction that already terminated).
    pub fn holders(&self) -> impl Iterator<Item = (&ObjectId, TxId)> + '_ {
        self.locks.iter().map(|(o, &tx)| (o, tx))
    }

    /// Number of held locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no locks are held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::NodeId;

    fn tx(n: u64) -> TxId {
        TxId::new(NodeId(0), n)
    }

    fn obj(k: &str) -> ObjectId {
        ObjectId::new("Flight", k)
    }

    #[test]
    fn exclusive_locking_and_reentrancy() {
        let mut locks = LockTable::new();
        locks.acquire(tx(1), &obj("a")).unwrap();
        locks.acquire(tx(1), &obj("a")).unwrap(); // re-entrant
        assert_eq!(
            locks.acquire(tx(2), &obj("a")),
            Err(Error::LockConflict {
                object: obj("a"),
                holder: tx(1)
            })
        );
    }

    #[test]
    fn release_all_frees_only_own_locks() {
        let mut locks = LockTable::new();
        locks.acquire(tx(1), &obj("a")).unwrap();
        locks.acquire(tx(1), &obj("b")).unwrap();
        locks.acquire(tx(2), &obj("c")).unwrap();
        assert_eq!(locks.release_all(tx(1)), 2);
        assert_eq!(locks.len(), 1);
        assert_eq!(locks.holder(&obj("c")), Some(tx(2)));
    }

    #[test]
    fn validation_reader_passes_business_lock() {
        let mut locks = LockTable::new();
        locks.acquire(tx(1), &obj("a")).unwrap();
        // Validation tx(9) may read objects locked by business tx(1)…
        locks.acquire_shared_with(tx(9), tx(1), &obj("a")).unwrap();
        // …but not objects locked by a third transaction.
        locks.acquire(tx(2), &obj("b")).unwrap();
        assert!(locks.acquire_shared_with(tx(9), tx(1), &obj("b")).is_err());
    }
}
