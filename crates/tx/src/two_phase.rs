//! The two-phase-commit coordinator.

use crate::{TransactionalResource, Vote};
use dedisys_telemetry::{Telemetry, TraceEvent, TwoPcPhase};
use dedisys_types::{Error, Result, TxId};

/// Drives two-phase commit over a set of participants.
///
/// Phase one collects votes from every participant; if all vote
/// [`Vote::Prepared`], phase two commits them all, otherwise every
/// participant (including those that voted to abort) is rolled back.
#[derive(Debug, Clone, Default)]
pub struct TwoPhaseCoordinator {
    /// Number of 2PC rounds driven.
    pub rounds: u64,
    /// Number of rounds that ended in commit.
    pub commits: u64,
    /// Number of rounds that ended in abort.
    pub aborts: u64,
    telemetry: Option<Telemetry>,
}

impl TwoPhaseCoordinator {
    /// Creates a coordinator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wires a telemetry bus; `two_pc` protocol-step events are
    /// emitted from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.telemetry {
            t.emit(build);
        }
    }

    /// Runs 2PC for `tx` over `participants`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::PrepareFailed`] naming the first participant
    /// that voted to abort; all participants have been rolled back in
    /// that case.
    pub fn run(
        &mut self,
        tx: TxId,
        participants: &mut [&mut dyn TransactionalResource],
    ) -> Result<()> {
        self.rounds += 1;
        self.emit(|| TraceEvent::TwoPc {
            tx,
            phase: TwoPcPhase::Prepare,
            participant: None,
            prepared: None,
        });
        let mut abort_reason: Option<String> = None;
        // Phase 1: collect every vote (a real coordinator contacts all
        // participants even after a no-vote, to learn their state).
        for p in participants.iter_mut() {
            let vote = p.prepare(tx);
            self.emit(|| TraceEvent::TwoPc {
                tx,
                phase: TwoPcPhase::Vote,
                participant: Some(p.name().to_string()),
                prepared: Some(matches!(vote, Vote::Prepared)),
            });
            if let Vote::Abort(reason) = vote {
                if abort_reason.is_none() {
                    abort_reason = Some(format!("{}: {}", p.name(), reason));
                }
            }
        }
        // Phase 2.
        match abort_reason {
            None => {
                for p in participants.iter_mut() {
                    p.commit(tx);
                }
                self.commits += 1;
                self.emit(|| TraceEvent::TwoPc {
                    tx,
                    phase: TwoPcPhase::Commit,
                    participant: None,
                    prepared: None,
                });
                Ok(())
            }
            Some(resource) => {
                for p in participants.iter_mut() {
                    p.rollback(tx);
                }
                self.aborts += 1;
                self.emit(|| TraceEvent::TwoPc {
                    tx,
                    phase: TwoPcPhase::Rollback,
                    participant: None,
                    prepared: None,
                });
                Err(Error::PrepareFailed { tx, resource })
            }
        }
    }

    /// Rolls back `tx` on every participant without a vote phase
    /// (explicit application abort).
    pub fn abort(&mut self, tx: TxId, participants: &mut [&mut dyn TransactionalResource]) {
        self.rounds += 1;
        self.aborts += 1;
        for p in participants.iter_mut() {
            p.rollback(tx);
        }
        self.emit(|| TraceEvent::TwoPc {
            tx,
            phase: TwoPcPhase::Rollback,
            participant: None,
            prepared: None,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::test_support::ScriptedResource;
    use dedisys_types::NodeId;

    fn tx() -> TxId {
        TxId::new(NodeId(0), 1)
    }

    #[test]
    fn unanimous_prepare_commits_all() {
        let mut a = ScriptedResource::voting("a", Vote::Prepared);
        let mut b = ScriptedResource::voting("b", Vote::Prepared);
        let mut coord = TwoPhaseCoordinator::new();
        coord.run(tx(), &mut [&mut a, &mut b]).unwrap();
        assert_eq!(a.committed, vec![tx()]);
        assert_eq!(b.committed, vec![tx()]);
        assert!(a.rolled_back.is_empty());
        assert_eq!(coord.commits, 1);
    }

    #[test]
    fn single_no_vote_rolls_back_everyone() {
        let mut a = ScriptedResource::voting("a", Vote::Prepared);
        let mut b = ScriptedResource::voting("b", Vote::Abort("constraint violated".into()));
        let mut coord = TwoPhaseCoordinator::new();
        let err = coord.run(tx(), &mut [&mut a, &mut b]).unwrap_err();
        assert_eq!(
            err,
            Error::PrepareFailed {
                tx: tx(),
                resource: "b: constraint violated".into()
            }
        );
        assert!(a.committed.is_empty());
        assert_eq!(a.rolled_back, vec![tx()]);
        assert_eq!(b.rolled_back, vec![tx()]);
        assert_eq!(coord.aborts, 1);
    }

    #[test]
    fn all_participants_are_asked_even_after_a_no_vote() {
        let mut a = ScriptedResource::voting("a", Vote::Abort("x".into()));
        let mut b = ScriptedResource::voting("b", Vote::Prepared);
        let mut coord = TwoPhaseCoordinator::new();
        let _ = coord.run(tx(), &mut [&mut a, &mut b]);
        assert_eq!(b.prepared, vec![tx()]);
    }

    #[test]
    fn explicit_abort_skips_prepare() {
        let mut a = ScriptedResource::voting("a", Vote::Prepared);
        let mut coord = TwoPhaseCoordinator::new();
        coord.abort(tx(), &mut [&mut a]);
        assert!(a.prepared.is_empty());
        assert_eq!(a.rolled_back, vec![tx()]);
    }
}
