//! Class and method descriptors — the deployment metadata.

use dedisys_types::{ClassName, MethodName, Value};
use std::collections::BTreeMap;

/// Whether a method reads or writes entity state.
///
/// The replication service must know (§4.3): writes trigger update
/// propagation, reads execute locally. Detection follows the EJB
/// naming convention (`set` + upper-case letter) unless declared
/// explicitly; undeclared non-setter methods are conservatively treated
/// as writes ("to be on the safe side", §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodKind {
    /// Local read; never propagated.
    Read,
    /// State-changing; executed on the primary and propagated.
    Write,
}

/// A deployed method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodDescriptor {
    name: MethodName,
    kind: MethodKind,
}

impl MethodDescriptor {
    /// Declares a method, inferring its kind from the naming
    /// convention: `set*` ⇒ write, `get*` ⇒ read, anything else ⇒
    /// write (safe side).
    pub fn by_convention(name: impl Into<MethodName>) -> Self {
        let name = name.into();
        let kind = if name.is_setter_convention() {
            MethodKind::Write
        } else if name.as_str().starts_with("get") {
            MethodKind::Read
        } else {
            MethodKind::Write
        };
        Self { name, kind }
    }

    /// Declares a method with an explicit kind.
    pub fn with_kind(name: impl Into<MethodName>, kind: MethodKind) -> Self {
        Self {
            name: name.into(),
            kind,
        }
    }

    /// The method name.
    pub fn name(&self) -> &MethodName {
        &self.name
    }

    /// The read/write kind.
    pub fn kind(&self) -> MethodKind {
        self.kind
    }
}

/// A deployed class: field defaults plus declared methods.
///
/// Declaring a field `f` implicitly declares the conventional accessor
/// pair `setF`/`getF`.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDescriptor {
    name: ClassName,
    fields: BTreeMap<String, Value>,
    methods: Vec<MethodDescriptor>,
}

impl ClassDescriptor {
    /// Creates an empty class descriptor.
    pub fn new(name: impl Into<ClassName>) -> Self {
        Self {
            name: name.into(),
            fields: BTreeMap::new(),
            methods: Vec::new(),
        }
    }

    /// Adds a field with its default value, generating `set`/`get`
    /// accessors.
    pub fn with_field(mut self, field: impl Into<String>, default: Value) -> Self {
        let field = field.into();
        let cap = capitalize(&field);
        self.methods.push(MethodDescriptor::with_kind(
            format!("set{cap}"),
            MethodKind::Write,
        ));
        self.methods.push(MethodDescriptor::with_kind(
            format!("get{cap}"),
            MethodKind::Read,
        ));
        self.fields.insert(field, default);
        self
    }

    /// Adds an explicitly described method.
    pub fn with_method(mut self, method: MethodDescriptor) -> Self {
        self.methods.push(method);
        self
    }

    /// The class name.
    pub fn name(&self) -> &ClassName {
        &self.name
    }

    /// Default field values for new instances.
    pub fn default_fields(&self) -> BTreeMap<String, Value> {
        self.fields.clone()
    }

    /// Declared field names in order.
    pub fn field_names(&self) -> impl Iterator<Item = &str> {
        self.fields.keys().map(String::as_str)
    }

    /// Looks up a method by name.
    pub fn method(&self, name: &MethodName) -> Option<&MethodDescriptor> {
        self.methods.iter().find(|m| m.name() == name)
    }

    /// All declared methods.
    pub fn methods(&self) -> &[MethodDescriptor] {
        &self.methods
    }
}

/// A deployed application: a set of classes.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AppDescriptor {
    name: String,
    classes: Vec<ClassDescriptor>,
}

impl AppDescriptor {
    /// Creates an empty application descriptor.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            classes: Vec::new(),
        }
    }

    /// Adds a class.
    pub fn with_class(mut self, class: ClassDescriptor) -> Self {
        self.classes.push(class);
        self
    }

    /// The application name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Looks up a class by name.
    pub fn class(&self, name: &ClassName) -> Option<&ClassDescriptor> {
        self.classes.iter().find(|c| c.name() == name)
    }

    /// All deployed classes.
    pub fn classes(&self) -> &[ClassDescriptor] {
        &self.classes
    }
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convention_based_kinds() {
        assert_eq!(
            MethodDescriptor::by_convention("setSeats").kind(),
            MethodKind::Write
        );
        assert_eq!(
            MethodDescriptor::by_convention("getSeats").kind(),
            MethodKind::Read
        );
        // Safe side: unknown naming is a write.
        assert_eq!(
            MethodDescriptor::by_convention("recompute").kind(),
            MethodKind::Write
        );
    }

    #[test]
    fn fields_generate_accessors() {
        let class = ClassDescriptor::new("Flight").with_field("seats", Value::Int(0));
        assert!(class.method(&MethodName::from("setSeats")).is_some());
        assert!(class.method(&MethodName::from("getSeats")).is_some());
        assert_eq!(class.default_fields()["seats"], Value::Int(0));
    }

    #[test]
    fn app_lookup() {
        let app = AppDescriptor::new("a").with_class(ClassDescriptor::new("Alarm"));
        assert!(app.class(&ClassName::from("Alarm")).is_some());
        assert!(app.class(&ClassName::from("Nope")).is_none());
        assert_eq!(app.name(), "a");
    }
}
