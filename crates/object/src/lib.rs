//! # dedisys-object
//!
//! The distributed-object container — the EJB entity-bean replacement.
//!
//! The target systems of the dissertation are tightly coupled,
//! data-centric distributed object systems (§1.4): business data is
//! encapsulated by objects and modified through (possibly nested)
//! method invocations. This crate provides that object model:
//!
//! * [`EntityState`] — an entity's attribute record with a version and
//!   freshness estimation (the `VersionedEntity` of Figure 4.3).
//! * [`ClassDescriptor`] / [`MethodDescriptor`] — deployed classes and
//!   their methods, with EJB-style `set*` write detection (§4.3).
//! * [`Invocation`] — the **command-pattern** invocation object that
//!   §5.3 identifies as the key enabling factor for middleware
//!   integration; arbitrary payload can be attached.
//! * [`Interceptor`] / [`InterceptorChain`] — the pluggable invocation
//!   interception of Figure 4.5.
//! * [`EntityContainer`] — per-node entity storage with transactional
//!   write buffering (read-your-writes, apply-on-commit).
//! * [`MethodBody`] / [`AppDescriptor`] — application deployment:
//!   classes, default field values and method implementations.
//! * [`NamingService`] — name → object bindings (the JNDI stand-in).
//!
//! ## Example
//!
//! ```
//! use dedisys_object::{AppDescriptor, ClassDescriptor, EntityContainer, EntityState};
//! use dedisys_types::{NodeId, ObjectId, SimTime, TxId, Value};
//!
//! let flight_class = ClassDescriptor::new("Flight")
//!     .with_field("seats", Value::Int(0))
//!     .with_field("soldTickets", Value::Int(0));
//! let app = AppDescriptor::new("booking").with_class(flight_class);
//!
//! let mut container = EntityContainer::new(&app);
//! let tx = TxId::new(NodeId(0), 1);
//! let id = ObjectId::new("Flight", "LH-441");
//! container.create(tx, EntityState::for_class(&app, &id).unwrap()).unwrap();
//! container.write_field(tx, &id, "seats", Value::Int(80), SimTime::ZERO).unwrap();
//! assert_eq!(container.read_field(tx, &id, "seats").unwrap(), Value::Int(80));
//! container.commit(tx);
//! ```

mod class;
mod container;
mod entity;
mod interceptor;
mod invocation;
mod method;
mod naming;

pub use class::{AppDescriptor, ClassDescriptor, MethodDescriptor, MethodKind};
pub use container::{ContainerStats, EntityContainer};
pub use entity::EntityState;
pub use interceptor::{Interceptor, InterceptorChain};
pub use invocation::Invocation;
pub use method::{MethodBody, MethodContext, MethodTable};
pub use naming::NamingService;
