//! Invocation interception (Figure 4.5).
//!
//! JBoss passes an invocation object through a chain of interceptors,
//! each providing a middleware service (security, transactions, …)
//! before the final interceptor invokes the bean. Here the chain is
//! generic over a context type `C` — the middleware node — so
//! interceptors can reach every service they need.

use crate::Invocation;
use dedisys_types::{Result, Value};

/// A link of the interceptor chain.
///
/// `before` runs on the way in (outermost first); returning an error
/// aborts the invocation — `after` still runs (with the error result)
/// for every interceptor whose `before` completed, in reverse order, so
/// services can release per-invocation state.
pub trait Interceptor<C> {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Called before the target method executes.
    ///
    /// # Errors
    ///
    /// An error aborts the invocation (e.g. a violated precondition).
    fn before(&mut self, cx: &mut C, inv: &mut Invocation) -> Result<()> {
        let _ = (cx, inv);
        Ok(())
    }

    /// Called after the target method executed (or failed); may inspect
    /// and replace the result — e.g. the CCMgr turns a successful result
    /// into an error when a postcondition fails.
    fn after(&mut self, cx: &mut C, inv: &Invocation, result: &mut Result<Value>) {
        let _ = (cx, inv, result);
    }
}

/// An ordered chain of interceptors around a terminal dispatcher.
pub struct InterceptorChain<C> {
    interceptors: Vec<Box<dyn Interceptor<C> + Send>>,
}

impl<C> Default for InterceptorChain<C> {
    fn default() -> Self {
        Self {
            interceptors: Vec::new(),
        }
    }
}

impl<C> std::fmt::Debug for InterceptorChain<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.interceptors.iter().map(|i| i.name()).collect();
        write!(f, "InterceptorChain{names:?}")
    }
}

impl<C> InterceptorChain<C> {
    /// Creates an empty chain.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an interceptor (runs after the already-registered ones
    /// on the way in) — the `standardjboss.xml` configuration step.
    pub fn push(&mut self, interceptor: Box<dyn Interceptor<C> + Send>) {
        self.interceptors.push(interceptor);
    }

    /// Number of registered interceptors.
    pub fn len(&self) -> usize {
        self.interceptors.len()
    }

    /// Whether the chain is empty.
    pub fn is_empty(&self) -> bool {
        self.interceptors.is_empty()
    }

    /// Passes `inv` through the chain around `terminal` (the container
    /// dispatch).
    ///
    /// # Errors
    ///
    /// Propagates the first `before` failure or the (possibly
    /// interceptor-rewritten) terminal outcome.
    pub fn invoke(
        &mut self,
        cx: &mut C,
        inv: &mut Invocation,
        terminal: impl FnOnce(&mut C, &Invocation) -> Result<Value>,
    ) -> Result<Value> {
        let mut entered = 0;
        let mut result: Result<Value> = Ok(Value::Null);
        let mut aborted = false;
        for interceptor in &mut self.interceptors {
            match interceptor.before(cx, inv) {
                Ok(()) => entered += 1,
                Err(e) => {
                    result = Err(e);
                    aborted = true;
                    break;
                }
            }
        }
        if !aborted {
            result = terminal(cx, inv);
        }
        for interceptor in self.interceptors[..entered].iter_mut().rev() {
            interceptor.after(cx, inv, &mut result);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::{Error, NodeId, ObjectId, TxId};

    #[derive(Default)]
    struct TraceCtx {
        log: Vec<String>,
    }

    struct Tracer {
        name: String,
        fail_before: bool,
    }

    impl Interceptor<TraceCtx> for Tracer {
        fn name(&self) -> &str {
            &self.name
        }

        fn before(&mut self, cx: &mut TraceCtx, _inv: &mut Invocation) -> Result<()> {
            cx.log.push(format!("before:{}", self.name));
            if self.fail_before {
                Err(Error::Config("veto".into()))
            } else {
                Ok(())
            }
        }

        fn after(&mut self, cx: &mut TraceCtx, _inv: &Invocation, _result: &mut Result<Value>) {
            cx.log.push(format!("after:{}", self.name));
        }
    }

    fn tracer(name: &str) -> Box<Tracer> {
        Box::new(Tracer {
            name: name.into(),
            fail_before: false,
        })
    }

    fn inv() -> Invocation {
        Invocation::new(
            TxId::new(NodeId(0), 1),
            ObjectId::new("A", "1"),
            "m",
            vec![],
        )
    }

    #[test]
    fn chain_wraps_terminal_in_order() {
        let mut chain: InterceptorChain<TraceCtx> = InterceptorChain::new();
        chain.push(tracer("tx"));
        chain.push(tracer("ccm"));
        let mut cx = TraceCtx::default();
        let result = chain
            .invoke(&mut cx, &mut inv(), |cx, _| {
                cx.log.push("terminal".into());
                Ok(Value::Int(1))
            })
            .unwrap();
        assert_eq!(result, Value::Int(1));
        assert_eq!(
            cx.log,
            vec![
                "before:tx",
                "before:ccm",
                "terminal",
                "after:ccm",
                "after:tx"
            ]
        );
    }

    #[test]
    fn before_failure_skips_terminal_but_unwinds() {
        let mut chain: InterceptorChain<TraceCtx> = InterceptorChain::new();
        chain.push(tracer("outer"));
        chain.push(Box::new(Tracer {
            name: "veto".into(),
            fail_before: true,
        }));
        chain.push(tracer("inner"));
        let mut cx = TraceCtx::default();
        let result = chain.invoke(&mut cx, &mut inv(), |cx, _| {
            cx.log.push("terminal".into());
            Ok(Value::Null)
        });
        assert!(result.is_err());
        assert_eq!(cx.log, vec!["before:outer", "before:veto", "after:outer"]);
    }

    #[test]
    fn after_may_rewrite_the_result() {
        struct Rewriter;
        impl Interceptor<()> for Rewriter {
            fn name(&self) -> &str {
                "rewriter"
            }
            fn after(&mut self, _cx: &mut (), _inv: &Invocation, result: &mut Result<Value>) {
                *result = Err(Error::Config("postcondition failed".into()));
            }
        }
        let mut chain: InterceptorChain<()> = InterceptorChain::new();
        chain.push(Box::new(Rewriter));
        let result = chain.invoke(&mut (), &mut inv(), |_, _| Ok(Value::Int(1)));
        assert!(result.is_err());
    }
}
