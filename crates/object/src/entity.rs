//! Entity state records.

use crate::AppDescriptor;
use dedisys_types::{Error, ObjectId, Result, SimDuration, SimTime, Value, Version, VersionInfo};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The attribute record of one entity replica.
///
/// Implements the `VersionedEntity` contract of Figure 4.3: besides the
/// held [`Version`], the entity can estimate the latest version of the
/// logical object from its usual update interval, feeding the freshness
/// criteria used in threat negotiation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EntityState {
    id: ObjectId,
    fields: BTreeMap<String, Value>,
    version: Version,
    /// Virtual time of the last applied update.
    last_update_at: SimTime,
    /// If the entity is usually updated every `interval`, the estimated
    /// latest version grows accordingly while the copy is stale.
    expected_update_interval: Option<SimDuration>,
}

impl EntityState {
    /// Creates an entity with explicit initial fields.
    pub fn new(id: ObjectId, fields: BTreeMap<String, Value>) -> Self {
        Self {
            id,
            fields,
            version: Version::INITIAL,
            last_update_at: SimTime::ZERO,
            expected_update_interval: None,
        }
    }

    /// Creates an entity with the default field values of its class in
    /// `app`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ClassNotDeployed`] if the class is unknown.
    pub fn for_class(app: &AppDescriptor, id: &ObjectId) -> Result<Self> {
        let class = app
            .class(id.class())
            .ok_or_else(|| Error::ClassNotDeployed(id.class().to_string()))?;
        Ok(Self::new(id.clone(), class.default_fields()))
    }

    /// The entity id.
    pub fn id(&self) -> &ObjectId {
        &self.id
    }

    /// The value of `field` ([`Value::Null`] if never set).
    pub fn field(&self, field: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.fields.get(field).unwrap_or(&NULL)
    }

    /// All fields in name order.
    pub fn fields(&self) -> &BTreeMap<String, Value> {
        &self.fields
    }

    /// Sets `field`, bumping the version and recording the update time.
    pub fn set_field(&mut self, field: impl Into<String>, value: Value, at: SimTime) {
        self.fields.insert(field.into(), value);
        self.version = self.version.next();
        self.last_update_at = at;
    }

    /// Overwrites the full state from another replica (update
    /// propagation), adopting its version.
    pub fn apply_replica_state(&mut self, other: &EntityState, at: SimTime) {
        debug_assert_eq!(self.id, other.id, "replica state for a different object");
        self.fields = other.fields.clone();
        self.version = other.version;
        self.last_update_at = at;
    }

    /// The held version (`getVersion()`).
    pub fn version(&self) -> Version {
        self.version
    }

    /// Declares the expected update interval used for freshness
    /// estimation.
    pub fn set_expected_update_interval(&mut self, interval: SimDuration) {
        self.expected_update_interval = Some(interval);
    }

    /// The `VersionedEntity` info at virtual time `now`
    /// (`getVersion()` / `getEstimatedLatestVersion()`).
    pub fn version_info(&self, now: SimTime) -> VersionInfo {
        let estimated = match self.expected_update_interval {
            Some(interval) if interval > SimDuration::ZERO && now > self.last_update_at => {
                let missed = now.since(self.last_update_at).as_nanos() / interval.as_nanos();
                Version(self.version.0 + missed)
            }
            _ => self.version,
        };
        VersionInfo::new(self.version, estimated)
    }

    /// Serializes the state for persistence/propagation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persistence`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| Error::Persistence(e.to_string()))
    }

    /// Restores a state serialized by [`EntityState::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persistence`] on deserialization failure.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::Persistence(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entity() -> EntityState {
        EntityState::new(ObjectId::new("Flight", "F1"), BTreeMap::new())
    }

    #[test]
    fn set_field_bumps_version() {
        let mut e = entity();
        assert_eq!(e.version(), Version(0));
        e.set_field("seats", Value::Int(80), SimTime::from_nanos(5));
        assert_eq!(e.version(), Version(1));
        assert_eq!(e.field("seats"), &Value::Int(80));
        assert_eq!(e.field("unknown"), &Value::Null);
    }

    #[test]
    fn version_info_estimates_missed_updates() {
        let mut e = entity();
        e.set_field("x", Value::Int(1), SimTime::from_nanos(0));
        e.set_expected_update_interval(SimDuration::from_millis(10));
        let info = e.version_info(SimTime::from_nanos(35_000_000));
        assert_eq!(info.version, Version(1));
        assert_eq!(info.missed_updates(), 3);
    }

    #[test]
    fn version_info_without_interval_is_fresh() {
        let e = entity();
        let info = e.version_info(SimTime::from_nanos(1_000_000));
        assert_eq!(info.missed_updates(), 0);
    }

    #[test]
    fn apply_replica_state_adopts_fields_and_version() {
        let mut a = entity();
        let mut b = entity();
        b.set_field("seats", Value::Int(80), SimTime::from_nanos(1));
        b.set_field("seats", Value::Int(90), SimTime::from_nanos(2));
        a.apply_replica_state(&b, SimTime::from_nanos(3));
        assert_eq!(a.version(), Version(2));
        assert_eq!(a.field("seats"), &Value::Int(90));
    }

    #[test]
    fn json_roundtrip() {
        let mut e = entity();
        e.set_field("seats", Value::Int(80), SimTime::from_nanos(1));
        let json = e.to_json().unwrap();
        let back = EntityState::from_json(&json).unwrap();
        assert_eq!(e, back);
    }
}
