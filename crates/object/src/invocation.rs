//! Command-pattern invocation objects.

use dedisys_types::{MethodName, MethodSignature, ObjectId, TxId, Value};
use std::collections::BTreeMap;

/// A method invocation reified as an object (the command pattern the
/// paper identifies as *the* enabling factor for middleware
/// integration, §5.3).
///
/// Interceptors may attach arbitrary payload to the invocation — this is
/// how JBoss associates security contexts or transactions with a call,
/// and how the CCMgr carries validation bookkeeping here.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// Transaction the invocation runs in.
    pub tx: TxId,
    /// Target object.
    pub target: ObjectId,
    /// Invoked method.
    pub method: MethodName,
    /// Arguments.
    pub args: Vec<Value>,
    /// Attached payload (interceptor-private data).
    attachments: BTreeMap<String, Value>,
    /// Nesting depth (0 = top-level client call; >0 = nested call made
    /// from within a method body — the "internal invocation" case of
    /// Figure 4.5 that requires AOP-style interception).
    pub depth: u32,
}

impl Invocation {
    /// Creates a top-level invocation.
    pub fn new(
        tx: TxId,
        target: ObjectId,
        method: impl Into<MethodName>,
        args: Vec<Value>,
    ) -> Self {
        Self {
            tx,
            target,
            method: method.into(),
            args,
            attachments: BTreeMap::new(),
            depth: 0,
        }
    }

    /// Derives a nested invocation (one level deeper) within the same
    /// transaction.
    pub fn nested(
        &self,
        target: ObjectId,
        method: impl Into<MethodName>,
        args: Vec<Value>,
    ) -> Self {
        Self {
            tx: self.tx,
            target,
            method: method.into(),
            args,
            attachments: BTreeMap::new(),
            depth: self.depth + 1,
        }
    }

    /// The `(class, method)` signature for constraint-repository
    /// lookups.
    pub fn signature(&self) -> MethodSignature {
        MethodSignature::new(self.target.class().clone(), self.method.clone())
    }

    /// Attaches payload under `key` (overwriting).
    pub fn attach(&mut self, key: impl Into<String>, value: Value) {
        self.attachments.insert(key.into(), value);
    }

    /// Reads attached payload.
    pub fn attachment(&self, key: &str) -> Option<&Value> {
        self.attachments.get(key)
    }

    /// The first argument, if present.
    pub fn arg0(&self) -> Option<&Value> {
        self.args.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::NodeId;

    fn inv() -> Invocation {
        Invocation::new(
            TxId::new(NodeId(0), 1),
            ObjectId::new("Flight", "F1"),
            "setSeats",
            vec![Value::Int(80)],
        )
    }

    #[test]
    fn signature_combines_class_and_method() {
        assert_eq!(inv().signature().to_string(), "Flight::setSeats");
    }

    #[test]
    fn nested_inherits_tx_and_increments_depth() {
        let outer = inv();
        let inner = outer.nested(ObjectId::new("Person", "P1"), "getName", vec![]);
        assert_eq!(inner.tx, outer.tx);
        assert_eq!(inner.depth, 1);
        assert_eq!(inner.nested(ObjectId::new("A", "1"), "m", vec![]).depth, 2);
    }

    #[test]
    fn attachments_roundtrip() {
        let mut i = inv();
        assert!(i.attachment("security").is_none());
        i.attach("security", Value::from("alice"));
        assert_eq!(i.attachment("security"), Some(&Value::from("alice")));
    }

    #[test]
    fn arg0_access() {
        assert_eq!(inv().arg0(), Some(&Value::Int(80)));
        let no_args = Invocation::new(
            TxId::new(NodeId(0), 1),
            ObjectId::new("A", "1"),
            "m",
            vec![],
        );
        assert_eq!(no_args.arg0(), None);
    }
}
