//! Per-node entity storage with transactional write buffering.

use crate::{AppDescriptor, EntityState};
use dedisys_store::{ReplayReport, TableStore, WriteAheadLog};
use dedisys_types::{ClassName, Error, ObjectId, Result, SimTime, TxId, Value};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Journal table holding committed entity snapshots.
const JOURNAL_TABLE: &str = "entities";

/// Operation counters of a container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ContainerStats {
    /// Entities created (committed).
    pub creates: u64,
    /// Field writes (buffered).
    pub writes: u64,
    /// Field reads.
    pub reads: u64,
    /// Entities deleted (committed).
    pub deletes: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions rolled back.
    pub rollbacks: u64,
}

#[derive(Debug, Default, Clone)]
struct TxBuffer {
    entities: BTreeMap<ObjectId, EntityState>,
    created: HashSet<ObjectId>,
    deleted: HashSet<ObjectId>,
}

/// Entity storage of one node (one replica set member).
///
/// Writes are buffered per transaction (read-your-writes) and applied
/// on [`EntityContainer::commit`]; [`EntityContainer::rollback`]
/// discards them — giving the "A" and "I" of the AID transactions the
/// balancing approach builds upon (Figure 1.2).
///
/// Every change to the committed state is additionally appended to a
/// per-node write-ahead *journal*. The journal models the node's
/// durable disk: [`EntityContainer::crash_volatile`] wipes the
/// committed map and every transaction buffer (volatile memory) while
/// keeping the journal, and [`EntityContainer::recover_from_journal`]
/// replays it to reconstruct the committed state after a restart.
#[derive(Debug, Clone)]
pub struct EntityContainer {
    app: AppDescriptor,
    committed: BTreeMap<ObjectId, EntityState>,
    buffers: HashMap<TxId, TxBuffer>,
    journal: WriteAheadLog,
    stats: ContainerStats,
}

impl EntityContainer {
    /// Creates an empty container for `app`.
    pub fn new(app: &AppDescriptor) -> Self {
        Self {
            app: app.clone(),
            committed: BTreeMap::new(),
            buffers: HashMap::new(),
            journal: WriteAheadLog::new(),
            stats: ContainerStats::default(),
        }
    }

    /// The deployed application.
    pub fn app(&self) -> &AppDescriptor {
        &self.app
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ContainerStats {
        self.stats
    }

    /// Creates `entity` within `tx`.
    ///
    /// # Errors
    ///
    /// * [`Error::ClassNotDeployed`] — unknown class.
    /// * [`Error::ObjectExists`] — id already taken (visible to `tx`).
    pub fn create(&mut self, tx: TxId, entity: EntityState) -> Result<()> {
        if self.app.class(entity.id().class()).is_none() {
            return Err(Error::ClassNotDeployed(entity.id().class().to_string()));
        }
        if self.exists(tx, entity.id()) {
            return Err(Error::ObjectExists(entity.id().clone()));
        }
        let id = entity.id().clone();
        let buffer = self.buffers.entry(tx).or_default();
        buffer.deleted.remove(&id);
        buffer.created.insert(id.clone());
        buffer.entities.insert(id, entity);
        Ok(())
    }

    /// Deletes the entity within `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if not visible to `tx`.
    pub fn delete(&mut self, tx: TxId, id: &ObjectId) -> Result<()> {
        if !self.exists(tx, id) {
            return Err(Error::ObjectNotFound(id.clone()));
        }
        let buffer = self.buffers.entry(tx).or_default();
        buffer.entities.remove(id);
        buffer.created.remove(id);
        buffer.deleted.insert(id.clone());
        Ok(())
    }

    /// Whether `id` is visible to `tx` (committed or created in `tx`,
    /// and not deleted in `tx`).
    pub fn exists(&self, tx: TxId, id: &ObjectId) -> bool {
        if let Some(buffer) = self.buffers.get(&tx) {
            if buffer.deleted.contains(id) {
                return false;
            }
            if buffer.entities.contains_key(id) {
                return true;
            }
        }
        self.committed.contains_key(id)
    }

    /// Reads `field` of `id` as visible to `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if not visible to `tx`.
    pub fn read_field(&mut self, tx: TxId, id: &ObjectId, field: &str) -> Result<Value> {
        self.stats.reads += 1;
        self.view(tx, id).map(|e| e.field(field).clone())
    }

    /// Writes `field` of `id` within `tx` (copy-on-write buffering).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if not visible to `tx`.
    pub fn write_field(
        &mut self,
        tx: TxId,
        id: &ObjectId,
        field: &str,
        value: Value,
        at: SimTime,
    ) -> Result<()> {
        self.stats.writes += 1;
        let base = self.view(tx, id)?.clone();
        let buffer = self.buffers.entry(tx).or_default();
        let entity = buffer.entities.entry(id.clone()).or_insert(base);
        entity.set_field(field, value, at);
        Ok(())
    }

    /// The entity state of `id` as visible to `tx`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if not visible to `tx`.
    pub fn view(&self, tx: TxId, id: &ObjectId) -> Result<&EntityState> {
        if let Some(buffer) = self.buffers.get(&tx) {
            if buffer.deleted.contains(id) {
                return Err(Error::ObjectNotFound(id.clone()));
            }
            if let Some(e) = buffer.entities.get(id) {
                return Ok(e);
            }
        }
        self.committed
            .get(id)
            .ok_or_else(|| Error::ObjectNotFound(id.clone()))
    }

    /// The state of `id` as buffered by `tx` on this node, if `tx`
    /// created or modified it here (`None` if untouched or deleted).
    /// Used by cross-node validation: a distributed transaction's
    /// buffered writes live on the nodes that executed them.
    pub fn buffered_view(&self, tx: TxId, id: &ObjectId) -> Option<&EntityState> {
        let buffer = self.buffers.get(&tx)?;
        if buffer.deleted.contains(id) {
            return None;
        }
        buffer.entities.get(id)
    }

    /// Applies `tx`'s buffer to the committed state. Returns the ids
    /// that were written/created and those deleted, in deterministic
    /// order (input for update propagation).
    pub fn commit(&mut self, tx: TxId) -> (Vec<ObjectId>, Vec<ObjectId>) {
        self.stats.commits += 1;
        let Some(buffer) = self.buffers.remove(&tx) else {
            return (Vec::new(), Vec::new());
        };
        let mut written = Vec::new();
        for (id, entity) in buffer.entities {
            if buffer.created.contains(&id) {
                self.stats.creates += 1;
            }
            written.push(id.clone());
            self.journal_put(&entity);
            self.committed.insert(id, entity);
        }
        let mut deleted: Vec<ObjectId> = buffer.deleted.into_iter().collect();
        deleted.sort();
        for id in &deleted {
            self.stats.deletes += 1;
            self.journal.append_delete(JOURNAL_TABLE, id.to_string());
            self.committed.remove(id);
        }
        (written, deleted)
    }

    /// Discards `tx`'s buffer.
    pub fn rollback(&mut self, tx: TxId) {
        self.stats.rollbacks += 1;
        self.buffers.remove(&tx);
    }

    /// Whether `tx` has buffered any changes.
    pub fn has_pending(&self, tx: TxId) -> bool {
        self.buffers
            .get(&tx)
            .is_some_and(|b| !b.entities.is_empty() || !b.deleted.is_empty())
    }

    /// The committed state of `id` (no transaction view).
    pub fn committed_entity(&self, id: &ObjectId) -> Option<&EntityState> {
        self.committed.get(id)
    }

    /// Directly installs a committed state, bypassing transactions —
    /// used by the replication service when applying propagated updates
    /// to backup replicas. The install is journalled so a crashed
    /// backup recovers the replicated state too.
    pub fn install_committed(&mut self, entity: EntityState) {
        self.journal_put(&entity);
        self.committed.insert(entity.id().clone(), entity);
    }

    /// Directly removes a committed entity (propagated delete).
    pub fn remove_committed(&mut self, id: &ObjectId) -> Option<EntityState> {
        let removed = self.committed.remove(id);
        if removed.is_some() {
            self.journal.append_delete(JOURNAL_TABLE, id.to_string());
        }
        removed
    }

    fn journal_put(&mut self, entity: &EntityState) {
        let json = entity
            .to_json()
            .expect("entity state serializes to journal");
        self.journal
            .append_put(JOURNAL_TABLE, entity.id().to_string(), json);
    }

    /// Number of entries in the durable journal.
    pub fn journal_len(&self) -> usize {
        self.journal.len()
    }

    /// Simulates a node crash: wipes the committed map and every
    /// transaction buffer (volatile memory), keeping the journal (the
    /// node's durable disk). Returns the number of transaction buffers
    /// that were lost.
    pub fn crash_volatile(&mut self) -> usize {
        let lost = self.buffers.len();
        self.buffers.clear();
        self.committed.clear();
        lost
    }

    /// Replays the durable journal to reconstruct the committed state
    /// after [`EntityContainer::crash_volatile`]. A torn tail (entries
    /// whose per-entry checksum fails — a journal write interrupted by
    /// the crash) is truncated first; the report says how many entries
    /// were replayed and how many were dropped.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Persistence`] if an intact journal record fails
    /// to deserialize (corrupted journal body).
    pub fn recover_from_journal(&mut self) -> Result<ReplayReport> {
        let truncated = self.journal.truncate_torn_tail();
        let mut table = TableStore::new();
        self.journal.replay_into(&mut table);
        let replayed = self.journal.len() as u64;
        self.committed.clear();
        for (_key, record) in table.scan(JOURNAL_TABLE) {
            let entity = EntityState::from_json(record)?;
            self.committed.insert(entity.id().clone(), entity);
        }
        Ok(ReplayReport {
            replayed,
            truncated,
        })
    }

    /// Fault injection: corrupts the checksum of the last `entries`
    /// journal entries, simulating a torn write caught by a crash.
    /// Returns the number of entries corrupted.
    pub fn corrupt_journal_tail(&mut self, entries: usize) -> usize {
        self.journal.corrupt_tail(entries)
    }

    /// All committed entities of `class`, in id order (query
    /// operations used by invariant constraints without context object).
    pub fn entities_of_class<'a>(
        &'a self,
        class: &'a ClassName,
    ) -> impl Iterator<Item = &'a EntityState> + 'a {
        self.committed
            .values()
            .filter(move |e| e.id().class() == class)
    }

    /// All committed object ids, in sorted order — convergence checks
    /// compare these across replicas after heal + reconcile.
    pub fn committed_ids(&self) -> impl Iterator<Item = &ObjectId> + '_ {
        self.committed.keys()
    }

    /// Number of committed entities.
    pub fn len(&self) -> usize {
        self.committed.len()
    }

    /// Whether no entities are committed.
    pub fn is_empty(&self) -> bool {
        self.committed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassDescriptor;
    use dedisys_types::NodeId;

    fn app() -> AppDescriptor {
        AppDescriptor::new("test").with_class(
            ClassDescriptor::new("Flight")
                .with_field("seats", Value::Int(0))
                .with_field("soldTickets", Value::Int(0)),
        )
    }

    fn tx(n: u64) -> TxId {
        TxId::new(NodeId(0), n)
    }

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    fn flight(c: &mut EntityContainer, tx_: TxId, key: &str) -> ObjectId {
        let id = ObjectId::new("Flight", key);
        c.create(tx_, EntityState::for_class(c.app(), &id).unwrap().clone())
            .unwrap();
        id
    }

    #[test]
    fn create_read_write_commit() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.write_field(tx(1), &id, "seats", Value::Int(80), t0())
            .unwrap();
        // Read-your-writes before commit.
        assert_eq!(c.read_field(tx(1), &id, "seats").unwrap(), Value::Int(80));
        // Not visible to another transaction yet.
        assert!(c.read_field(tx(2), &id, "seats").is_err());
        let (written, deleted) = c.commit(tx(1));
        assert_eq!(written, vec![id.clone()]);
        assert!(deleted.is_empty());
        assert_eq!(c.read_field(tx(2), &id, "seats").unwrap(), Value::Int(80));
    }

    #[test]
    fn rollback_discards_buffer() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.commit(tx(1));
        c.write_field(tx(2), &id, "seats", Value::Int(99), t0())
            .unwrap();
        assert!(c.has_pending(tx(2)));
        c.rollback(tx(2));
        assert_eq!(c.read_field(tx(3), &id, "seats").unwrap(), Value::Int(0));
    }

    #[test]
    fn delete_in_tx_hides_object() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.commit(tx(1));
        c.delete(tx(2), &id).unwrap();
        assert!(!c.exists(tx(2), &id));
        assert!(c.exists(tx(3), &id), "still visible to others");
        let (_, deleted) = c.commit(tx(2));
        assert_eq!(deleted, vec![id.clone()]);
        assert!(!c.exists(tx(3), &id));
    }

    #[test]
    fn duplicate_create_rejected() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        let dup = EntityState::for_class(&app(), &id).unwrap();
        assert_eq!(c.create(tx(1), dup), Err(Error::ObjectExists(id)));
    }

    #[test]
    fn unknown_class_rejected() {
        let mut c = EntityContainer::new(&app());
        let e = EntityState::new(ObjectId::new("Nope", "1"), BTreeMap::new());
        assert!(matches!(
            c.create(tx(1), e),
            Err(Error::ClassNotDeployed(_))
        ));
    }

    #[test]
    fn entities_of_class_query() {
        let mut c = EntityContainer::new(&app());
        flight(&mut c, tx(1), "F1");
        flight(&mut c, tx(1), "F2");
        c.commit(tx(1));
        let class = ClassName::from("Flight");
        assert_eq!(c.entities_of_class(&class).count(), 2);
    }

    #[test]
    fn install_and_remove_committed_bypass_tx() {
        let mut c = EntityContainer::new(&app());
        let id = ObjectId::new("Flight", "F1");
        let mut e = EntityState::for_class(&app(), &id).unwrap();
        e.set_field("seats", Value::Int(10), t0());
        c.install_committed(e);
        assert_eq!(
            c.committed_entity(&id).unwrap().field("seats"),
            &Value::Int(10)
        );
        assert!(c.remove_committed(&id).is_some());
        assert!(c.is_empty());
    }

    #[test]
    fn crash_loses_volatile_state_but_journal_recovers_committed() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.write_field(tx(1), &id, "seats", Value::Int(80), t0())
            .unwrap();
        c.commit(tx(1));
        // An uncommitted transaction is buffered when the crash hits.
        let id2 = flight(&mut c, tx(2), "F2");
        assert!(c.has_pending(tx(2)));

        let lost = c.crash_volatile();
        assert_eq!(lost, 1, "one open buffer lost");
        assert!(c.is_empty(), "committed map wiped");
        assert!(c.journal_len() > 0, "journal survives the crash");

        let report = c.recover_from_journal().unwrap();
        assert!(report.replayed >= 1);
        assert_eq!(report.truncated, 0);
        assert_eq!(
            c.committed_entity(&id).unwrap().field("seats"),
            &Value::Int(80)
        );
        // The buffered-but-uncommitted create is gone for good.
        assert!(c.committed_entity(&id2).is_none());
    }

    #[test]
    fn journal_tracks_deletes_and_installs() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.commit(tx(1));
        c.delete(tx(2), &id).unwrap();
        c.commit(tx(2));
        // Replication-path install is journalled too.
        let other = ObjectId::new("Flight", "F9");
        let mut e = EntityState::for_class(&app(), &other).unwrap();
        e.set_field("seats", Value::Int(7), t0());
        c.install_committed(e);

        c.crash_volatile();
        c.recover_from_journal().unwrap();
        assert!(c.committed_entity(&id).is_none(), "delete replayed");
        assert_eq!(
            c.committed_entity(&other).unwrap().field("seats"),
            &Value::Int(7)
        );
    }

    #[test]
    fn torn_journal_tail_is_truncated_on_recovery() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.commit(tx(1));
        let id2 = flight(&mut c, tx(2), "F2");
        c.commit(tx(2));

        // The write of F2 was torn mid-crash.
        assert_eq!(c.corrupt_journal_tail(1), 1);
        c.crash_volatile();
        let report = c.recover_from_journal().unwrap();
        assert_eq!(report.truncated, 1);
        assert!(c.committed_entity(&id).is_some(), "intact prefix kept");
        assert!(c.committed_entity(&id2).is_none(), "torn write dropped");
    }

    #[test]
    fn stats_accumulate() {
        let mut c = EntityContainer::new(&app());
        let id = flight(&mut c, tx(1), "F1");
        c.write_field(tx(1), &id, "seats", Value::Int(1), t0())
            .unwrap();
        c.read_field(tx(1), &id, "seats").unwrap();
        c.commit(tx(1));
        let s = c.stats();
        assert_eq!((s.creates, s.writes, s.reads, s.commits), (1, 1, 1, 1));
    }
}
