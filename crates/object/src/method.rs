//! Method bodies and dispatch.

use crate::{EntityContainer, Invocation};
use dedisys_types::{Error, MethodSignature, ObjectId, Result, SimTime, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Execution context handed to method bodies.
///
/// Gives the business logic transactional access to the entity
/// container — including *other* objects, enabling nested/cross-object
/// business operations like `Flight.sellTickets`.
pub struct MethodContext<'a> {
    /// The container of the executing node.
    pub container: &'a mut EntityContainer,
    /// The invocation being executed.
    pub invocation: &'a Invocation,
    /// Current virtual time.
    pub now: SimTime,
}

impl<'a> MethodContext<'a> {
    /// Reads a field of the invocation target.
    ///
    /// # Errors
    ///
    /// Propagates container lookup failures.
    pub fn read_own(&mut self, field: &str) -> Result<Value> {
        let target = self.invocation.target.clone();
        self.read(&target, field)
    }

    /// Writes a field of the invocation target.
    ///
    /// # Errors
    ///
    /// Propagates container lookup failures.
    pub fn write_own(&mut self, field: &str, value: Value) -> Result<()> {
        let target = self.invocation.target.clone();
        self.write(&target, field, value)
    }

    /// Reads a field of any object visible to the transaction.
    ///
    /// # Errors
    ///
    /// Propagates container lookup failures.
    pub fn read(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        self.container.read_field(self.invocation.tx, id, field)
    }

    /// Writes a field of any object visible to the transaction.
    ///
    /// # Errors
    ///
    /// Propagates container lookup failures.
    pub fn write(&mut self, id: &ObjectId, field: &str, value: Value) -> Result<()> {
        self.container
            .write_field(self.invocation.tx, id, field, value, self.now)
    }
}

/// Boxed business-logic function of a custom method body.
pub type CustomBody = Arc<dyn Fn(&mut MethodContext<'_>) -> Result<Value> + Send + Sync>;

/// The implementation of a deployed method.
#[derive(Clone)]
pub enum MethodBody {
    /// Writes the first argument into the named field.
    SetField(String),
    /// Returns the named field.
    GetField(String),
    /// Does nothing and returns [`Value::Null`] — the "empty method"
    /// of the Chapter 5 measurements.
    Empty,
    /// Arbitrary business logic.
    Custom(CustomBody),
}

impl fmt::Debug for MethodBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MethodBody::SetField(field) => write!(f, "SetField({field})"),
            MethodBody::GetField(field) => write!(f, "GetField({field})"),
            MethodBody::Empty => f.write_str("Empty"),
            MethodBody::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

impl MethodBody {
    /// Wraps a closure as a custom body.
    pub fn custom(
        f: impl Fn(&mut MethodContext<'_>) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        MethodBody::Custom(Arc::new(f))
    }

    /// Executes the body.
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] — a `SetField` body invoked without an
    ///   argument.
    /// * Anything the body itself produces.
    pub fn execute(&self, cx: &mut MethodContext<'_>) -> Result<Value> {
        match self {
            MethodBody::SetField(field) => {
                let value = cx
                    .invocation
                    .arg0()
                    .cloned()
                    .ok_or_else(|| Error::Config(format!("set{field}: missing argument")))?;
                cx.write_own(field, value)?;
                Ok(Value::Null)
            }
            MethodBody::GetField(field) => cx.read_own(field),
            MethodBody::Empty => Ok(Value::Null),
            MethodBody::Custom(f) => f(cx),
        }
    }
}

/// Registered method implementations, keyed by `(class, method)`.
///
/// Methods following the `set<Field>`/`get<Field>` convention for a
/// deployed field need no registration — dispatch derives the accessor
/// body automatically.
#[derive(Debug, Clone, Default)]
pub struct MethodTable {
    bodies: HashMap<MethodSignature, MethodBody>,
}

impl MethodTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the body for `(class, method)`.
    pub fn register(
        &mut self,
        class: impl Into<dedisys_types::ClassName>,
        method: impl Into<dedisys_types::MethodName>,
        body: MethodBody,
    ) {
        self.bodies
            .insert(MethodSignature::new(class.into(), method.into()), body);
    }

    /// Resolves the body for an invocation: registered body first, then
    /// the accessor convention against the class's deployed fields.
    ///
    /// # Errors
    ///
    /// * [`Error::ClassNotDeployed`] / [`Error::MethodNotDeployed`] for
    ///   unknown targets.
    pub fn resolve(&self, container: &EntityContainer, inv: &Invocation) -> Result<MethodBody> {
        let sig = inv.signature();
        if let Some(body) = self.bodies.get(&sig) {
            return Ok(body.clone());
        }
        let class = container
            .app()
            .class(inv.target.class())
            .ok_or_else(|| Error::ClassNotDeployed(inv.target.class().to_string()))?;
        let name = inv.method.as_str();
        for (prefix, setter) in [("set", true), ("get", false)] {
            if let Some(rest) = name.strip_prefix(prefix) {
                let field = decapitalize(rest);
                if class.field_names().any(|f| f == field) {
                    return Ok(if setter {
                        MethodBody::SetField(field)
                    } else {
                        MethodBody::GetField(field)
                    });
                }
            }
        }
        if class.method(&inv.method).is_some() {
            // Declared but no body and no accessor convention: empty.
            return Ok(MethodBody::Empty);
        }
        Err(Error::MethodNotDeployed(sig))
    }

    /// Resolves and executes the invocation's method.
    ///
    /// # Errors
    ///
    /// Propagates resolution and execution failures.
    pub fn dispatch(
        &self,
        container: &mut EntityContainer,
        inv: &Invocation,
        now: SimTime,
    ) -> Result<Value> {
        let body = self.resolve(container, inv)?;
        let mut cx = MethodContext {
            container,
            invocation: inv,
            now,
        };
        body.execute(&mut cx)
    }
}

fn decapitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AppDescriptor, ClassDescriptor, EntityState, MethodDescriptor, MethodKind};
    use dedisys_types::{NodeId, TxId};

    fn setup() -> (EntityContainer, MethodTable, ObjectId, TxId) {
        let app = AppDescriptor::new("test").with_class(
            ClassDescriptor::new("Flight")
                .with_field("seats", Value::Int(0))
                .with_field("soldTickets", Value::Int(0))
                .with_method(MethodDescriptor::with_kind(
                    "sellTickets",
                    MethodKind::Write,
                ))
                .with_method(MethodDescriptor::with_kind("noop", MethodKind::Read)),
        );
        let mut container = EntityContainer::new(&app);
        let tx = TxId::new(NodeId(0), 1);
        let id = ObjectId::new("Flight", "F1");
        container
            .create(tx, EntityState::for_class(&app, &id).unwrap())
            .unwrap();
        (container, MethodTable::new(), id, tx)
    }

    fn inv(tx: TxId, id: &ObjectId, method: &str, args: Vec<Value>) -> Invocation {
        Invocation::new(tx, id.clone(), method, args)
    }

    #[test]
    fn conventional_accessors_need_no_registration() {
        let (mut c, table, id, tx) = setup();
        table
            .dispatch(
                &mut c,
                &inv(tx, &id, "setSeats", vec![Value::Int(80)]),
                SimTime::ZERO,
            )
            .unwrap();
        let got = table
            .dispatch(&mut c, &inv(tx, &id, "getSeats", vec![]), SimTime::ZERO)
            .unwrap();
        assert_eq!(got, Value::Int(80));
    }

    #[test]
    fn declared_method_without_body_is_empty() {
        let (mut c, table, id, tx) = setup();
        let got = table
            .dispatch(&mut c, &inv(tx, &id, "noop", vec![]), SimTime::ZERO)
            .unwrap();
        assert_eq!(got, Value::Null);
    }

    #[test]
    fn custom_body_sells_tickets() {
        let (mut c, mut table, id, tx) = setup();
        table.register(
            "Flight",
            "sellTickets",
            MethodBody::custom(|cx| {
                let count = cx.invocation.arg0().and_then(Value::as_int).unwrap_or(1);
                let sold = cx.read_own("soldTickets")?.as_int().unwrap_or(0);
                cx.write_own("soldTickets", Value::Int(sold + count))?;
                Ok(Value::Int(sold + count))
            }),
        );
        let got = table
            .dispatch(
                &mut c,
                &inv(tx, &id, "sellTickets", vec![Value::Int(3)]),
                SimTime::ZERO,
            )
            .unwrap();
        assert_eq!(got, Value::Int(3));
        assert_eq!(c.read_field(tx, &id, "soldTickets").unwrap(), Value::Int(3));
    }

    #[test]
    fn unknown_method_rejected() {
        let (mut c, table, id, tx) = setup();
        let err = table
            .dispatch(&mut c, &inv(tx, &id, "fly", vec![]), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::MethodNotDeployed(_)));
    }

    #[test]
    fn setter_without_argument_rejected() {
        let (mut c, table, id, tx) = setup();
        let err = table
            .dispatch(&mut c, &inv(tx, &id, "setSeats", vec![]), SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }
}
