//! Name-to-object bindings (the JNDI stand-in, Figure 4.1 "NS").

use dedisys_types::{Error, ObjectId, Result};
use std::collections::BTreeMap;

/// A naming service binding string names to object ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NamingService {
    bindings: BTreeMap<String, ObjectId>,
}

impl NamingService {
    /// Creates an empty naming service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `name` to `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the name is already bound (use
    /// [`NamingService::rebind`] to replace).
    pub fn bind(&mut self, name: impl Into<String>, id: ObjectId) -> Result<()> {
        let name = name.into();
        if self.bindings.contains_key(&name) {
            return Err(Error::Config(format!("name '{name}' already bound")));
        }
        self.bindings.insert(name, id);
        Ok(())
    }

    /// Binds `name` to `id`, replacing any previous binding (returned).
    pub fn rebind(&mut self, name: impl Into<String>, id: ObjectId) -> Option<ObjectId> {
        self.bindings.insert(name.into(), id)
    }

    /// Looks up `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if unbound.
    pub fn lookup(&self, name: &str) -> Result<&ObjectId> {
        self.bindings
            .get(name)
            .ok_or_else(|| Error::Config(format!("name '{name}' not bound")))
    }

    /// Removes a binding, returning it.
    pub fn unbind(&mut self, name: &str) -> Option<ObjectId> {
        self.bindings.remove(name)
    }

    /// All bindings in name order.
    pub fn list(&self) -> impl Iterator<Item = (&str, &ObjectId)> {
        self.bindings.iter().map(|(n, id)| (n.as_str(), id))
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.bindings.len()
    }

    /// Whether no bindings exist.
    pub fn is_empty(&self) -> bool {
        self.bindings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_lookup_unbind() {
        let mut ns = NamingService::new();
        let id = ObjectId::new("Flight", "F1");
        ns.bind("flights/lh441", id.clone()).unwrap();
        assert_eq!(ns.lookup("flights/lh441").unwrap(), &id);
        assert!(ns.bind("flights/lh441", id.clone()).is_err());
        assert_eq!(ns.unbind("flights/lh441"), Some(id));
        assert!(ns.lookup("flights/lh441").is_err());
    }

    #[test]
    fn rebind_replaces() {
        let mut ns = NamingService::new();
        let a = ObjectId::new("A", "1");
        let b = ObjectId::new("B", "2");
        assert!(ns.rebind("x", a.clone()).is_none());
        assert_eq!(ns.rebind("x", b.clone()), Some(a));
        assert_eq!(ns.lookup("x").unwrap(), &b);
    }

    #[test]
    fn list_is_sorted() {
        let mut ns = NamingService::new();
        ns.bind("b", ObjectId::new("B", "1")).unwrap();
        ns.bind("a", ObjectId::new("A", "1")).unwrap();
        let names: Vec<&str> = ns.list().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }
}
