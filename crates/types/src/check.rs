//! Categories of constraint checks in a partitioned system (§3.1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The three categories of constraint checks of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CheckCategory {
    /// Full Constraint Check — all affected objects up to date.
    Full,
    /// Limited Constraint Check — checking possible but some affected
    /// objects possibly stale.
    Limited,
    /// No Constraint Check — at least one affected object unreachable
    /// (no replica accessible).
    NoCheck,
}

impl CheckCategory {
    /// Whether this category produces a consistency threat (LCC or NCC).
    pub fn is_threat(self) -> bool {
        !matches!(self, CheckCategory::Full)
    }
}

impl fmt::Display for CheckCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CheckCategory::Full => "FCC",
            CheckCategory::Limited => "LCC",
            CheckCategory::NoCheck => "NCC",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threat_categories() {
        assert!(!CheckCategory::Full.is_threat());
        assert!(CheckCategory::Limited.is_threat());
        assert!(CheckCategory::NoCheck.is_threat());
    }

    #[test]
    fn display_abbreviations() {
        assert_eq!(CheckCategory::Full.to_string(), "FCC");
        assert_eq!(CheckCategory::Limited.to_string(), "LCC");
        assert_eq!(CheckCategory::NoCheck.to_string(), "NCC");
    }
}
