//! Entity versions and freshness estimation (§4.2.1, `VersionedEntity`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Monotonically increasing version number of a (replicated) entity.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Version(pub u64);

impl Version {
    /// The initial version of a freshly created entity.
    pub const INITIAL: Version = Version(0);

    /// The version after one more update.
    pub fn next(self) -> Version {
        Version(self.0 + 1)
    }
}

impl fmt::Display for Version {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The `VersionedEntity` information of Figure 4.3: the version a local
/// replica actually has, and the version it *estimates* the logical
/// object to have by now (e.g. from the entity's usual update rate).
///
/// The difference feeds the freshness criteria used during declarative
/// negotiation of consistency threats (§4.2.3).
///
/// ```
/// use dedisys_types::{Version, VersionInfo};
/// let info = VersionInfo::new(Version(5), Version(8));
/// assert_eq!(info.missed_updates(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct VersionInfo {
    /// The version the local copy holds (`getVersion()`).
    pub version: Version,
    /// The version the object would expect to have by now
    /// (`getEstimatedLatestVersion()`).
    pub estimated_latest: Version,
}

impl VersionInfo {
    /// Creates version info from the held and estimated-latest versions.
    ///
    /// # Panics
    ///
    /// Panics if `estimated_latest` is older than `version` — an entity
    /// can never estimate fewer updates than it has observed.
    pub fn new(version: Version, estimated_latest: Version) -> Self {
        assert!(
            estimated_latest >= version,
            "estimated latest version {estimated_latest} older than held version {version}"
        );
        Self {
            version,
            estimated_latest,
        }
    }

    /// Info for a fully fresh copy (no estimated missed updates).
    pub fn fresh(version: Version) -> Self {
        Self::new(version, version)
    }

    /// Number of updates the local copy is estimated to have missed —
    /// the "maximum age" compared against a freshness criterion.
    pub fn missed_updates(&self) -> u64 {
        self.estimated_latest.0 - self.version.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_next() {
        assert_eq!(Version::INITIAL.next(), Version(1));
    }

    #[test]
    fn missed_updates() {
        assert_eq!(VersionInfo::fresh(Version(4)).missed_updates(), 0);
        assert_eq!(VersionInfo::new(Version(4), Version(7)).missed_updates(), 3);
    }

    #[test]
    #[should_panic(expected = "older than held version")]
    fn estimated_latest_must_not_be_older() {
        let _ = VersionInfo::new(Version(5), Version(4));
    }
}
