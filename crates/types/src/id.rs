//! Identifier newtypes used across the workspace.
//!
//! Per C-NEWTYPE, each identifier is a distinct type so a [`NodeId`] can
//! never be confused with a [`TxId`] and a [`ClassName`] never with a
//! [`MethodName`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node (server) in the distributed system.
///
/// Nodes are numbered densely from zero by the cluster builder.
///
/// ```
/// use dedisys_types::NodeId;
/// let n = NodeId(2);
/// assert_eq!(n.to_string(), "n2");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a transaction started through the transaction manager.
///
/// Transaction ids carry the originating node so ids minted on different
/// nodes never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxId {
    /// Node on which the transaction was started.
    pub node: NodeId,
    /// Per-node sequence number.
    pub seq: u64,
}

impl TxId {
    /// Creates a transaction id from its parts.
    pub fn new(node: NodeId, seq: u64) -> Self {
        Self { node, seq }
    }
}

impl fmt::Display for TxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tx-{}-{}", self.node.0, self.seq)
    }
}

/// Identifies a group-membership view (§4.1, GMS).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ViewId(pub u64);

impl ViewId {
    /// The view id following this one.
    pub fn next(self) -> ViewId {
        ViewId(self.0 + 1)
    }
}

impl fmt::Display for ViewId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
        )]
        pub struct $name(String);

        impl $name {
            /// Creates the name from anything string-like.
            pub fn new(name: impl Into<String>) -> Self {
                Self(name.into())
            }

            /// Returns the name as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self(s.to_owned())
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }
    };
}

name_type!(
    /// Name of an application class (e.g. `"Flight"`).
    ///
    /// Classes are the unit upon which invariant constraints define their
    /// context (§1.6).
    ClassName,
    "class"
);

name_type!(
    /// Name of a method of an application class (e.g. `"setAlarmKind"`).
    MethodName,
    "method"
);

name_type!(
    /// Unique name of an integrity constraint within an application
    /// (§4.2.2: constraint names are unique per application).
    ConstraintName,
    "constraint"
);

impl MethodName {
    /// Whether this method is considered a *write* under the EJB-style
    /// naming convention used by the replication service (§4.3): every
    /// method starting with `set` followed by an upper-case letter.
    pub fn is_setter_convention(&self) -> bool {
        let s = self.as_str();
        match s.strip_prefix("set") {
            Some(rest) => rest.chars().next().is_some_and(|c| c.is_uppercase()),
            None => false,
        }
    }
}

/// Identifies a single logical application object: a class plus a
/// primary key.
///
/// ```
/// use dedisys_types::ObjectId;
/// let alarm = ObjectId::new("Alarm", "A-17");
/// assert_eq!(alarm.to_string(), "Alarm#A-17");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ObjectId {
    class: ClassName,
    key: String,
}

impl ObjectId {
    /// Creates an object id for `class` with primary key `key`.
    pub fn new(class: impl Into<ClassName>, key: impl Into<String>) -> Self {
        Self {
            class: class.into(),
            key: key.into(),
        }
    }

    /// The class this object belongs to.
    pub fn class(&self) -> &ClassName {
        &self.class
    }

    /// The primary key within the class.
    pub fn key(&self) -> &str {
        &self.key
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.class, self.key)
    }
}

/// A `(class, method)` pair — the lookup key used by the constraint
/// repository to find constraints affected by an invocation (§2.1.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MethodSignature {
    /// Declaring class of the method.
    pub class: ClassName,
    /// Name of the method.
    pub method: MethodName,
}

impl MethodSignature {
    /// Creates a method signature from class and method names.
    pub fn new(class: impl Into<ClassName>, method: impl Into<MethodName>) -> Self {
        Self {
            class: class.into(),
            method: method.into(),
        }
    }
}

impl fmt::Display for MethodSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.class, self.method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(NodeId(3).index(), 3);
    }

    #[test]
    fn tx_ids_from_different_nodes_are_distinct() {
        let a = TxId::new(NodeId(0), 1);
        let b = TxId::new(NodeId(1), 1);
        assert_ne!(a, b);
        assert_eq!(a.to_string(), "tx-0-1");
    }

    #[test]
    fn view_id_next_increments() {
        assert_eq!(ViewId(1).next(), ViewId(2));
    }

    #[test]
    fn setter_convention_detection() {
        assert!(MethodName::from("setAlarmKind").is_setter_convention());
        assert!(MethodName::from("setX").is_setter_convention());
        assert!(!MethodName::from("settle").is_setter_convention());
        assert!(!MethodName::from("getAlarmKind").is_setter_convention());
        assert!(!MethodName::from("set").is_setter_convention());
    }

    #[test]
    fn object_id_parts_and_display() {
        let id = ObjectId::new("Flight", "LH-441");
        assert_eq!(id.class().as_str(), "Flight");
        assert_eq!(id.key(), "LH-441");
        assert_eq!(id.to_string(), "Flight#LH-441");
    }

    #[test]
    fn method_signature_display() {
        let sig = MethodSignature::new("Alarm", "setAlarmKind");
        assert_eq!(sig.to_string(), "Alarm::setAlarmKind");
    }

    #[test]
    fn names_roundtrip_serde() {
        let c = ClassName::from("RepairReport");
        let json = serde_json::to_string(&c).unwrap();
        let back: ClassName = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
