//! The workspace error type.

use crate::{ConstraintName, MethodSignature, NodeId, ObjectId, SatisfactionDegree, TxId};
use std::fmt;

/// Convenience result alias using [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced across the DeDiSys-RS workspace.
///
/// Following C-GOOD-ERR, this type implements [`std::error::Error`],
/// [`fmt::Display`], and is `Send + Sync`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// An application object (or all of its replicas) is unreachable
    /// from the current partition.
    ObjectUnreachable(ObjectId),
    /// No object with the given id exists.
    ObjectNotFound(ObjectId),
    /// An object with the given id already exists.
    ObjectExists(ObjectId),
    /// The class or method is not part of the deployed application.
    MethodNotDeployed(MethodSignature),
    /// The class is not part of the deployed application.
    ClassNotDeployed(String),
    /// A constraint was violated in healthy mode; the operation was
    /// aborted (§4.2.3 — the CCMgr sets the transaction rollback-only).
    ConstraintViolated {
        /// The violated constraint.
        constraint: ConstraintName,
    },
    /// A consistency threat was not accepted during negotiation; the
    /// operation was aborted (§3.2.1).
    ThreatRejected {
        /// The threatened constraint.
        constraint: ConstraintName,
        /// The satisfaction degree that was rejected.
        degree: SatisfactionDegree,
    },
    /// The constraint cannot be checked (affected objects unavailable).
    ConstraintUncheckable {
        /// The uncheckable constraint.
        constraint: ConstraintName,
    },
    /// The transaction does not exist or already terminated.
    NoSuchTransaction(TxId),
    /// The transaction was marked rollback-only and cannot commit.
    RollbackOnly(TxId),
    /// A prepare vote failed during two-phase commit.
    PrepareFailed {
        /// The transaction that failed to prepare.
        tx: TxId,
        /// The resource that voted no.
        resource: String,
    },
    /// A lock on an object is held by another transaction.
    LockConflict {
        /// The contended object.
        object: ObjectId,
        /// The transaction holding the lock.
        holder: TxId,
    },
    /// The target node is not reachable from the caller's partition.
    NodeUnreachable(NodeId),
    /// The node id does not exist in the cluster topology.
    UnknownNode(NodeId),
    /// The node id appears more than once in a topology description.
    DuplicateNode(NodeId),
    /// The node has crashed and cannot serve requests until restarted.
    NodeCrashed(NodeId),
    /// A transaction whose coordinator crashed between prepare and
    /// commit; its outcome is unknown until in-doubt resolution runs.
    TxInDoubt(TxId),
    /// A quorum could not be assembled (adaptive voting protocol).
    NoQuorum {
        /// The object for which the quorum was requested.
        object: ObjectId,
        /// Votes available in the current partition.
        available: u32,
        /// Votes required.
        required: u32,
    },
    /// A field or environment value a constraint reads is missing or
    /// has the wrong type. Surfacing this instead of validating
    /// against a default prevents misconfigured constraints from
    /// passing spuriously.
    IllTypedField {
        /// The field or env key that was read.
        name: String,
        /// What the constraint expected to find (e.g. `"int"`).
        expected: String,
    },
    /// Invalid configuration (constraint descriptor, cluster setup, …).
    Config(String),
    /// A constraint-expression parse or evaluation error.
    Expr(String),
    /// The invoked operation is not permitted in the current system
    /// mode (e.g. writes blocked in a non-primary partition).
    ModeRestriction(String),
    /// A write originated in a minority partition while a quorum-based
    /// primary-partition policy refuses minority writes.
    NotPrimary {
        /// The node that attempted the write.
        node: NodeId,
        /// Number of nodes in the node's partition.
        partition_size: u32,
    },
    /// Serialization/persistence failure.
    Persistence(String),
    /// The request plane refused admission: the node's token bucket
    /// is empty or its queue for the request's priority class is full
    /// and nothing lower-priority could be displaced.
    Overloaded {
        /// The node whose plane refused the request.
        node: NodeId,
        /// Queue depth across all classes at refusal time.
        depth: u32,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ObjectUnreachable(id) => write!(f, "object {id} is unreachable"),
            Error::ObjectNotFound(id) => write!(f, "object {id} not found"),
            Error::ObjectExists(id) => write!(f, "object {id} already exists"),
            Error::MethodNotDeployed(sig) => write!(f, "method {sig} is not deployed"),
            Error::ClassNotDeployed(c) => write!(f, "class {c} is not deployed"),
            Error::ConstraintViolated { constraint } => {
                write!(f, "constraint {constraint} violated")
            }
            Error::ThreatRejected { constraint, degree } => {
                write!(f, "consistency threat on {constraint} ({degree}) rejected")
            }
            Error::ConstraintUncheckable { constraint } => {
                write!(f, "constraint {constraint} uncheckable")
            }
            Error::NoSuchTransaction(tx) => write!(f, "no such transaction {tx}"),
            Error::RollbackOnly(tx) => write!(f, "transaction {tx} is rollback-only"),
            Error::PrepareFailed { tx, resource } => {
                write!(f, "resource {resource} failed to prepare transaction {tx}")
            }
            Error::LockConflict { object, holder } => {
                write!(f, "lock on {object} held by {holder}")
            }
            Error::NodeUnreachable(n) => write!(f, "node {n} unreachable"),
            Error::UnknownNode(n) => write!(f, "node {n} does not exist in the cluster"),
            Error::DuplicateNode(n) => {
                write!(f, "node {n} appears more than once in the topology")
            }
            Error::NodeCrashed(n) => write!(f, "node {n} has crashed"),
            Error::TxInDoubt(tx) => {
                write!(f, "transaction {tx} is in doubt (coordinator crashed)")
            }
            Error::NoQuorum {
                object,
                available,
                required,
            } => write!(
                f,
                "no quorum for {object}: {available} of {required} votes available"
            ),
            Error::IllTypedField { name, expected } => {
                write!(f, "field or env value {name} is missing or not {expected}")
            }
            Error::Config(msg) => write!(f, "configuration error: {msg}"),
            Error::Expr(msg) => write!(f, "constraint expression error: {msg}"),
            Error::ModeRestriction(msg) => write!(f, "operation not allowed: {msg}"),
            Error::NotPrimary {
                node,
                partition_size,
            } => write!(
                f,
                "node {node} is in a minority partition of {partition_size} node(s); writes refused"
            ),
            Error::Persistence(msg) => write!(f, "persistence error: {msg}"),
            Error::Overloaded { node, depth } => write!(
                f,
                "node {node} is overloaded ({depth} request(s) queued); admission refused"
            ),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn error_is_send_sync() {
        assert_send_sync::<Error>();
    }

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            Error::ObjectUnreachable(ObjectId::new("A", "1")),
            Error::ConstraintViolated {
                constraint: ConstraintName::from("TicketConstraint"),
            },
            Error::ThreatRejected {
                constraint: ConstraintName::from("TicketConstraint"),
                degree: SatisfactionDegree::PossiblyViolated,
            },
            Error::NoQuorum {
                object: ObjectId::new("A", "1"),
                available: 1,
                required: 2,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(!msg.ends_with('.'));
        }
    }
}
