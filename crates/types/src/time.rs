//! Virtual time for the deterministic simulation.
//!
//! All throughput figures of Chapter 5 are computed against *simulated*
//! time advanced by the cost model (see DESIGN.md §1) rather than
//! wall-clock time, making every run reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A duration of virtual time, with nanosecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time (nanoseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Elapsed virtual time since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier <= self,
            "`earlier` ({earlier}) is after self ({self})"
        );
        SimDuration(self.0 - earlier.0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let d = SimDuration::from_millis(2) + SimDuration::from_millis(3);
        assert_eq!(d, SimDuration::from_millis(5));
        assert_eq!(d * 2, SimDuration::from_millis(10));
        assert_eq!(d / 5, SimDuration::from_millis(1));
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_millis(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn time_advance_and_since() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(4);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(4));
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=3).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5.000µs");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5.000ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }
}
