//! Request-plane vocabulary: the priority classes of the admission
//! and shedding pipeline in front of the cluster.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Priority class of a client request entering the request plane.
///
/// The plane schedules strictly by class (all queued `Critical` work
/// runs before any `Normal` work, which runs before any `Background`
/// work) and sheds in the opposite order when queues fill or the
/// system degrades: `Background` first, `Critical` last.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(rename_all = "snake_case")]
pub enum PriorityClass {
    /// Latency-sensitive foreground work (e.g. interactive writes).
    /// Shed only as a last resort.
    Critical,
    /// Ordinary request traffic. The default class.
    #[default]
    Normal,
    /// Deferrable housekeeping (prefetch, analytics, repair scans).
    /// First to be shed under pressure and paused outside healthy
    /// mode when the plane is configured to do so.
    Background,
}

impl PriorityClass {
    /// All classes, highest priority first. The scheduler drains
    /// queues in this order.
    pub const ALL: [PriorityClass; 3] = [
        PriorityClass::Critical,
        PriorityClass::Normal,
        PriorityClass::Background,
    ];

    /// Scheduling rank: 0 is served first, 2 last.
    pub fn rank(self) -> usize {
        match self {
            PriorityClass::Critical => 0,
            PriorityClass::Normal => 1,
            PriorityClass::Background => 2,
        }
    }

    /// Short, stable label used in telemetry metric keys
    /// (`plane.<label>.*`) and tables.
    pub fn label(self) -> &'static str {
        match self {
            PriorityClass::Critical => "critical",
            PriorityClass::Normal => "normal",
            PriorityClass::Background => "background",
        }
    }
}

impl fmt::Display for PriorityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_orders_all() {
        let ranks: Vec<usize> = PriorityClass::ALL.iter().map(|c| c.rank()).collect();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn ord_matches_rank() {
        assert!(PriorityClass::Critical < PriorityClass::Normal);
        assert!(PriorityClass::Normal < PriorityClass::Background);
    }

    #[test]
    fn default_is_normal() {
        assert_eq!(PriorityClass::default(), PriorityClass::Normal);
    }
}
