//! # dedisys-types
//!
//! Shared vocabulary types for the DeDiSys-RS workspace: identifiers,
//! dynamic [`Value`]s, entity versions, the constraint
//! [`SatisfactionDegree`] lattice of §3.1 of the dissertation, system
//! modes, simulated time, and the workspace error type.
//!
//! Everything here is deliberately dependency-light; higher layers
//! (`dedisys-object`, `dedisys-constraints`, `dedisys-core`, …) build on
//! these definitions.
//!
//! ## Example
//!
//! ```
//! use dedisys_types::{ObjectId, SatisfactionDegree, Value};
//!
//! let flight = ObjectId::new("Flight", "LH-441");
//! assert_eq!(flight.class().as_str(), "Flight");
//!
//! // Combining validation results of a constraint set (§3.1) is the
//! // meet of the satisfaction-degree lattice:
//! let combined = SatisfactionDegree::combine([
//!     SatisfactionDegree::Satisfied,
//!     SatisfactionDegree::PossiblySatisfied,
//! ]);
//! assert_eq!(combined, SatisfactionDegree::PossiblySatisfied);
//! assert!(combined.is_threat());
//!
//! let seats = Value::Int(80);
//! assert!(seats.as_int().unwrap() > 0);
//! ```

mod check;
mod degree;
mod error;
mod id;
mod mode;
mod plane;
mod time;
mod value;
mod version;

pub use check::CheckCategory;
pub use degree::SatisfactionDegree;
pub use error::{Error, Result};
pub use id::{
    ClassName, ConstraintName, MethodName, MethodSignature, NodeId, ObjectId, TxId, ViewId,
};
pub use mode::SystemMode;
pub use plane::PriorityClass;
pub use time::{SimDuration, SimTime};
pub use value::Value;
pub use version::{Version, VersionInfo};
