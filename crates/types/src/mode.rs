//! The three major system states of Figure 1.4.

use serde::{Deserialize, Serialize};
use std::fmt;

/// System mode as locally perceived by each individual node (§1.4).
///
/// * **Healthy** — no failures or inconsistencies present.
/// * **Degraded** — node/link failures present; inconsistencies are
///   potentially introduced (bounded by constraint-threat negotiation).
/// * **Reconciliation** — failures repaired; missed updates are
///   propagated and accepted consistency threats re-evaluated.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default, PartialOrd, Ord,
)]
pub enum SystemMode {
    /// No failures or inconsistencies present.
    #[default]
    Healthy,
    /// Node/link failures present; consistency threats may be traded.
    Degraded,
    /// Failures repaired; inconsistencies being cleaned up.
    Reconciliation,
}

impl SystemMode {
    /// Whether constraint validation may be unreliable in this mode
    /// (stale or unreachable objects possible).
    pub fn validation_may_be_unreliable(self) -> bool {
        !matches!(self, SystemMode::Healthy)
    }
}

impl fmt::Display for SystemMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemMode::Healthy => "healthy",
            SystemMode::Degraded => "degraded",
            SystemMode::Reconciliation => "reconciliation",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_per_mode() {
        assert!(!SystemMode::Healthy.validation_may_be_unreliable());
        assert!(SystemMode::Degraded.validation_may_be_unreliable());
        assert!(SystemMode::Reconciliation.validation_may_be_unreliable());
    }

    #[test]
    fn default_is_healthy() {
        assert_eq!(SystemMode::default(), SystemMode::Healthy);
    }
}
