//! Dynamic values held in entity fields and passed as method arguments.

use crate::ObjectId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed value.
///
/// Application entities (`dedisys-object`) store their attributes as
/// `Value`s, and invocation arguments/results are `Value`s — mirroring
/// how the original system moves attribute data through generic
/// invocation objects.
///
/// ```
/// use dedisys_types::Value;
/// let v = Value::from(42);
/// assert_eq!(v.as_int(), Some(42));
/// assert_eq!(v.type_name(), "int");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Reference to another application object.
    Ref(ObjectId),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// Human-readable name of the value's type.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Ref(_) => "ref",
            Value::List(_) => "list",
        }
    }

    /// Whether this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the boolean if this is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer if this is a [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns a float if this is numeric ([`Value::Int`] widens).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the string slice if this is a [`Value::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the referenced object id if this is a [`Value::Ref`].
    pub fn as_ref_id(&self) -> Option<&ObjectId> {
        match self {
            Value::Ref(id) => Some(id),
            _ => None,
        }
    }

    /// Returns the element slice if this is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Truthiness used by the constraint expression language:
    /// `Null`/`false`/`0`/`0.0`/`""`/`[]` are falsy, everything else truthy.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Ref(_) => true,
            Value::List(items) => !items.is_empty(),
        }
    }

    /// Numeric/lexicographic comparison used by the constraint expression
    /// language. Returns `None` for incomparable types.
    pub fn compare(&self, other: &Value) -> Option<std::cmp::Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_float(), other.as_float()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Ref(id) => write!(f, "@{id}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<ObjectId> for Value {
    fn from(id: ObjectId) -> Self {
        Value::Ref(id)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(items: Vec<T>) -> Self {
        Value::List(items.into_iter().map(Into::into).collect())
    }
}

impl FromIterator<Value> for Value {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Value::List(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(7).as_int(), Some(7));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Int(3).as_float(), Some(3.0));
        let id = ObjectId::new("Flight", "F1");
        assert_eq!(Value::from(id.clone()).as_ref_id(), Some(&id));
        assert_eq!(Value::from(vec![1, 2]).as_list().unwrap().len(), 2);
    }

    #[test]
    fn wrong_type_accessors_return_none() {
        assert_eq!(Value::from("x").as_int(), None);
        assert_eq!(Value::Null.as_bool(), None);
        assert_eq!(Value::from(1).as_str(), None);
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.truthy());
        assert!(!Value::Int(0).truthy());
        assert!(!Value::Str(String::new()).truthy());
        assert!(!Value::List(vec![]).truthy());
        assert!(Value::Int(-1).truthy());
        assert!(Value::from("a").truthy());
    }

    #[test]
    fn compare_numeric_and_strings() {
        assert_eq!(Value::Int(1).compare(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(
            Value::Int(1).compare(&Value::Float(0.5)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            Value::from("a").compare(&Value::from("b")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("a").compare(&Value::Int(1)), None);
    }

    #[test]
    fn display_is_never_empty() {
        for v in [
            Value::Null,
            Value::Bool(false),
            Value::Int(0),
            Value::Float(0.0),
            Value::Str(String::new()),
            Value::List(vec![]),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn compare_is_antisymmetric_for_numerics() {
        use std::cmp::Ordering;
        let cases = [
            (Value::Int(1), Value::Float(2.0)),
            (Value::Float(1.5), Value::Int(1)),
            (Value::Int(-3), Value::Int(7)),
        ];
        for (a, b) in cases {
            let ab = a.compare(&b).unwrap();
            let ba = b.compare(&a).unwrap();
            assert_eq!(ab, ba.reverse());
            assert_eq!(a.compare(&a), Some(Ordering::Equal));
        }
    }

    #[test]
    fn list_and_ref_conversions() {
        let id = ObjectId::new("A", "1");
        let v: Value = vec![Value::Ref(id.clone()), Value::Null]
            .into_iter()
            .collect();
        assert_eq!(v.as_list().unwrap().len(), 2);
        assert_eq!(v.as_list().unwrap()[0].as_ref_id(), Some(&id));
    }

    #[test]
    fn serde_roundtrip() {
        let v = Value::List(vec![
            Value::Int(1),
            Value::Str("x".into()),
            Value::Ref(ObjectId::new("A", "1")),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
