//! The satisfaction-degree lattice of §3.1/§4.2.2.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of validating an integrity constraint, enriched with the
/// degraded-mode degrees of §3.1.
///
/// The dissertation orders the degrees (§4.2.2):
///
/// > `violated < uncheckable < possibly violated < possibly satisfied <
/// > satisfied`
///
/// and specifies (§3.1) how the results of a *set* of constraints
/// combine. That combination is exactly the minimum (meet) under the
/// ordering above, which [`SatisfactionDegree::combine`] computes.
///
/// ```
/// use dedisys_types::SatisfactionDegree as D;
/// assert!(D::Violated < D::Uncheckable);
/// assert!(D::Uncheckable < D::PossiblyViolated);
/// assert!(D::PossiblyViolated < D::PossiblySatisfied);
/// assert!(D::PossiblySatisfied < D::Satisfied);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum SatisfactionDegree {
    /// The constraint is certainly violated.
    Violated,
    /// No constraint check was possible (NCC): at least one affected
    /// object is unreachable with no replica accessible.
    Uncheckable,
    /// A limited check (LCC) evaluated to *violated*, but some affected
    /// objects were possibly stale, so the result is unreliable.
    PossiblyViolated,
    /// A limited check (LCC) evaluated to *satisfied*, but some affected
    /// objects were possibly stale, so the result is unreliable.
    PossiblySatisfied,
    /// The constraint is certainly satisfied (full check, FCC).
    #[default]
    Satisfied,
}

impl SatisfactionDegree {
    /// All degrees in ascending order.
    pub const ALL: [SatisfactionDegree; 5] = [
        SatisfactionDegree::Violated,
        SatisfactionDegree::Uncheckable,
        SatisfactionDegree::PossiblyViolated,
        SatisfactionDegree::PossiblySatisfied,
        SatisfactionDegree::Satisfied,
    ];

    /// Whether this degree denotes a *consistency threat* (§3.1): the
    /// constraint could not be validated reliably.
    ///
    /// ```
    /// use dedisys_types::SatisfactionDegree as D;
    /// assert!(D::PossiblySatisfied.is_threat());
    /// assert!(D::PossiblyViolated.is_threat());
    /// assert!(D::Uncheckable.is_threat());
    /// assert!(!D::Satisfied.is_threat());
    /// assert!(!D::Violated.is_threat());
    /// ```
    pub fn is_threat(self) -> bool {
        matches!(
            self,
            SatisfactionDegree::PossiblySatisfied
                | SatisfactionDegree::PossiblyViolated
                | SatisfactionDegree::Uncheckable
        )
    }

    /// Whether the constraint is definitely decided (satisfied or
    /// violated) — i.e. the validation was reliable.
    pub fn is_definite(self) -> bool {
        matches!(
            self,
            SatisfactionDegree::Satisfied | SatisfactionDegree::Violated
        )
    }

    /// Combines the validation results of a set of constraints into the
    /// overall outcome per §3.1.
    ///
    /// Returns [`SatisfactionDegree::Satisfied`] for an empty set (a set
    /// with no constraints poses no threat).
    ///
    /// ```
    /// use dedisys_types::SatisfactionDegree as D;
    /// assert_eq!(D::combine([D::Satisfied, D::PossiblyViolated]), D::PossiblyViolated);
    /// assert_eq!(D::combine([D::Uncheckable, D::PossiblySatisfied]), D::Uncheckable);
    /// assert_eq!(D::combine([D::Violated, D::Uncheckable]), D::Violated);
    /// assert_eq!(D::combine(std::iter::empty()), D::Satisfied);
    /// ```
    pub fn combine(degrees: impl IntoIterator<Item = SatisfactionDegree>) -> SatisfactionDegree {
        degrees
            .into_iter()
            .min()
            .unwrap_or(SatisfactionDegree::Satisfied)
    }

    /// Degrades a *definite* validation result because possibly stale
    /// objects were involved (§4.2.3): `Satisfied → PossiblySatisfied`,
    /// `Violated → PossiblyViolated`. Threat degrees are unchanged.
    pub fn degrade_for_staleness(self) -> SatisfactionDegree {
        match self {
            SatisfactionDegree::Satisfied => SatisfactionDegree::PossiblySatisfied,
            SatisfactionDegree::Violated => SatisfactionDegree::PossiblyViolated,
            other => other,
        }
    }

    /// Parses the configuration-file spelling of a degree
    /// (case-insensitive; e.g. `"UNCHECKABLE"` in Listing 4.1).
    pub fn parse_config(s: &str) -> Option<SatisfactionDegree> {
        match s.to_ascii_uppercase().as_str() {
            "VIOLATED" => Some(SatisfactionDegree::Violated),
            "UNCHECKABLE" => Some(SatisfactionDegree::Uncheckable),
            "POSSIBLY_VIOLATED" | "POSSIBLYVIOLATED" => Some(SatisfactionDegree::PossiblyViolated),
            "POSSIBLY_SATISFIED" | "POSSIBLYSATISFIED" => {
                Some(SatisfactionDegree::PossiblySatisfied)
            }
            "SATISFIED" => Some(SatisfactionDegree::Satisfied),
            _ => None,
        }
    }
}

impl fmt::Display for SatisfactionDegree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SatisfactionDegree::Violated => "violated",
            SatisfactionDegree::Uncheckable => "uncheckable",
            SatisfactionDegree::PossiblyViolated => "possibly violated",
            SatisfactionDegree::PossiblySatisfied => "possibly satisfied",
            SatisfactionDegree::Satisfied => "satisfied",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::SatisfactionDegree as D;

    #[test]
    fn ordering_matches_dissertation() {
        assert!(D::Violated < D::Uncheckable);
        assert!(D::Uncheckable < D::PossiblyViolated);
        assert!(D::PossiblyViolated < D::PossiblySatisfied);
        assert!(D::PossiblySatisfied < D::Satisfied);
    }

    #[test]
    fn combine_all_satisfied() {
        assert_eq!(D::combine([D::Satisfied, D::Satisfied]), D::Satisfied);
    }

    #[test]
    fn combine_possibly_satisfied_rule() {
        // "if all constraints are either satisfied or possibly satisfied
        // and at least one constraint is possibly satisfied"
        assert_eq!(
            D::combine([D::Satisfied, D::PossiblySatisfied]),
            D::PossiblySatisfied
        );
    }

    #[test]
    fn combine_possibly_violated_rule() {
        assert_eq!(
            D::combine([D::Satisfied, D::PossiblySatisfied, D::PossiblyViolated]),
            D::PossiblyViolated
        );
    }

    #[test]
    fn combine_uncheckable_dominates_possibles_but_not_violated() {
        assert_eq!(
            D::combine([D::PossiblySatisfied, D::Uncheckable]),
            D::Uncheckable
        );
        assert_eq!(D::combine([D::Uncheckable, D::Violated]), D::Violated);
    }

    #[test]
    fn combine_empty_is_satisfied() {
        assert_eq!(D::combine(std::iter::empty()), D::Satisfied);
    }

    #[test]
    fn degrade_for_staleness() {
        assert_eq!(D::Satisfied.degrade_for_staleness(), D::PossiblySatisfied);
        assert_eq!(D::Violated.degrade_for_staleness(), D::PossiblyViolated);
        assert_eq!(D::Uncheckable.degrade_for_staleness(), D::Uncheckable);
    }

    #[test]
    fn threat_classification() {
        let threats: Vec<_> = D::ALL.iter().filter(|d| d.is_threat()).collect();
        assert_eq!(
            threats,
            [&D::Uncheckable, &D::PossiblyViolated, &D::PossiblySatisfied]
        );
    }

    #[test]
    fn parse_config_spellings() {
        assert_eq!(D::parse_config("UNCHECKABLE"), Some(D::Uncheckable));
        assert_eq!(
            D::parse_config("possibly_satisfied"),
            Some(D::PossiblySatisfied)
        );
        assert_eq!(D::parse_config("nonsense"), None);
    }
}
