//! Node weights for partition-sensitive constraints (§5.5.2).
//!
//! Similar to Gifford's weighted voting, every server node carries a
//! weight; the GMS exposes the weight of the current partition relative
//! to the whole system so applications can partition data (e.g. the
//! remaining tickets of a flight) proportionally during degraded mode.

use dedisys_types::NodeId;
use std::collections::BTreeSet;

/// Per-node weights.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeWeights {
    weights: Vec<u32>,
}

impl NodeWeights {
    /// Every node carries weight 1.
    pub fn uniform(node_count: u32) -> Self {
        Self {
            weights: vec![1; node_count as usize],
        }
    }

    /// Explicit weights; index = node id.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or the total weight is zero.
    pub fn explicit(weights: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "need at least one node weight");
        assert!(
            weights.iter().any(|&w| w > 0),
            "total system weight must be positive"
        );
        Self { weights }
    }

    /// Number of nodes covered.
    pub fn node_count(&self) -> u32 {
        self.weights.len() as u32
    }

    /// Weight of a single node (zero for unknown nodes).
    pub fn weight_of(&self, node: NodeId) -> u32 {
        self.weights.get(node.index()).copied().unwrap_or(0)
    }

    /// Total system weight.
    pub fn total(&self) -> u32 {
        self.weights.iter().sum()
    }

    /// Combined weight of a partition (set of nodes).
    pub fn partition_weight<'a>(&self, members: impl IntoIterator<Item = &'a NodeId>) -> u32 {
        members.into_iter().map(|&n| self.weight_of(n)).sum()
    }

    /// Fraction of the total system weight held by `members` — the
    /// value provided to partition-sensitive constraints.
    pub fn partition_fraction(&self, members: &BTreeSet<NodeId>) -> f64 {
        f64::from(self.partition_weight(members)) / f64::from(self.total())
    }

    /// Splits an integer quantity `amount` proportionally across the
    /// given partitions (by weight), assigning remainders to the
    /// heaviest partitions first so that the shares always sum to
    /// `amount` (the ticket-partitioning scheme: `t = Σ tx`).
    pub fn apportion(&self, amount: u64, partitions: &[BTreeSet<NodeId>]) -> Vec<u64> {
        let total = u64::from(self.total());
        let weights: Vec<u64> = partitions
            .iter()
            .map(|p| u64::from(self.partition_weight(p)))
            .collect();
        let mut shares: Vec<u64> = weights.iter().map(|w| amount * w / total).collect();
        let mut remainder = amount - shares.iter().sum::<u64>();
        // Distribute the remainder by descending weight (stable order).
        let mut order: Vec<usize> = (0..partitions.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
        let mut i = 0;
        while remainder > 0 && !order.is_empty() {
            shares[order[i % order.len()]] += 1;
            remainder -= 1;
            i += 1;
        }
        shares
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn uniform_weights() {
        let w = NodeWeights::uniform(4);
        assert_eq!(w.total(), 4);
        assert_eq!(w.partition_weight(&set(&[0, 2])), 2);
        assert!((w.partition_fraction(&set(&[0, 2])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn explicit_weights() {
        let w = NodeWeights::explicit(vec![3, 1, 1]);
        assert_eq!(w.total(), 5);
        assert_eq!(w.weight_of(NodeId(0)), 3);
        assert_eq!(w.weight_of(NodeId(9)), 0);
    }

    #[test]
    fn apportion_sums_to_amount() {
        let w = NodeWeights::uniform(3);
        let partitions = [set(&[0]), set(&[1, 2])];
        let shares = w.apportion(10, &partitions);
        assert_eq!(shares.iter().sum::<u64>(), 10);
        // 10 * 1/3 = 3, 10 * 2/3 = 6, remainder 1 to heaviest
        assert_eq!(shares, vec![3, 7]);
    }

    #[test]
    fn apportion_with_explicit_weights() {
        let w = NodeWeights::explicit(vec![1, 1, 2]);
        let partitions = [set(&[0, 1]), set(&[2])];
        let shares = w.apportion(8, &partitions);
        assert_eq!(shares, vec![4, 4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_total_weight_rejected() {
        NodeWeights::explicit(vec![0, 0]);
    }
}
