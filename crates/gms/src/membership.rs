//! The adaptive membership pipeline: per-link heartbeat observation →
//! suspicion (fixed or φ-accrual) → flap damping / hysteresis →
//! stabilized partitionings.
//!
//! [`MembershipSim`] owns the *physical* connectivity (what links are
//! actually up, how lossy and how jittery they are) separately from
//! whatever topology the cluster has *installed*. Scripted failure
//! injection ([`MembershipSim::force_partitions`]) remains
//! authoritative and bypasses detection; fault injection on links
//! ([`MembershipSim::drop_links`], [`MembershipSim::set_link_fault`])
//! only changes the physical layer and lets suspicion do the work —
//! the path every real deployment takes into degraded mode.
//!
//! Everything runs on the shared virtual clock with a seeded
//! SplitMix64 stream for loss/jitter draws, so same-seed runs are
//! bit-identical.

use crate::adaptive::{AdaptiveConfig, AdaptiveDetector, DetectorKind};
use crate::detector::DetectorConfig;
use crate::stabilizer::{StabilizerConfig, ViewStabilizer};
use dedisys_net::{SimClock, Topology};
use dedisys_types::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// SplitMix64 — tiny deterministic stream for loss and jitter draws.
/// (Local copy: `dedisys-gms` sits below the chaos crate in the
/// dependency order and must not depend on it.)
#[derive(Debug, Clone)]
struct Mix64 {
    state: u64,
}

impl Mix64 {
    fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Per-directed-link physical fault state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkFault {
    /// The link delivers nothing while down.
    pub down: bool,
    /// Deterministic heartbeat loss rate (0–1000).
    pub loss_per_mille: u16,
    /// Uniform extra delivery delay in `0..=jitter_micros`.
    pub jitter_micros: u64,
}

/// Full configuration of the membership pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MembershipConfig {
    /// Which suspicion algorithm runs per link.
    pub kind: DetectorKind,
    /// Heartbeat cadence and the fixed (or fallback) timeout.
    pub detector: DetectorConfig,
    /// φ-accrual tuning (used when `kind == Adaptive`, and as the
    /// cold-window fallback policy).
    pub adaptive: AdaptiveConfig,
    /// Hysteresis and flap damping between suspicion and views.
    pub stabilizer: StabilizerConfig,
    /// Seed of the loss/jitter draw stream.
    pub seed: u64,
    /// Base one-way heartbeat latency in microseconds.
    pub base_latency_micros: u64,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            kind: DetectorKind::FixedTimeout,
            detector: DetectorConfig::default(),
            adaptive: AdaptiveConfig::default(),
            stabilizer: StabilizerConfig::default(),
            seed: 0,
            base_latency_micros: 500,
        }
    }
}

/// Something the pipeline observed during [`MembershipSim::advance_to`],
/// in deterministic emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MembershipEvent {
    /// `observer` started suspecting `suspect` (raw, pre-damping).
    SuspicionRaised {
        /// The suspecting node.
        observer: NodeId,
        /// The node falling silent.
        suspect: NodeId,
    },
    /// `observer` heard from `peer` again and cleared the suspicion.
    SuspicionCleared {
        /// The formerly suspecting node.
        observer: NodeId,
        /// The peer that came back.
        peer: NodeId,
    },
    /// A suspicion flip was absorbed because `node` is (now) damped.
    FlapDamped {
        /// The flapping node.
        node: NodeId,
        /// Its decayed penalty after this flip, in milli-units.
        penalty_milli: u64,
    },
    /// A new partitioning survived the settle window.
    ViewStabilized {
        /// The stabilized partitioning (disjoint cover of all nodes).
        partitions: Vec<BTreeSet<NodeId>>,
    },
}

/// The failure-detection and view-stabilization pipeline over every
/// node, sharing the cluster's virtual clock.
#[derive(Debug)]
pub struct MembershipSim {
    config: MembershipConfig,
    clock: SimClock,
    node_count: u32,
    physical: Topology,
    faults: HashMap<(NodeId, NodeId), LinkFault>,
    default_jitter_micros: u64,
    rng: Mix64,
    /// Keyed `(observer, peer)` — the observer's accrual window for
    /// that peer (also carries last-heard for the fixed detector).
    detectors: HashMap<(NodeId, NodeId), AdaptiveDetector>,
    suspected: HashMap<NodeId, BTreeSet<NodeId>>,
    crashed: BTreeSet<NodeId>,
    stabilizer: ViewStabilizer,
    next_tick: SimTime,
    ticks: u64,
}

impl MembershipSim {
    /// Creates the pipeline over `node_count` nodes sharing `clock`.
    pub fn new(node_count: u32, config: MembershipConfig, clock: SimClock) -> Self {
        let now = clock.now();
        let mut detectors = HashMap::new();
        for a in 0..node_count {
            for b in 0..node_count {
                if a != b {
                    let mut d = AdaptiveDetector::new();
                    d.mark_heard(now);
                    detectors.insert((NodeId(a), NodeId(b)), d);
                }
            }
        }
        let all: BTreeSet<NodeId> = (0..node_count).map(NodeId).collect();
        let mut stabilizer = ViewStabilizer::new(config.stabilizer);
        stabilizer.force_stable(vec![all]);
        let next_tick = now + config.detector.heartbeat_interval;
        Self {
            config,
            clock,
            node_count,
            physical: Topology::fully_connected(node_count),
            faults: HashMap::new(),
            default_jitter_micros: 0,
            rng: Mix64::new(config.seed),
            detectors,
            suspected: (0..node_count)
                .map(|n| (NodeId(n), BTreeSet::new()))
                .collect(),
            crashed: BTreeSet::new(),
            stabilizer,
            next_tick,
            ticks: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &MembershipConfig {
        &self.config
    }

    /// Heartbeat ticks processed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The physical connectivity (what links are actually up).
    pub fn physical(&self) -> &Topology {
        &self.physical
    }

    /// The view stabilizer (penalties, suppression, stable view).
    pub fn stabilizer(&self) -> &ViewStabilizer {
        &self.stabilizer
    }

    /// Raw suspicion set of `observer` (pre-damping).
    pub fn suspected_by(&self, observer: NodeId) -> &BTreeSet<NodeId> {
        self.suspected
            .get(&observer)
            .expect("observer is part of the simulation")
    }

    /// Total number of standing raw suspicions held by live nodes
    /// against live nodes — zero on a healed, quiescent system.
    pub fn standing_suspicions(&self) -> usize {
        self.suspected
            .iter()
            .filter(|(observer, _)| !self.crashed.contains(observer))
            .map(|(_, suspects)| {
                suspects
                    .iter()
                    .filter(|s| !self.crashed.contains(s))
                    .count()
            })
            .sum()
    }

    /// The last stabilized partitioning.
    pub fn stable_partitions(&self) -> Vec<BTreeSet<NodeId>> {
        self.stabilizer
            .stable()
            .map(|p| p.to_vec())
            .unwrap_or_else(|| vec![(0..self.node_count).map(NodeId).collect()])
    }

    /// Severs the physical links between the given groups (nodes not
    /// mentioned become singletons), leaving detection to notice.
    pub fn drop_links(&mut self, groups: &[&[u32]]) {
        self.physical.split(groups);
    }

    /// Physically restores every link (suspicion clears as heartbeats
    /// come back).
    pub fn heal_links(&mut self) {
        self.physical.heal();
    }

    /// Sets the fault state of the directed link `from → to`.
    pub fn set_link_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) {
        if fault == LinkFault::default() {
            self.faults.remove(&(from, to));
        } else {
            self.faults.insert((from, to), fault);
        }
    }

    /// Applies `jitter_micros` of delivery jitter to every link that
    /// has no explicit per-link fault entry.
    pub fn set_default_jitter(&mut self, jitter_micros: u64) {
        self.default_jitter_micros = jitter_micros;
    }

    /// Clears every per-link fault and the default jitter.
    pub fn clear_link_faults(&mut self) {
        self.faults.clear();
        self.default_jitter_micros = 0;
    }

    /// Marks `node` crashed (it stops emitting and observing) or
    /// restarted.
    pub fn set_crashed(&mut self, node: NodeId, crashed: bool) {
        if crashed {
            self.crashed.insert(node);
        } else {
            self.crashed.remove(&node);
        }
    }

    /// Installs a scripted partitioning authoritatively: physical
    /// connectivity, raw suspicion and the stabilized view all jump to
    /// `partitions` immediately (the GMS has spoken; detection resumes
    /// from this state).
    pub fn force_partitions(&mut self, partitions: &[BTreeSet<NodeId>]) {
        let now = self.clock.now();
        let groups: Vec<Vec<u32>> = partitions
            .iter()
            .map(|p| p.iter().map(|n| n.0).collect())
            .collect();
        let refs: Vec<&[u32]> = groups.iter().map(|g| g.as_slice()).collect();
        self.physical.split(&refs);
        for a in 0..self.node_count {
            let a = NodeId(a);
            let mut suspects = BTreeSet::new();
            for b in 0..self.node_count {
                let b = NodeId(b);
                if a == b {
                    continue;
                }
                if self.physical.reachable(a, b) {
                    self.detectors
                        .get_mut(&(a, b))
                        .expect("pair present")
                        .mark_heard(now);
                } else {
                    suspects.insert(b);
                }
            }
            self.suspected.insert(a, suspects);
        }
        self.stabilizer.force_stable(partitions.to_vec());
    }

    /// Runs every heartbeat tick due up to `self.clock.now()` and
    /// returns the observations in deterministic order.
    pub fn poll(&mut self) -> Vec<MembershipEvent> {
        self.advance_to(self.clock.now())
    }

    /// Runs every heartbeat tick due up to `until` (the clock itself is
    /// owned by the cluster and not advanced here).
    pub fn advance_to(&mut self, until: SimTime) -> Vec<MembershipEvent> {
        let mut events = Vec::new();
        while self.next_tick <= until {
            let t = self.next_tick;
            self.tick(t, &mut events);
            self.next_tick = t + self.config.detector.heartbeat_interval;
            self.ticks += 1;
        }
        events
    }

    fn link_fault(&self, from: NodeId, to: NodeId) -> LinkFault {
        self.faults.get(&(from, to)).copied().unwrap_or(LinkFault {
            down: false,
            loss_per_mille: 0,
            jitter_micros: self.default_jitter_micros,
        })
    }

    fn tick(&mut self, t: SimTime, events: &mut Vec<MembershipEvent>) {
        let base = SimDuration::from_micros(self.config.base_latency_micros);
        // 1. Heartbeat exchange: every live sender to every live peer,
        //    in fixed (sender, receiver) order so the draw stream is
        //    deterministic.
        for a in 0..self.node_count {
            let from = NodeId(a);
            if self.crashed.contains(&from) {
                continue;
            }
            for b in 0..self.node_count {
                let to = NodeId(b);
                if from == to || self.crashed.contains(&to) {
                    continue;
                }
                if !self.physical.reachable(from, to) {
                    continue;
                }
                let fault = self.link_fault(from, to);
                if fault.down {
                    continue;
                }
                if fault.loss_per_mille > 0
                    && self.rng.below(1000) < u64::from(fault.loss_per_mille)
                {
                    continue;
                }
                let jitter = SimDuration::from_micros(self.rng.below(fault.jitter_micros + 1));
                let arrival = t + base + jitter;
                self.detectors
                    .get_mut(&(to, from))
                    .expect("pair present")
                    .record_arrival(arrival, self.config.adaptive.window);
            }
        }
        // 2. Suspicion evaluation per live observer.
        for a in 0..self.node_count {
            let observer = NodeId(a);
            if self.crashed.contains(&observer) {
                continue;
            }
            for b in 0..self.node_count {
                let peer = NodeId(b);
                if observer == peer {
                    continue;
                }
                let detector = &self.detectors[&(observer, peer)];
                let suspect = match self.config.kind {
                    DetectorKind::FixedTimeout => detector
                        .last_arrival()
                        .map(|heard| {
                            heard < t && t.since(heard) >= self.config.detector.suspect_timeout
                        })
                        .unwrap_or(false),
                    DetectorKind::Adaptive => detector.is_suspect(
                        t,
                        &self.config.adaptive,
                        self.config.detector.suspect_timeout,
                    ),
                };
                let was = self.suspected[&observer].contains(&peer);
                if suspect == was {
                    continue;
                }
                if suspect {
                    self.suspected
                        .get_mut(&observer)
                        .expect("present")
                        .insert(peer);
                    events.push(MembershipEvent::SuspicionRaised {
                        observer,
                        suspect: peer,
                    });
                } else {
                    self.suspected
                        .get_mut(&observer)
                        .expect("present")
                        .remove(&peer);
                    events.push(MembershipEvent::SuspicionCleared { observer, peer });
                }
                // Charge the flip to the node whose reachability flapped.
                let was_suppressed = self.stabilizer.suppressed().contains(&peer);
                let crossed = self.stabilizer.record_flap(peer, t);
                if crossed || was_suppressed {
                    events.push(MembershipEvent::FlapDamped {
                        node: peer,
                        penalty_milli: self.stabilizer.penalty_milli(peer, t),
                    });
                }
            }
        }
        // 3. Damping decay releases.
        self.stabilizer.release_due(t);
        // 4. Candidate partitioning through the hysteresis window.
        let observed = self.effective_partitions();
        if let Some(partitions) = self.stabilizer.observe(observed, t) {
            events.push(MembershipEvent::ViewStabilized { partitions });
        }
    }

    /// The partitioning implied by the effective suspicion state:
    /// connected components of the undirected graph where live nodes
    /// `a`–`b` share an edge iff neither suspects the other. Suppressed
    /// nodes are pinned to their group in the last stabilized view;
    /// crashed nodes are singletons.
    fn effective_partitions(&self) -> Vec<BTreeSet<NodeId>> {
        let n = self.node_count as usize;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = i;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        let stable = self
            .stabilizer
            .stable()
            .map(|s| s.to_vec())
            .unwrap_or_default();
        let same_stable_group =
            |a: NodeId, b: NodeId| stable.iter().any(|g| g.contains(&a) && g.contains(&b));
        for a in 0..self.node_count {
            for b in (a + 1)..self.node_count {
                let (na, nb) = (NodeId(a), NodeId(b));
                if self.crashed.contains(&na) || self.crashed.contains(&nb) {
                    continue;
                }
                let suppressed = self.stabilizer.suppressed().contains(&na)
                    || self.stabilizer.suppressed().contains(&nb);
                let connected = if suppressed {
                    same_stable_group(na, nb)
                } else {
                    !self.suspected[&na].contains(&nb) && !self.suspected[&nb].contains(&na)
                };
                if connected {
                    let ra = find(&mut parent, a as usize);
                    let rb = find(&mut parent, b as usize);
                    parent[ra] = rb;
                }
            }
        }
        let mut groups: HashMap<usize, BTreeSet<NodeId>> = HashMap::new();
        for i in 0..n {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().insert(NodeId(i as u32));
        }
        let mut partitions: Vec<BTreeSet<NodeId>> = groups.into_values().collect();
        partitions.sort_by(|x, y| x.iter().next().cmp(&y.iter().next()));
        partitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(n: u32, kind: DetectorKind) -> (MembershipSim, SimClock) {
        let clock = SimClock::new();
        let config = MembershipConfig {
            kind,
            ..MembershipConfig::default()
        };
        (MembershipSim::new(n, config, clock.clone()), clock)
    }

    fn run(sim: &mut MembershipSim, clock: &SimClock, d: SimDuration) -> Vec<MembershipEvent> {
        clock.advance(d);
        sim.poll()
    }

    fn stabilized(events: &[MembershipEvent]) -> Vec<&Vec<BTreeSet<NodeId>>> {
        events
            .iter()
            .filter_map(|e| match e {
                MembershipEvent::ViewStabilized { partitions } => Some(partitions),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn healthy_system_stays_stable() {
        for kind in [DetectorKind::FixedTimeout, DetectorKind::Adaptive] {
            let (mut sim, clock) = sim(4, kind);
            let events = run(&mut sim, &clock, SimDuration::from_secs(3));
            assert!(events.is_empty(), "{kind:?}: {events:?}");
            assert_eq!(sim.standing_suspicions(), 0);
        }
    }

    #[test]
    fn dropped_links_are_detected_and_stabilized() {
        for kind in [DetectorKind::FixedTimeout, DetectorKind::Adaptive] {
            let (mut sim, clock) = sim(4, kind);
            run(&mut sim, &clock, SimDuration::from_secs(2));
            sim.drop_links(&[&[0, 1], &[2, 3]]);
            let events = run(&mut sim, &clock, SimDuration::from_secs(3));
            let views = stabilized(&events);
            assert!(!views.is_empty(), "{kind:?} never stabilized");
            let expected = vec![
                BTreeSet::from([NodeId(0), NodeId(1)]),
                BTreeSet::from([NodeId(2), NodeId(3)]),
            ];
            assert_eq!(views.last().unwrap(), &&expected, "{kind:?}");
        }
    }

    #[test]
    fn heal_clears_all_suspicion_and_restabilizes() {
        let (mut sim, clock) = sim(3, DetectorKind::Adaptive);
        run(&mut sim, &clock, SimDuration::from_secs(2));
        sim.drop_links(&[&[0], &[1, 2]]);
        run(&mut sim, &clock, SimDuration::from_secs(3));
        assert!(sim.standing_suspicions() > 0);
        sim.heal_links();
        let events = run(&mut sim, &clock, SimDuration::from_secs(5));
        assert_eq!(sim.standing_suspicions(), 0);
        let views = stabilized(&events);
        let all: BTreeSet<NodeId> = (0..3).map(NodeId).collect();
        assert_eq!(views.last().unwrap(), &&vec![all]);
    }

    #[test]
    fn scripted_force_is_authoritative_and_quiet() {
        let (mut sim, clock) = sim(4, DetectorKind::Adaptive);
        run(&mut sim, &clock, SimDuration::from_secs(1));
        let groups = vec![
            BTreeSet::from([NodeId(0), NodeId(1)]),
            BTreeSet::from([NodeId(2), NodeId(3)]),
        ];
        sim.force_partitions(&groups);
        // Detection agrees with the scripted state: no further view
        // change, suspicion already in place.
        let events = run(&mut sim, &clock, SimDuration::from_secs(3));
        assert!(stabilized(&events).is_empty(), "{events:?}");
        assert!(sim.suspected_by(NodeId(0)).contains(&NodeId(2)));
        assert_eq!(sim.stable_partitions(), groups);
    }

    #[test]
    fn crashed_node_is_a_singleton_and_silent() {
        let (mut sim, clock) = sim(3, DetectorKind::FixedTimeout);
        run(&mut sim, &clock, SimDuration::from_secs(1));
        sim.set_crashed(NodeId(2), true);
        let events = run(&mut sim, &clock, SimDuration::from_secs(2));
        let views = stabilized(&events);
        let expected = vec![
            BTreeSet::from([NodeId(0), NodeId(1)]),
            BTreeSet::from([NodeId(2)]),
        ];
        assert_eq!(views.last().unwrap(), &&expected);
        // Crashed observers hold no standing suspicions.
        assert_eq!(sim.standing_suspicions(), 0);
    }

    #[test]
    fn adaptive_with_damping_flaps_less_than_fixed_passthrough() {
        // A flapping link: down for one beat, up for one beat, 40 times.
        let run_with = |kind: DetectorKind, stab: StabilizerConfig| -> usize {
            let clock = SimClock::new();
            let config = MembershipConfig {
                kind,
                stabilizer: stab,
                ..MembershipConfig::default()
            };
            let mut sim = MembershipSim::new(3, config, clock.clone());
            clock.advance(SimDuration::from_secs(2));
            let mut views = 0;
            for _ in 0..40 {
                sim.set_link_fault(
                    NodeId(0),
                    NodeId(2),
                    LinkFault {
                        down: true,
                        ..Default::default()
                    },
                );
                sim.set_link_fault(
                    NodeId(2),
                    NodeId(0),
                    LinkFault {
                        down: true,
                        ..Default::default()
                    },
                );
                clock.advance(SimDuration::from_millis(400));
                views += stabilized(&sim.poll()).len();
                sim.set_link_fault(NodeId(0), NodeId(2), LinkFault::default());
                sim.set_link_fault(NodeId(2), NodeId(0), LinkFault::default());
                clock.advance(SimDuration::from_millis(400));
                views += stabilized(&sim.poll()).len();
            }
            views
        };
        let noisy = run_with(DetectorKind::FixedTimeout, StabilizerConfig::passthrough());
        let damped = run_with(DetectorKind::Adaptive, StabilizerConfig::default());
        assert!(
            damped < noisy,
            "damped ({damped}) must flap less than passthrough ({noisy})"
        );
    }

    #[test]
    fn same_seed_same_events_under_loss_and_jitter() {
        let run_once = || {
            let clock = SimClock::new();
            let config = MembershipConfig {
                kind: DetectorKind::Adaptive,
                seed: 7,
                ..MembershipConfig::default()
            };
            let mut sim = MembershipSim::new(4, config, clock.clone());
            sim.set_default_jitter(30_000);
            sim.set_link_fault(
                NodeId(0),
                NodeId(3),
                LinkFault {
                    down: false,
                    loss_per_mille: 400,
                    jitter_micros: 60_000,
                },
            );
            let mut all = Vec::new();
            for _ in 0..50 {
                clock.advance(SimDuration::from_millis(137));
                all.extend(sim.poll());
            }
            all
        };
        assert_eq!(run_once(), run_once());
    }
}
