//! A heartbeat failure detector on the discrete-event kernel.
//!
//! Demonstrates *how* views are detected: every node multicasts
//! heartbeats; a peer not heard from within the timeout is suspected.
//! Since node and link failures cannot be differentiated when they occur
//! (§1.1, [FLP85]), a suspected node is simply treated as being in
//! another partition.

use dedisys_net::{LatencyModel, Router, Scheduler, SimClock, Topology};
use dedisys_types::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Configuration of the heartbeat detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Interval between heartbeats.
    pub heartbeat_interval: SimDuration,
    /// Silence after which a peer is suspected.
    pub suspect_timeout: SimDuration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: SimDuration::from_millis(100),
            suspect_timeout: SimDuration::from_millis(350),
        }
    }
}

/// Events driving the detector simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetectorEvent {
    /// `node` should emit its next heartbeat.
    SendHeartbeat(NodeId),
    /// `node` should check its peers for timeouts.
    CheckTimeouts(NodeId),
}

/// A heartbeat payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Heartbeat;

/// A self-contained failure-detector simulation over every node of a
/// topology.
///
/// ```
/// use dedisys_gms::{DetectorConfig, FailureDetectorSim};
/// use dedisys_net::Topology;
/// use dedisys_types::{NodeId, SimDuration};
///
/// let mut sim = FailureDetectorSim::new(Topology::fully_connected(3), DetectorConfig::default());
/// sim.run_for(SimDuration::from_secs(1));
/// assert!(sim.suspected_by(NodeId(0)).is_empty());
///
/// sim.topology_mut().split(&[&[0, 1], &[2]]);
/// sim.run_for(SimDuration::from_secs(1));
/// assert!(sim.suspected_by(NodeId(0)).contains(&NodeId(2)));
/// assert!(sim.suspected_by(NodeId(2)).contains(&NodeId(0)));
/// ```
#[derive(Debug)]
pub struct FailureDetectorSim {
    config: DetectorConfig,
    router: Router<Heartbeat>,
    scheduler: Scheduler<DetectorEvent>,
    last_heard: HashMap<(NodeId, NodeId), SimTime>,
    suspected: HashMap<NodeId, BTreeSet<NodeId>>,
}

impl FailureDetectorSim {
    /// Creates the simulation with sub-millisecond link latency.
    pub fn new(topology: Topology, config: DetectorConfig) -> Self {
        let clock = SimClock::new();
        let mut scheduler = Scheduler::new(clock.clone());
        let now = clock.now();
        let mut last_heard = HashMap::new();
        for a in topology.nodes() {
            scheduler.schedule_at(now, DetectorEvent::SendHeartbeat(a));
            scheduler.schedule_in(config.suspect_timeout, DetectorEvent::CheckTimeouts(a));
            for b in topology.nodes() {
                if a != b {
                    last_heard.insert((a, b), now);
                }
            }
        }
        let suspected = topology.nodes().map(|n| (n, BTreeSet::new())).collect();
        Self {
            config,
            router: Router::new(topology, LatencyModel::uniform_micros(500), clock),
            scheduler,
            last_heard,
            suspected,
        }
    }

    /// Mutable topology access (inject partitions/heals mid-run).
    pub fn topology_mut(&mut self) -> &mut Topology {
        self.router.topology_mut()
    }

    /// Nodes currently suspected by `node`.
    pub fn suspected_by(&self, node: NodeId) -> &BTreeSet<NodeId> {
        self.suspected
            .get(&node)
            .expect("node is part of the simulation")
    }

    /// The membership `node` believes in: all system nodes minus its
    /// suspects.
    pub fn believed_members(&self, node: NodeId) -> BTreeSet<NodeId> {
        let suspects = self.suspected_by(node);
        self.router
            .topology()
            .nodes()
            .filter(|n| !suspects.contains(n))
            .collect()
    }

    /// Runs the detector for `duration` of virtual time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let until = self.router.clock().now() + duration;
        while let Some(ev) = self.scheduler.pop_until(until) {
            self.drain_deliveries();
            match ev.event {
                DetectorEvent::SendHeartbeat(node) => {
                    let group: Vec<NodeId> = self.router.topology().nodes().collect();
                    self.router.multicast(node, &group, Heartbeat);
                    self.scheduler.schedule_in(
                        self.config.heartbeat_interval,
                        DetectorEvent::SendHeartbeat(node),
                    );
                }
                DetectorEvent::CheckTimeouts(node) => {
                    self.check_timeouts(node, ev.at);
                    self.scheduler.schedule_in(
                        self.config.heartbeat_interval,
                        DetectorEvent::CheckTimeouts(node),
                    );
                }
            }
        }
        self.router.clock().advance_to(until);
        self.drain_deliveries();
    }

    fn drain_deliveries(&mut self) {
        for env in self.router.deliver_due() {
            self.last_heard.insert((env.to, env.from), env.deliver_at);
            // Hearing from a node clears the suspicion (re-join).
            if let Some(suspects) = self.suspected.get_mut(&env.to) {
                suspects.remove(&env.from);
            }
        }
    }

    fn check_timeouts(&mut self, node: NodeId, now: SimTime) {
        let timeout = self.config.suspect_timeout;
        let peers: Vec<NodeId> = self
            .router
            .topology()
            .nodes()
            .filter(|&n| n != node)
            .collect();
        for peer in peers {
            let heard = self.last_heard[&(node, peer)];
            if now.since(heard) >= timeout {
                self.suspected
                    .get_mut(&node)
                    .expect("node present")
                    .insert(peer);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_system_has_no_suspects() {
        let mut sim =
            FailureDetectorSim::new(Topology::fully_connected(4), DetectorConfig::default());
        sim.run_for(SimDuration::from_secs(2));
        for n in 0..4 {
            assert!(sim.suspected_by(NodeId(n)).is_empty(), "node {n}");
        }
    }

    #[test]
    fn partition_is_detected_on_both_sides() {
        let mut sim =
            FailureDetectorSim::new(Topology::fully_connected(3), DetectorConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.topology_mut().split(&[&[0, 1], &[2]]);
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.suspected_by(NodeId(0)), &BTreeSet::from([NodeId(2)]));
        assert_eq!(sim.suspected_by(NodeId(1)), &BTreeSet::from([NodeId(2)]));
        assert_eq!(
            sim.suspected_by(NodeId(2)),
            &BTreeSet::from([NodeId(0), NodeId(1)])
        );
        assert_eq!(
            sim.believed_members(NodeId(0)),
            BTreeSet::from([NodeId(0), NodeId(1)])
        );
    }

    #[test]
    fn rejoin_clears_suspicion() {
        let mut sim =
            FailureDetectorSim::new(Topology::fully_connected(2), DetectorConfig::default());
        sim.topology_mut().split(&[&[0], &[1]]);
        sim.run_for(SimDuration::from_secs(1));
        assert!(!sim.suspected_by(NodeId(0)).is_empty());
        sim.topology_mut().heal();
        sim.run_for(SimDuration::from_secs(1));
        assert!(sim.suspected_by(NodeId(0)).is_empty());
        assert!(sim.suspected_by(NodeId(1)).is_empty());
    }

    #[test]
    fn detector_converges_to_the_topology_partitions() {
        // After enough virtual time, every node's believed membership
        // equals its topology partition — the property that lets the
        // cluster façade derive views directly from the topology.
        let mut sim =
            FailureDetectorSim::new(Topology::fully_connected(5), DetectorConfig::default());
        sim.run_for(SimDuration::from_millis(500));
        sim.topology_mut().split(&[&[0, 1], &[2, 3, 4]]);
        sim.run_for(SimDuration::from_secs(2));
        let topo = Topology::fully_connected(5);
        let mut expected_topo = topo;
        expected_topo.split(&[&[0, 1], &[2, 3, 4]]);
        for n in 0..5 {
            let node = NodeId(n);
            assert_eq!(
                sim.believed_members(node),
                expected_topo.reachable_from(node),
                "node {n}"
            );
        }
    }

    #[test]
    fn node_crash_looks_like_singleton_partition() {
        let mut sim =
            FailureDetectorSim::new(Topology::fully_connected(3), DetectorConfig::default());
        sim.topology_mut().isolate(NodeId(1));
        sim.run_for(SimDuration::from_secs(1));
        assert_eq!(sim.suspected_by(NodeId(0)), &BTreeSet::from([NodeId(1)]));
        assert_eq!(sim.believed_members(NodeId(1)), BTreeSet::from([NodeId(1)]));
    }
}
