//! # dedisys-gms
//!
//! Group membership service (GMS) substrate.
//!
//! In the original system (Figure 4.1) the GMS detects node and link
//! failures as well as re-joins and notifies the replication service,
//! which triggers mode transitions and the reconciliation phase. This
//! crate provides:
//!
//! * [`View`] — an installed membership view (view id + member set).
//! * [`ViewTracker`] — per-node view installation, deriving
//!   [`ViewChange`]s (who joined, who left) from topology epochs.
//! * [`NodeWeights`] / partition weight — Gifford-style weighted nodes
//!   (§5.5.2) enabling *partition-sensitive* integrity constraints.
//! * [`FailureDetectorSim`] — a heartbeat failure detector running on
//!   the discrete-event kernel, demonstrating how views are *detected*
//!   (the cluster façade derives views directly from the topology,
//!   which is behaviourally equivalent once detection converges).
//! * [`AdaptiveDetector`] / [`DetectorKind`] — a φ-accrual-style
//!   adaptive detector (integer fixed-point, virtual-clock only) that
//!   learns each link's heartbeat rhythm instead of using one global
//!   timeout.
//! * [`ViewStabilizer`] — hysteresis + BGP-style flap damping between
//!   raw suspicion and installed views.
//! * [`PrimaryPartitionPolicy`] — how a partition classifies itself
//!   primary or minority (`MajorityNodes`, `WeightedQuorum`,
//!   `AlwaysPrimary`).
//! * [`MembershipSim`] — the full pipeline (physical link faults →
//!   heartbeats → suspicion → damping → stabilized partitionings) on
//!   the shared virtual clock.
//!
//! ## Example
//!
//! ```
//! use dedisys_gms::{NodeWeights, ViewTracker};
//! use dedisys_net::Topology;
//! use dedisys_types::NodeId;
//!
//! let mut topo = Topology::fully_connected(3);
//! let mut tracker = ViewTracker::new(NodeId(0), &topo);
//! assert_eq!(tracker.current().members().len(), 3);
//!
//! topo.split(&[&[0], &[1, 2]]);
//! let change = tracker.observe(&topo).expect("view change");
//! assert_eq!(change.left.len(), 2);
//!
//! let weights = NodeWeights::uniform(3);
//! assert!((weights.partition_fraction(tracker.current().members()) - 1.0 / 3.0).abs() < 1e-9);
//! ```

mod adaptive;
mod detector;
mod membership;
mod policy;
mod stabilizer;
mod view;
mod weight;

pub use adaptive::{AdaptiveConfig, AdaptiveDetector, DetectorKind};
pub use detector::{DetectorConfig, DetectorEvent, FailureDetectorSim};
pub use membership::{LinkFault, MembershipConfig, MembershipEvent, MembershipSim};
pub use policy::{MinorityWriteHandling, PrimaryPartitionPolicy};
pub use stabilizer::{StabilizerConfig, ViewStabilizer};
pub use view::{View, ViewChange, ViewTracker};
pub use weight::NodeWeights;
