//! φ-accrual-style adaptive failure detection (Hayashibara et al.)
//! on the deterministic virtual clock.
//!
//! The fixed-timeout detector treats every link the same; under jittery
//! links it either suspects too eagerly (false positives → view flaps)
//! or too lazily (slow detection). The accrual detector instead keeps a
//! sliding window of observed heartbeat inter-arrival times per peer
//! and outputs a *suspicion level* φ that grows with the current
//! silence relative to the observed arrival process. The consumer picks
//! a threshold: small φ = fast-but-trigger-happy, large φ =
//! conservative.
//!
//! **No floats on the hot path.** Under the exponential inter-arrival
//! assumption the original definition reduces to
//!
//! ```text
//! φ(Δ) = -log10 P(no arrival within Δ) = Δ / (mean · ln 10) ≈ 0.434 · Δ / mean
//! ```
//!
//! which we evaluate in fixed point as `φ·1000 = Δns · 434 / mean_ns`.
//! All state is integer, so two runs with the same schedule produce
//! bit-identical suspicion sequences.

use dedisys_types::{SimDuration, SimTime};
use std::collections::VecDeque;

/// `1000 · log10(e)` — the fixed-point scale factor turning
/// `Δ / mean` into `φ · 1000` under the exponential model.
const PHI_SCALE_MILLI: u128 = 434;

/// Which failure-detection algorithm a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorKind {
    /// Fixed silence timeout (the original detector): suspect a peer
    /// not heard from within `suspect_timeout`.
    #[default]
    FixedTimeout,
    /// φ-accrual adaptive detector: suspect when the fixed-point
    /// suspicion level crosses [`AdaptiveConfig::phi_threshold_milli`].
    Adaptive,
}

/// Tuning of the adaptive detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveConfig {
    /// Sliding-window capacity of inter-arrival samples per peer.
    pub window: usize,
    /// Below this many samples the detector falls back to the fixed
    /// timeout (a cold window has no meaningful mean).
    pub min_samples: usize,
    /// Suspicion threshold as `φ · 1000`. The default 1300 suspects
    /// after a silence of ≈ 3 mean inter-arrival periods
    /// (`Δ = 1300 · mean / 434 ≈ 3.0 · mean`).
    pub phi_threshold_milli: u64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            window: 16,
            min_samples: 4,
            phi_threshold_milli: 1300,
        }
    }
}

/// Per-peer accrual state: the inter-arrival window and its running
/// sum (so the mean is O(1) to read).
#[derive(Debug, Clone, Default)]
pub struct AdaptiveDetector {
    samples: VecDeque<u64>,
    sum_ns: u64,
    last_arrival: Option<SimTime>,
}

impl AdaptiveDetector {
    /// Creates an empty window.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a heartbeat arrival at `at`, folding the inter-arrival
    /// time into the window (capacity `window`). Out-of-order arrivals
    /// (jitter can reorder deliveries) are ignored for interval
    /// purposes but still refresh the last-arrival mark when newer.
    pub fn record_arrival(&mut self, at: SimTime, window: usize) {
        if let Some(last) = self.last_arrival {
            if at <= last {
                return;
            }
            let interval = at.since(last).as_nanos();
            self.samples.push_back(interval);
            self.sum_ns += interval;
            while self.samples.len() > window.max(1) {
                self.sum_ns -= self.samples.pop_front().expect("non-empty");
            }
        }
        self.last_arrival = Some(at);
    }

    /// Number of inter-arrival samples gathered so far.
    pub fn samples(&self) -> usize {
        self.samples.len()
    }

    /// Mean inter-arrival time in nanoseconds (`None` while empty).
    pub fn mean_interval_ns(&self) -> Option<u64> {
        if self.samples.is_empty() {
            None
        } else {
            Some((self.sum_ns / self.samples.len() as u64).max(1))
        }
    }

    /// The instant of the last recorded arrival.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.last_arrival
    }

    /// Current suspicion level as `φ · 1000` at `now`, or `None` while
    /// the window is empty. Monotonic in the silence duration.
    pub fn phi_milli(&self, now: SimTime) -> Option<u64> {
        let mean = self.mean_interval_ns()?;
        let last = self.last_arrival?;
        if now <= last {
            return Some(0);
        }
        let elapsed = now.since(last).as_nanos() as u128;
        let phi = elapsed * PHI_SCALE_MILLI / mean as u128;
        Some(phi.min(u64::MAX as u128) as u64)
    }

    /// Suspicion decision at `now`: accrual once the window is warm
    /// (`min_samples`), fixed `fallback_timeout` silence before that.
    pub fn is_suspect(
        &self,
        now: SimTime,
        config: &AdaptiveConfig,
        fallback_timeout: SimDuration,
    ) -> bool {
        let Some(last) = self.last_arrival else {
            return false;
        };
        if now <= last {
            return false;
        }
        if self.samples.len() < config.min_samples {
            return now.since(last) >= fallback_timeout;
        }
        self.phi_milli(now).unwrap_or(0) >= config.phi_threshold_milli
    }

    /// Resets the arrival mark to `at` without touching the learned
    /// window — used when a scripted topology change authoritatively
    /// reconnects a link (the history of a healthy link stays valid).
    pub fn mark_heard(&mut self, at: SimTime) {
        self.last_arrival = Some(at);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn phi_grows_with_silence() {
        let mut d = AdaptiveDetector::new();
        for i in 0..10 {
            d.record_arrival(t(i * 100), 16);
        }
        assert_eq!(d.mean_interval_ns(), Some(100_000_000));
        // Silence of one mean interval ⇒ φ ≈ 0.434.
        assert_eq!(d.phi_milli(t(1000)), Some(434));
        // Three mean intervals ⇒ φ ≈ 1.3 (the default threshold).
        assert_eq!(d.phi_milli(t(1200)), Some(434 * 3));
        assert!(d.phi_milli(t(1200)).unwrap() >= AdaptiveConfig::default().phi_threshold_milli);
    }

    #[test]
    fn warm_window_tolerates_jitter_better_than_fixed_timeout() {
        // Peer with a slow (300 ms) but steady heartbeat: the fixed
        // 350 ms timeout flags it during normal operation; the accrual
        // detector has learned the rhythm and stays calm until ≈ 3
        // intervals of true silence.
        let cfg = AdaptiveConfig::default();
        let fixed = SimDuration::from_millis(350);
        let mut d = AdaptiveDetector::new();
        for i in 0..10 {
            d.record_arrival(t(i * 300), 16);
        }
        let now = t(9 * 300 + 400); // 400 ms of silence
        assert!(
            now.since(d.last_arrival().unwrap()) >= fixed,
            "fixed would fire"
        );
        assert!(!d.is_suspect(now, &cfg, fixed), "accrual holds");
        let much_later = t(9 * 300 + 1000);
        assert!(d.is_suspect(much_later, &cfg, fixed));
    }

    #[test]
    fn cold_window_falls_back_to_fixed_timeout() {
        let cfg = AdaptiveConfig::default();
        let mut d = AdaptiveDetector::new();
        d.record_arrival(t(0), 16);
        d.record_arrival(t(100), 16); // 1 sample < min_samples
        assert!(!d.is_suspect(t(200), &cfg, SimDuration::from_millis(350)));
        assert!(d.is_suspect(t(500), &cfg, SimDuration::from_millis(350)));
    }

    #[test]
    fn window_is_bounded_and_out_of_order_ignored() {
        let mut d = AdaptiveDetector::new();
        for i in 0..100 {
            d.record_arrival(t(i * 10), 8);
        }
        assert_eq!(d.samples(), 8);
        let before = d.samples();
        d.record_arrival(t(5), 8); // stale
        assert_eq!(d.samples(), before);
    }

    #[test]
    fn no_arrivals_means_no_suspicion() {
        let d = AdaptiveDetector::new();
        assert!(!d.is_suspect(
            t(10_000),
            &AdaptiveConfig::default(),
            SimDuration::from_millis(1)
        ));
        assert_eq!(d.phi_milli(t(10_000)), None);
    }
}
