//! Membership views and per-node view tracking.

use dedisys_net::Topology;
use dedisys_telemetry::{Telemetry, TraceEvent};
use dedisys_types::{NodeId, ViewId};
use std::collections::BTreeSet;
use std::fmt;

/// An installed membership view: the set of nodes a given node can
/// currently communicate with (including itself), stamped with a
/// monotonically increasing view id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct View {
    id: ViewId,
    members: BTreeSet<NodeId>,
}

impl View {
    /// Creates a view.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty — a node is always a member of its
    /// own view.
    pub fn new(id: ViewId, members: BTreeSet<NodeId>) -> Self {
        assert!(!members.is_empty(), "a view must have at least one member");
        Self { id, members }
    }

    /// The view id.
    pub fn id(&self) -> ViewId {
        self.id
    }

    /// The member set.
    pub fn members(&self) -> &BTreeSet<NodeId> {
        &self.members
    }

    /// Whether `node` is a member of this view.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The deterministic coordinator of the view (lowest member id) —
    /// used e.g. as the sequencer for total-order multicast.
    pub fn coordinator(&self) -> NodeId {
        *self.members.iter().next().expect("views are non-empty")
    }
}

impl fmt::Display for View {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{{", self.id)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{m}")?;
        }
        write!(f, "}}")
    }
}

/// The difference between two consecutive views.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChange {
    /// The previous view.
    pub old: View,
    /// The newly installed view.
    pub new: View,
    /// Nodes present in `new` but not in `old` (re-joins / recoveries).
    pub joined: BTreeSet<NodeId>,
    /// Nodes present in `old` but not in `new` (crashes / partitions).
    pub left: BTreeSet<NodeId>,
}

impl ViewChange {
    /// Whether this change re-unifies previously split partitions
    /// (at least one node joined) — the trigger for the reconciliation
    /// phase (§4.4).
    pub fn is_merge(&self) -> bool {
        !self.joined.is_empty()
    }

    /// Whether this change degraded the system (at least one node left).
    pub fn is_degradation(&self) -> bool {
        !self.left.is_empty()
    }
}

/// Tracks the view of a single node across topology changes.
///
/// The tracker polls the topology's epoch; when it changed, a new view
/// is installed and the [`ViewChange`] is reported — the synchronous
/// equivalent of the GMS notification in Figure 4.6.
#[derive(Debug, Clone)]
pub struct ViewTracker {
    node: NodeId,
    current: View,
    last_epoch: u64,
    telemetry: Option<Telemetry>,
}

impl ViewTracker {
    /// Creates a tracker for `node`, installing the initial view from
    /// the current topology.
    pub fn new(node: NodeId, topology: &Topology) -> Self {
        let members = topology.reachable_from(node);
        Self {
            node,
            current: View::new(ViewId(0), members),
            last_epoch: topology.epoch(),
            telemetry: None,
        }
    }

    /// Wires a telemetry bus; `view_change` events are emitted on each
    /// installed view from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The node this tracker belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The currently installed view.
    pub fn current(&self) -> &View {
        &self.current
    }

    /// Observes the topology; if its epoch advanced and the membership
    /// actually changed, installs the next view and returns the change.
    pub fn observe(&mut self, topology: &Topology) -> Option<ViewChange> {
        if topology.epoch() == self.last_epoch {
            return None;
        }
        self.last_epoch = topology.epoch();
        let members = topology.reachable_from(self.node);
        if members == *self.current.members() {
            return None;
        }
        let old = self.current.clone();
        let new = View::new(old.id().next(), members);
        let joined = new.members().difference(old.members()).copied().collect();
        let left = old.members().difference(new.members()).copied().collect();
        self.current = new.clone();
        let change = ViewChange {
            old,
            new,
            joined,
            left,
        };
        if let Some(t) = &self.telemetry {
            t.emit(|| TraceEvent::ViewChange {
                node: self.node,
                view: change.new.id(),
                members: change.new.size() as u32,
                joined: change.joined.len() as u32,
                left: change.left.len() as u32,
            });
        }
        Some(change)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_basics() {
        let v = View::new(ViewId(1), BTreeSet::from([NodeId(2), NodeId(0)]));
        assert_eq!(v.size(), 2);
        assert!(v.contains(NodeId(0)));
        assert_eq!(v.coordinator(), NodeId(0));
        assert_eq!(v.to_string(), "v1{n0,n2}");
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_view_rejected() {
        View::new(ViewId(0), BTreeSet::new());
    }

    #[test]
    fn tracker_detects_degradation_and_merge() {
        let mut topo = Topology::fully_connected(3);
        let mut tracker = ViewTracker::new(NodeId(1), &topo);
        assert_eq!(tracker.current().size(), 3);

        topo.split(&[&[0], &[1, 2]]);
        let change = tracker.observe(&topo).unwrap();
        assert!(change.is_degradation());
        assert!(!change.is_merge());
        assert_eq!(change.left, BTreeSet::from([NodeId(0)]));
        assert_eq!(tracker.current().id(), ViewId(1));

        topo.heal();
        let change = tracker.observe(&topo).unwrap();
        assert!(change.is_merge());
        assert_eq!(change.joined, BTreeSet::from([NodeId(0)]));
        assert_eq!(tracker.current().id(), ViewId(2));
    }

    #[test]
    fn tracker_ignores_irrelevant_changes() {
        let mut topo = Topology::fully_connected(4);
        let mut tracker = ViewTracker::new(NodeId(0), &topo);
        topo.split(&[&[0, 1], &[2, 3]]);
        assert!(tracker.observe(&topo).is_some());
        // Splitting the *other* partition does not change n0's view.
        topo.split(&[&[0, 1], &[2], &[3]]);
        assert!(tracker.observe(&topo).is_none());
    }

    #[test]
    fn tracker_no_change_without_epoch_advance() {
        let topo = Topology::fully_connected(2);
        let mut tracker = ViewTracker::new(NodeId(0), &topo);
        assert!(tracker.observe(&topo).is_none());
    }
}
