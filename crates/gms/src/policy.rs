//! Primary-partition classification (§5.5.2).
//!
//! When the system splits, each partition must decide *on its own*
//! whether it may keep acting as the primary. The classic answers are
//! node-count majority and Gifford-style weighted voting (reusing
//! [`NodeWeights`]); both guarantee at most one primary partition at a
//! time because two disjoint sets cannot both hold more than half of
//! the votes. `AlwaysPrimary` reproduces the system's historical
//! behaviour — every partition keeps accepting (degraded) writes and
//! integrity threats are negotiated at reconciliation.

use crate::NodeWeights;
use dedisys_types::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// How a partition classifies itself primary or minority.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrimaryPartitionPolicy {
    /// Every partition is primary (the availability-first historical
    /// behaviour; integrity is defended by threat negotiation alone).
    #[default]
    AlwaysPrimary,
    /// Primary iff the partition holds a strict majority of nodes.
    MajorityNodes,
    /// Primary iff the partition holds a strict majority of the total
    /// node weight (Gifford weighted voting over [`NodeWeights`]).
    WeightedQuorum,
}

impl PrimaryPartitionPolicy {
    /// Whether a partition with `members` is primary under this policy.
    ///
    /// Strict-majority comparisons are exact integer arithmetic, so two
    /// disjoint partitions can never both be primary under
    /// `MajorityNodes` or `WeightedQuorum`.
    pub fn is_primary(&self, members: &BTreeSet<NodeId>, weights: &NodeWeights) -> bool {
        match self {
            PrimaryPartitionPolicy::AlwaysPrimary => true,
            PrimaryPartitionPolicy::MajorityNodes => {
                2 * members.len() as u64 > weights.node_count() as u64
            }
            PrimaryPartitionPolicy::WeightedQuorum => {
                2 * u64::from(weights.partition_weight(members)) > u64::from(weights.total())
            }
        }
    }

    /// Whether this policy actually excludes minorities (i.e. is a
    /// quorum policy rather than `AlwaysPrimary`).
    pub fn is_quorum(&self) -> bool {
        !matches!(self, PrimaryPartitionPolicy::AlwaysPrimary)
    }
}

impl fmt::Display for PrimaryPartitionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrimaryPartitionPolicy::AlwaysPrimary => write!(f, "always-primary"),
            PrimaryPartitionPolicy::MajorityNodes => write!(f, "majority-nodes"),
            PrimaryPartitionPolicy::WeightedQuorum => write!(f, "weighted-quorum"),
        }
    }
}

/// What happens to a write originating in a minority partition when a
/// quorum policy is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MinorityWriteHandling {
    /// Admit the write into degraded mode: availability first, the
    /// resulting consistency threats are negotiated as usual.
    #[default]
    Degrade,
    /// Refuse the write with `Error::NotPrimary`: integrity first.
    Refuse,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u32]) -> BTreeSet<NodeId> {
        ids.iter().map(|&n| NodeId(n)).collect()
    }

    #[test]
    fn always_primary_accepts_everything() {
        let w = NodeWeights::uniform(5);
        assert!(PrimaryPartitionPolicy::AlwaysPrimary.is_primary(&set(&[3]), &w));
        assert!(!PrimaryPartitionPolicy::AlwaysPrimary.is_quorum());
    }

    #[test]
    fn majority_nodes_requires_strict_majority() {
        let w = NodeWeights::uniform(4);
        let p = PrimaryPartitionPolicy::MajorityNodes;
        assert!(p.is_primary(&set(&[0, 1, 2]), &w));
        assert!(!p.is_primary(&set(&[0, 1]), &w), "exact half is minority");
        assert!(!p.is_primary(&set(&[3]), &w));
    }

    #[test]
    fn weighted_quorum_follows_the_weights() {
        // n0 carries weight 5 of 8: it is primary alone.
        let w = NodeWeights::explicit(vec![5, 1, 1, 1]);
        let p = PrimaryPartitionPolicy::WeightedQuorum;
        assert!(p.is_primary(&set(&[0]), &w));
        assert!(!p.is_primary(&set(&[1, 2, 3]), &w));
    }

    #[test]
    fn disjoint_partitions_cannot_both_be_primary() {
        for policy in [
            PrimaryPartitionPolicy::MajorityNodes,
            PrimaryPartitionPolicy::WeightedQuorum,
        ] {
            let w = NodeWeights::explicit(vec![2, 3, 1, 1, 4]);
            // Every 2-way split of 5 nodes.
            for mask in 0u32..(1 << 5) {
                let a: BTreeSet<NodeId> = (0..5)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(NodeId)
                    .collect();
                let b: BTreeSet<NodeId> = (0..5)
                    .filter(|i| mask & (1 << i) == 0)
                    .map(NodeId)
                    .collect();
                assert!(
                    !(policy.is_primary(&a, &w) && policy.is_primary(&b, &w)),
                    "{policy}: {a:?} and {b:?} both primary"
                );
            }
        }
    }
}
