//! View stabilization: hysteresis and flap damping between raw
//! suspicion and installed membership views.
//!
//! Raw suspicion output is noisy — a single lost heartbeat burst can
//! suspect-then-clear a peer within two check intervals, and a flapping
//! link does so periodically. Installing a view (and with it a
//! [`SystemMode`](dedisys_types::SystemMode) transition, replica
//! regrouping and possibly a reconciliation round) on every wiggle is
//! exactly the pathology BGP route damping addresses, so the stabilizer
//! borrows that design:
//!
//! * **Hysteresis**: a proposed partitioning must survive unchanged for
//!   a settle window before it is emitted as stabilized.
//! * **Flap damping**: every suspicion flip charges the flapping node a
//!   penalty that decays with a half-life in virtual time. Above the
//!   suppress threshold the node's connectivity changes are frozen
//!   (held at the last stabilized state) until the penalty decays below
//!   the reuse threshold.
//!
//! All arithmetic is integer (penalties in milli-units, decay by whole
//! half-lives), keeping same-seed runs bit-identical.

use dedisys_types::{NodeId, SimDuration, SimTime};
use std::collections::{BTreeSet, HashMap};

/// Tuning of the [`ViewStabilizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StabilizerConfig {
    /// How long a candidate partitioning must hold before installation.
    pub settle: SimDuration,
    /// Penalty (milli-units) charged per suspicion flip.
    pub flap_penalty_milli: u64,
    /// Penalty decay half-life in virtual time.
    pub half_life: SimDuration,
    /// A node at or above this penalty is suppressed (its connectivity
    /// is frozen at the last stabilized state).
    pub suppress_milli: u64,
    /// A suppressed node is reused once its penalty decays to or below
    /// this value.
    pub reuse_milli: u64,
}

impl Default for StabilizerConfig {
    fn default() -> Self {
        Self {
            settle: SimDuration::from_millis(300),
            flap_penalty_milli: 1000,
            half_life: SimDuration::from_secs(2),
            suppress_milli: 3000,
            reuse_milli: 1500,
        }
    }
}

impl StabilizerConfig {
    /// A do-nothing configuration: no hold window, no damping. Every
    /// raw membership change is emitted immediately — the baseline the
    /// flap-sweep experiment compares against.
    pub fn passthrough() -> Self {
        Self {
            settle: SimDuration::ZERO,
            flap_penalty_milli: 0,
            half_life: SimDuration::from_secs(1),
            suppress_milli: u64::MAX,
            reuse_milli: 0,
        }
    }
}

/// Decaying per-node flap penalty.
#[derive(Debug, Clone, Copy)]
struct Penalty {
    value_milli: u64,
    updated: SimTime,
}

/// Debounces raw membership observations into stabilized views.
///
/// Feed every raw partitioning through [`ViewStabilizer::observe`];
/// it returns `Some(partitioning)` only when a *new* partitioning has
/// survived the settle window. Suspicion flips are reported through
/// [`ViewStabilizer::record_flap`], which answers whether the node just
/// crossed into suppression.
#[derive(Debug, Clone)]
pub struct ViewStabilizer {
    config: StabilizerConfig,
    penalties: HashMap<NodeId, Penalty>,
    suppressed: BTreeSet<NodeId>,
    candidate: Option<Vec<BTreeSet<NodeId>>>,
    candidate_since: SimTime,
    stable: Option<Vec<BTreeSet<NodeId>>>,
    flaps_damped: u64,
}

impl ViewStabilizer {
    /// Creates a stabilizer with no installed view yet.
    pub fn new(config: StabilizerConfig) -> Self {
        Self {
            config,
            penalties: HashMap::new(),
            suppressed: BTreeSet::new(),
            candidate: None,
            candidate_since: SimTime::ZERO,
            stable: None,
            flaps_damped: 0,
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &StabilizerConfig {
        &self.config
    }

    /// The last stabilized partitioning, if any was emitted.
    pub fn stable(&self) -> Option<&[BTreeSet<NodeId>]> {
        self.stable.as_deref()
    }

    /// Overwrites the stabilized state (scripted topology changes are
    /// authoritative and bypass the debounce).
    pub fn force_stable(&mut self, partitions: Vec<BTreeSet<NodeId>>) {
        self.stable = Some(partitions);
        self.candidate = None;
    }

    /// Nodes currently suppressed by flap damping.
    pub fn suppressed(&self) -> &BTreeSet<NodeId> {
        &self.suppressed
    }

    /// Total number of flips absorbed while their node was suppressed.
    pub fn flaps_damped(&self) -> u64 {
        self.flaps_damped
    }

    /// Current decayed penalty of `node` in milli-units.
    pub fn penalty_milli(&self, node: NodeId, now: SimTime) -> u64 {
        self.penalties
            .get(&node)
            .map(|p| decay(p, now, self.config.half_life))
            .unwrap_or(0)
    }

    /// Charges one suspicion flip to `node` at `now`. Returns `true`
    /// if the node crossed into suppression with this flip.
    pub fn record_flap(&mut self, node: NodeId, now: SimTime) -> bool {
        let half_life = self.config.half_life;
        let entry = self.penalties.entry(node).or_insert(Penalty {
            value_milli: 0,
            updated: now,
        });
        let decayed = decay(entry, now, half_life);
        entry.value_milli = decayed.saturating_add(self.config.flap_penalty_milli);
        entry.updated = now;
        if self.suppressed.contains(&node) {
            self.flaps_damped += 1;
            return false;
        }
        if entry.value_milli >= self.config.suppress_milli {
            self.suppressed.insert(node);
            self.flaps_damped += 1;
            return true;
        }
        false
    }

    /// Decays penalties and releases nodes whose penalty dropped to the
    /// reuse threshold. Returns the nodes released at this call.
    pub fn release_due(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut released = Vec::new();
        let reuse = self.config.reuse_milli;
        let half_life = self.config.half_life;
        let suppressed: Vec<NodeId> = self.suppressed.iter().copied().collect();
        for node in suppressed {
            let current = self
                .penalties
                .get(&node)
                .map(|p| decay(p, now, half_life))
                .unwrap_or(0);
            if current <= reuse {
                self.suppressed.remove(&node);
                released.push(node);
            }
        }
        released
    }

    /// Observes a raw partitioning at `now`. Returns the partitioning
    /// once it has survived the settle window and differs from the last
    /// stabilized one.
    pub fn observe(
        &mut self,
        observed: Vec<BTreeSet<NodeId>>,
        now: SimTime,
    ) -> Option<Vec<BTreeSet<NodeId>>> {
        if Some(&observed) == self.stable.as_ref() {
            self.candidate = None;
            return None;
        }
        match &self.candidate {
            Some(candidate) if *candidate == observed => {
                if now.since(self.candidate_since) >= self.config.settle {
                    self.stable = Some(observed.clone());
                    self.candidate = None;
                    return Some(observed);
                }
                None
            }
            _ => {
                if self.config.settle == SimDuration::ZERO {
                    self.stable = Some(observed.clone());
                    self.candidate = None;
                    return Some(observed);
                }
                self.candidate = Some(observed);
                self.candidate_since = now;
                None
            }
        }
    }
}

/// Penalty after decaying by the whole half-lives elapsed since its
/// last update (integer shift — deterministic, monotone).
fn decay(p: &Penalty, now: SimTime, half_life: SimDuration) -> u64 {
    if now <= p.updated || half_life == SimDuration::ZERO {
        return p.value_milli;
    }
    let lives = now.since(p.updated).as_nanos() / half_life.as_nanos().max(1);
    if lives >= 64 {
        0
    } else {
        p.value_milli >> lives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    fn parts(groups: &[&[u32]]) -> Vec<BTreeSet<NodeId>> {
        groups
            .iter()
            .map(|g| g.iter().map(|&n| NodeId(n)).collect())
            .collect()
    }

    #[test]
    fn candidate_must_survive_settle_window() {
        let mut s = ViewStabilizer::new(StabilizerConfig {
            settle: SimDuration::from_millis(300),
            ..StabilizerConfig::default()
        });
        s.force_stable(parts(&[&[0, 1, 2]]));
        let split = parts(&[&[0, 1], &[2]]);
        assert!(s.observe(split.clone(), t(0)).is_none(), "just proposed");
        assert!(s.observe(split.clone(), t(100)).is_none(), "still settling");
        assert_eq!(s.observe(split.clone(), t(300)), Some(split));
    }

    #[test]
    fn oscillation_never_stabilizes() {
        let mut s = ViewStabilizer::new(StabilizerConfig {
            settle: SimDuration::from_millis(300),
            ..StabilizerConfig::default()
        });
        s.force_stable(parts(&[&[0, 1]]));
        let split = parts(&[&[0], &[1]]);
        let whole = parts(&[&[0, 1]]);
        for i in 0..10 {
            assert!(s.observe(split.clone(), t(i * 200)).is_none());
            assert!(s.observe(whole.clone(), t(i * 200 + 100)).is_none());
        }
        assert_eq!(s.stable(), Some(&whole[..]));
    }

    #[test]
    fn passthrough_emits_immediately() {
        let mut s = ViewStabilizer::new(StabilizerConfig::passthrough());
        let split = parts(&[&[0], &[1]]);
        assert_eq!(s.observe(split.clone(), t(0)), Some(split));
    }

    #[test]
    fn repeated_flips_suppress_then_decay_releases() {
        let config = StabilizerConfig::default();
        let mut s = ViewStabilizer::new(config);
        assert!(!s.record_flap(NodeId(1), t(0)));
        assert!(!s.record_flap(NodeId(1), t(10)));
        // Third flip reaches 3000 milli = suppress threshold.
        assert!(s.record_flap(NodeId(1), t(20)));
        assert!(s.suppressed().contains(&NodeId(1)));
        assert_eq!(s.flaps_damped(), 1);
        // Further flips while suppressed are just counted.
        assert!(!s.record_flap(NodeId(1), t(30)));
        assert_eq!(s.flaps_damped(), 2);
        // ~4000 milli decays below reuse (1500) after two half-lives.
        assert!(
            s.release_due(t(30 + 2_000)).is_empty(),
            "one half-life: 2000 > 1500"
        );
        assert_eq!(s.release_due(t(30 + 4_000)), vec![NodeId(1)]);
        assert!(s.suppressed().is_empty());
    }

    #[test]
    fn penalty_decays_by_half_lives() {
        let mut s = ViewStabilizer::new(StabilizerConfig::default());
        s.record_flap(NodeId(0), t(0));
        assert_eq!(s.penalty_milli(NodeId(0), t(0)), 1000);
        assert_eq!(s.penalty_milli(NodeId(0), t(2_000)), 500);
        assert_eq!(s.penalty_milli(NodeId(0), t(4_000)), 250);
        assert_eq!(s.penalty_milli(NodeId(0), t(400_000)), 0);
    }
}
