//! JSONL export: one `serde_json` line per [`TraceRecord`].
//!
//! The export is a pure function of the record stream — no wall-clock
//! timestamps, no host names, no map with nondeterministic order — so
//! two identically-seeded runs write byte-identical files.

use crate::bus::TraceSink;
use crate::event::TraceRecord;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// A [`TraceSink`] writing one JSON object per line.
pub struct JsonlExporter {
    out: BufWriter<Box<dyn Write + Send>>,
}

impl std::fmt::Debug for JsonlExporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlExporter").finish_non_exhaustive()
    }
}

impl JsonlExporter {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> Self {
        Self {
            out: BufWriter::new(writer),
        }
    }

    /// Creates (truncating) `path` and writes the stream there.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }
}

impl TraceSink for JsonlExporter {
    fn record(&mut self, record: &TraceRecord) {
        // Struct serialization cannot fail; IO errors on the buffered
        // writer surface at flush time.
        if let Ok(line) = serde_json::to_string(record) {
            let _ = self.out.write_all(line.as_bytes());
            let _ = self.out.write_all(b"\n");
        }
    }

    fn flush(&mut self) {
        let _ = self.out.flush();
    }
}

impl Drop for JsonlExporter {
    fn drop(&mut self) {
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use dedisys_types::{NodeId, SimTime, TxId};
    use std::sync::{Arc, Mutex};

    /// Shared-buffer writer for asserting on exported bytes.
    #[derive(Clone)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn writes_one_line_per_record() {
        let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
        let mut exporter = JsonlExporter::new(Box::new(buf.clone()));
        for seq in 0..3u64 {
            exporter.record(&TraceRecord {
                seq,
                at: SimTime::from_nanos(seq * 10),
                event: TraceEvent::TxBegin {
                    tx: TxId::new(NodeId(0), seq),
                },
            });
        }
        exporter.flush();
        let bytes = buf.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["event"]["kind"], "tx_begin");
        }
    }
}
