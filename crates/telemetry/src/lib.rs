//! DeDiSys-RS virtual-time telemetry subsystem.
//!
//! The paper's whole contribution is *runtime-visible* dependability:
//! trigger points (§4.2.3), consistency threats (§3.2.2), mode
//! transitions (Figure 1.4), two-step reconciliation (§4.4). This
//! crate makes those concepts first-class observable artifacts of a
//! simulated run:
//!
//! * [`TraceEvent`] — a typed event per paper concept, serialized with
//!   an external `kind` tag so a JSONL stream filters cleanly with
//!   `jq 'select(.event.kind == "threat_recorded")'`.
//! * [`Telemetry`] — a cheap cloneable handle to a shared event bus.
//!   Emission is closure-based ([`Telemetry::emit`]) so the hot path
//!   pays **zero allocation** while no sink is attached: the closure
//!   that builds the event is simply never called.
//! * [`MetricsRegistry`] — deterministic counters and virtual-time
//!   histograms (BTree-ordered, virtual time only — never wall clock).
//! * [`JsonlExporter`] — line-per-event `serde_json` export. Two runs
//!   with the same seed produce **byte-identical** files.
//! * [`RingRecorder`] — bounded in-memory recorder for tests.
//!
//! Determinism contract: every stamp comes from the shared virtual
//! [`SimClock`](dedisys_net::SimClock); sequence numbers are a
//! monotonic per-bus counter; all aggregate maps iterate in `BTreeMap`
//! order. Nothing in this crate reads the wall clock.

mod bus;
mod event;
mod jsonl;
mod metrics;
mod ring;

pub use bus::{Telemetry, TraceSink};
pub use event::{
    AdmissionReject, CostBreakdown, InvocationOutcome, ShedCause, ThreatStorage, TraceEvent,
    TraceRecord, TransitionCause, TriggerKind, TwoPcPhase,
};
pub use jsonl::JsonlExporter;
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use ring::RingRecorder;
