//! Deterministic counters and virtual-time histograms.
//!
//! Keys are `&'static str` so emission sites never allocate; all
//! aggregate state lives in `BTreeMap`s so snapshots iterate in a
//! stable order — a requirement for byte-identical exports across
//! identically-seeded runs.

use dedisys_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Debug, Default, Clone)]
struct Histogram {
    count: u64,
    sum_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// Registry of named counters and virtual-time histograms.
///
/// Counters are monotonic `u64`s; histograms record virtual durations
/// (count/sum/min/max — enough for mean latency and spread without
/// bucketing decisions leaking into the export format).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `name` by one.
    pub fn incr(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut counters = self.counters.lock().expect("metrics counters poisoned");
        *counters.entry(name).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn counter(&self, name: &'static str) -> u64 {
        let counters = self.counters.lock().expect("metrics counters poisoned");
        counters.get(name).copied().unwrap_or(0)
    }

    /// Records one virtual-duration observation under `name`.
    pub fn observe(&self, name: &'static str, d: SimDuration) {
        let ns = d.as_nanos();
        let mut histograms = self.histograms.lock().expect("metrics histograms poisoned");
        let h = histograms.entry(name).or_default();
        if h.count == 0 {
            h.min_ns = ns;
            h.max_ns = ns;
        } else {
            h.min_ns = h.min_ns.min(ns);
            h.max_ns = h.max_ns.max(ns);
        }
        h.count += 1;
        h.sum_ns += ns;
    }

    /// A serializable, deterministically ordered snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self.counters.lock().expect("metrics counters poisoned");
        let histograms = self.histograms.lock().expect("metrics histograms poisoned");
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.to_string(),
                        HistogramSnapshot {
                            count: h.count,
                            sum_ns: h.sum_ns,
                            min_ns: h.min_ns,
                            max_ns: h.max_ns,
                        },
                    )
                })
                .collect(),
        }
    }
}

/// Frozen histogram statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed virtual durations, in nanoseconds.
    pub sum_ns: u64,
    /// Smallest observation, in nanoseconds (zero when empty).
    pub min_ns: u64,
    /// Largest observation, in nanoseconds (zero when empty).
    pub max_ns: u64,
}

impl HistogramSnapshot {
    /// Mean observation in nanoseconds (zero when empty).
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum_ns / self.count
        }
    }
}

/// Serializable snapshot of the whole registry. `BTreeMap`-backed, so
/// serialization order is stable across runs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram statistics by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.incr("a");
        m.add("a", 4);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histograms_track_min_max_mean() {
        let m = MetricsRegistry::new();
        m.observe("lat", SimDuration::from_nanos(10));
        m.observe("lat", SimDuration::from_nanos(30));
        let snap = m.snapshot();
        let h = &snap.histograms["lat"];
        assert_eq!(h.count, 2);
        assert_eq!(h.min_ns, 10);
        assert_eq!(h.max_ns, 30);
        assert_eq!(h.mean_ns(), 20);
    }

    #[test]
    fn snapshot_serializes_in_stable_order() {
        let m = MetricsRegistry::new();
        m.incr("zeta");
        m.incr("alpha");
        let json = serde_json::to_string(&m.snapshot()).unwrap();
        let alpha = json.find("alpha").unwrap();
        let zeta = json.find("zeta").unwrap();
        assert!(alpha < zeta, "{json}");
    }
}
