//! The event bus: a cheap cloneable handle shared by every emitter.
//!
//! Hot-path discipline: [`Telemetry::emit`] takes a *closure* that
//! builds the event. When no sink is attached the closure is never
//! invoked, so instrumented code pays one relaxed atomic load and no
//! allocation. Event construction cost (Strings for object display
//! forms, etc.) is only paid when someone is actually listening.

use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::MetricsRegistry;
use dedisys_net::SimClock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A consumer of trace records.
///
/// Sinks are driven strictly in attach order and receive records in
/// emission (= sequence-number) order, which keeps exported streams
/// deterministic.
pub trait TraceSink: Send {
    /// Consume one record.
    fn record(&mut self, record: &TraceRecord);
    /// Flush any buffered output (e.g. file writers). Default: no-op.
    fn flush(&mut self) {}
}

struct Inner {
    clock: SimClock,
    enabled: AtomicBool,
    seq: AtomicU64,
    sinks: Mutex<Vec<Box<dyn TraceSink>>>,
    metrics: MetricsRegistry,
}

/// Cloneable handle to a shared telemetry bus.
///
/// A disabled bus (no sink attached) costs one atomic load per
/// emission site; [`MetricsRegistry`] counters stay live either way so
/// [`MetricsSnapshot`](crate::MetricsSnapshot)s are always meaningful.
#[derive(Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .field("seq", &self.inner.seq.load(Ordering::Relaxed))
            .finish()
    }
}

impl Telemetry {
    /// Creates a bus stamping events from `clock`. Starts with no
    /// sinks, i.e. disabled for event emission.
    pub fn new(clock: SimClock) -> Self {
        Self {
            inner: Arc::new(Inner {
                clock,
                enabled: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                sinks: Mutex::new(Vec::new()),
                metrics: MetricsRegistry::new(),
            }),
        }
    }

    /// Whether at least one sink is attached (events will be built).
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Attaches a sink and enables event emission.
    pub fn attach(&self, sink: Box<dyn TraceSink>) {
        let mut sinks = self.inner.sinks.lock().expect("telemetry sinks poisoned");
        sinks.push(sink);
        self.inner.enabled.store(true, Ordering::Relaxed);
    }

    /// Emits one event. `build` is only called when a sink is
    /// attached — the disabled path allocates nothing.
    pub fn emit(&self, build: impl FnOnce() -> TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let record = TraceRecord {
            seq: self.inner.seq.fetch_add(1, Ordering::Relaxed),
            at: self.inner.clock.now(),
            event: build(),
        };
        let mut sinks = self.inner.sinks.lock().expect("telemetry sinks poisoned");
        for sink in sinks.iter_mut() {
            sink.record(&record);
        }
    }

    /// The bus-wide metrics registry (live even with no sink attached).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// Number of events emitted so far.
    pub fn events_emitted(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Flushes every attached sink.
    pub fn flush(&self) {
        let mut sinks = self.inner.sinks.lock().expect("telemetry sinks poisoned");
        for sink in sinks.iter_mut() {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingRecorder;
    use dedisys_types::{SimDuration, SystemMode};

    fn mode_event() -> TraceEvent {
        TraceEvent::ModeTransition {
            from: SystemMode::Healthy,
            to: SystemMode::Degraded,
            cause: crate::event::TransitionCause::Scripted,
        }
    }

    #[test]
    fn disabled_bus_skips_event_construction() {
        let bus = Telemetry::new(SimClock::new());
        let mut called = false;
        bus.emit(|| {
            called = true;
            mode_event()
        });
        assert!(!called, "closure must not run while disabled");
        assert_eq!(bus.events_emitted(), 0);
    }

    #[test]
    fn attached_sink_sees_stamped_records() {
        let clock = SimClock::new();
        let bus = Telemetry::new(clock.clone());
        let ring = RingRecorder::new(16);
        bus.attach(Box::new(ring.clone()));
        assert!(bus.is_enabled());

        bus.emit(mode_event);
        clock.advance(SimDuration::from_nanos(500));
        bus.emit(mode_event);

        let records = ring.records();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[0].at.as_nanos(), 0);
        assert_eq!(records[1].at.as_nanos(), 500);
    }

    #[test]
    fn clones_share_the_same_bus() {
        let bus = Telemetry::new(SimClock::new());
        let alias = bus.clone();
        let ring = RingRecorder::new(4);
        bus.attach(Box::new(ring.clone()));
        alias.emit(mode_event);
        assert_eq!(ring.records().len(), 1);
        assert!(alias.is_enabled());
    }
}
