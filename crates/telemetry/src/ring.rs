//! Bounded in-memory recorder for tests.

use crate::bus::TraceSink;
use crate::event::TraceRecord;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A cloneable ring buffer of the most recent trace records.
///
/// Attach one clone to the bus and keep the other to inspect what was
/// recorded:
///
/// ```
/// use dedisys_net::SimClock;
/// use dedisys_telemetry::{RingRecorder, Telemetry, TraceEvent, TransitionCause};
/// use dedisys_types::SystemMode;
///
/// let bus = Telemetry::new(SimClock::new());
/// let ring = RingRecorder::new(128);
/// bus.attach(Box::new(ring.clone()));
/// bus.emit(|| TraceEvent::ModeTransition {
///     from: SystemMode::Healthy,
///     to: SystemMode::Degraded,
///     cause: TransitionCause::Scripted,
/// });
/// assert_eq!(ring.records().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RingRecorder {
    capacity: usize,
    buf: Arc<Mutex<VecDeque<TraceRecord>>>,
}

impl RingRecorder {
    /// Creates a recorder keeping the last `capacity` records.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buf: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.buf
            .lock()
            .expect("ring recorder poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Retained records of one `kind`, oldest first.
    pub fn records_of_kind(&self, kind: &str) -> Vec<TraceRecord> {
        self.buf
            .lock()
            .expect("ring recorder poisoned")
            .iter()
            .filter(|r| r.event.kind() == kind)
            .cloned()
            .collect()
    }

    /// The sequence of event kinds retained, oldest first.
    pub fn kinds(&self) -> Vec<&'static str> {
        self.buf
            .lock()
            .expect("ring recorder poisoned")
            .iter()
            .map(|r| r.event.kind())
            .collect()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("ring recorder poisoned").len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all retained records.
    pub fn clear(&self) {
        self.buf.lock().expect("ring recorder poisoned").clear();
    }
}

impl TraceSink for RingRecorder {
    fn record(&mut self, record: &TraceRecord) {
        let mut buf = self.buf.lock().expect("ring recorder poisoned");
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(record.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use dedisys_types::{NodeId, SimTime, TxId};

    fn record(seq: u64) -> TraceRecord {
        TraceRecord {
            seq,
            at: SimTime::from_nanos(seq),
            event: TraceEvent::TxBegin {
                tx: TxId::new(NodeId(0), seq),
            },
        }
    }

    #[test]
    fn evicts_oldest_at_capacity() {
        let mut ring = RingRecorder::new(2);
        for seq in 0..5 {
            ring.record(&record(seq));
        }
        let kept: Vec<u64> = ring.records().iter().map(|r| r.seq).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn kind_filters() {
        let mut ring = RingRecorder::new(8);
        ring.record(&record(0));
        assert_eq!(ring.kinds(), vec!["tx_begin"]);
        assert_eq!(ring.records_of_kind("tx_begin").len(), 1);
        assert_eq!(ring.records_of_kind("tx_commit").len(), 0);
        ring.clear();
        assert!(ring.is_empty());
    }
}
