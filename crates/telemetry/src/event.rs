//! Typed, virtual-time-stamped trace events.
//!
//! Every event names the *paper concept* it witnesses — trigger points
//! (§4.2.3), consistency threats (§3.2.2), mode transitions (§1.4),
//! reconciliation phases (§4.4) — so an exported stream reads as a
//! protocol transcript of one simulated run.

use dedisys_types::{
    NodeId, PriorityClass, SatisfactionDegree, SimDuration, SimTime, SystemMode, TxId, ViewId,
};
use serde::{Deserialize, Serialize};

/// Outcome of one business invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum InvocationOutcome {
    /// The invocation returned a value.
    Ok,
    /// The invocation failed (availability, constraint, threat).
    Failed,
}

/// Per-invocation virtual-time cost breakdown, in the R1–R5 slice
/// style of the Chapter 2 instrumentation (Figure 2.3): application
/// work, interception, parameter/target preparation, repository
/// search, and constraint checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CostBreakdown {
    /// R1 — application/database work (method dispatch, reads).
    pub r1_application_ns: u64,
    /// R2 — interception: base invocation + replication/CCM
    /// interceptor passes.
    pub r2_interception_ns: u64,
    /// R3 — parameter extraction and target routing (lock acquisition,
    /// remote hops to the executing node).
    pub r3_preparation_ns: u64,
    /// R4 — constraint-repository search (trigger-point lookups).
    pub r4_repository_ns: u64,
    /// R5 — constraint checks, negotiation and threat persistence.
    pub r5_checks_ns: u64,
}

impl CostBreakdown {
    /// Total virtual time across all slices.
    pub fn total(&self) -> SimDuration {
        SimDuration::from_nanos(
            self.r1_application_ns
                + self.r2_interception_ns
                + self.r3_preparation_ns
                + self.r4_repository_ns
                + self.r5_checks_ns,
        )
    }
}

/// Which trigger point of the CCMgr fired (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TriggerKind {
    /// Before-invocation preconditions.
    Precondition,
    /// After-invocation postconditions.
    Postcondition,
    /// After-invocation invariants.
    Invariant,
    /// Commit-time soft/async invariants.
    CommitPrepare,
}

/// How a threat record landed in the persistent store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ThreatStorage {
    /// First occurrence — full record persisted.
    Stored,
    /// Additional occurrence linked under the full-history policy.
    LinkedOccurrence,
    /// Duplicate detected under identical-once — read only.
    Deduplicated,
}

/// A two-phase-commit protocol step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TwoPcPhase {
    /// Phase 1 started: votes are being collected.
    Prepare,
    /// One participant voted.
    Vote,
    /// Phase 2: all participants commit.
    Commit,
    /// Phase 2: all participants roll back.
    Rollback,
}

/// What drove a [`TraceEvent::ModeTransition`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum TransitionCause {
    /// A scripted topology operation (`partition`, `heal`, `crash`,
    /// `restart`, `isolate`) — the test-driver entry path.
    Scripted,
    /// A stabilized view change from the failure-detection pipeline —
    /// the production entry path.
    Detector,
}

/// Why the request plane refused a request at the admission gate
/// (before it ever entered a queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum AdmissionReject {
    /// The node's token bucket was empty.
    Overloaded,
    /// The class queue was full and nothing lower-priority could be
    /// displaced.
    QueueFull,
    /// The node sits in a non-primary partition under a
    /// refuse-minority-writes policy.
    NotPrimary,
    /// The plane's mode gate refused admission because the target
    /// cluster (shard) is not in `Healthy` mode.
    Degraded,
}

/// Why an *admitted* request was dropped from a queue before it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ShedCause {
    /// Displaced by a higher-priority arrival while its queue was
    /// full.
    Displaced,
    /// Shed by mode-coupled backpressure (degraded / minority
    /// partitions drop `Background` work first).
    ModePressure,
}

/// A typed trace event.
///
/// Serialized with an external `kind` tag so a JSONL stream is easy to
/// filter with standard tools (`jq 'select(.event.kind == "...")'`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case")]
pub enum TraceEvent {
    /// A business invocation entered the middleware pipeline.
    InvocationStart {
        /// Node the client issued the invocation on.
        node: NodeId,
        /// Enclosing transaction.
        tx: TxId,
        /// Target object (display form `Class#key`).
        target: String,
        /// Invoked method.
        method: String,
    },
    /// A business invocation left the middleware pipeline.
    InvocationEnd {
        /// Node the client issued the invocation on.
        node: NodeId,
        /// Enclosing transaction.
        tx: TxId,
        /// Target object (display form `Class#key`).
        target: String,
        /// Invoked method.
        method: String,
        /// Success or failure.
        outcome: InvocationOutcome,
        /// Virtual-time cost split into R1–R5 slices.
        cost: CostBreakdown,
    },
    /// A CCMgr trigger point fired and searched the repository.
    TriggerPoint {
        /// Which trigger point.
        trigger: TriggerKind,
        /// The `Class::method` signature looked up.
        signature: String,
        /// Number of affected constraints found.
        matches: u32,
    },
    /// One constraint was validated (including staleness adjustment).
    ConstraintValidated {
        /// Constraint name.
        constraint: String,
        /// Final satisfaction degree.
        degree: SatisfactionDegree,
        /// Number of objects the validation accessed.
        accessed: u32,
    },
    /// A consistency threat was accepted and handed to the store.
    ThreatRecorded {
        /// Constraint name.
        constraint: String,
        /// Context object, if any.
        context: Option<String>,
        /// Observed satisfaction degree.
        degree: SatisfactionDegree,
        /// Storage outcome (dedup vs new record).
        storage: ThreatStorage,
    },
    /// A consistency threat was rejected during negotiation; the
    /// enclosing operation aborts.
    ThreatRejected {
        /// Constraint name.
        constraint: String,
        /// Observed satisfaction degree.
        degree: SatisfactionDegree,
    },
    /// A two-phase-commit protocol step.
    TwoPc {
        /// The transaction.
        tx: TxId,
        /// Protocol step.
        phase: TwoPcPhase,
        /// Participant resource (votes only).
        participant: Option<String>,
        /// Whether the vote was "prepared" (votes only).
        prepared: Option<bool>,
    },
    /// A transaction began.
    TxBegin {
        /// The transaction.
        tx: TxId,
    },
    /// A transaction committed.
    TxCommit {
        /// The transaction.
        tx: TxId,
    },
    /// A transaction rolled back (explicitly or by veto).
    TxRollback {
        /// The transaction.
        tx: TxId,
    },
    /// A committed update was propagated to reachable backups.
    ReplicationUpdate {
        /// The updated object.
        object: String,
        /// Node the write executed on.
        from: NodeId,
        /// Number of backups reached.
        recipients: u32,
        /// Point-to-point messages exchanged.
        messages: u64,
        /// Whether the system was degraded (bookkeeping recorded).
        degraded: bool,
    },
    /// A validation read hit a possibly stale replica (LCC input).
    StalenessHit {
        /// The possibly stale object.
        object: String,
        /// Node that read it.
        node: NodeId,
    },
    /// A node installed a new membership view.
    ViewChange {
        /// The observing node.
        node: NodeId,
        /// The new view id.
        view: ViewId,
        /// Members of the new view.
        members: u32,
        /// Nodes that joined (merge when > 0).
        joined: u32,
        /// Nodes that left (degradation when > 0).
        left: u32,
    },
    /// The cluster-wide system mode changed (Figure 1.4).
    ModeTransition {
        /// Previous mode.
        from: SystemMode,
        /// New mode.
        to: SystemMode,
        /// What drove the transition (scripted call vs detector).
        cause: TransitionCause,
    },
    /// A failure detector started suspecting a peer (raw, pre-damping).
    SuspicionRaised {
        /// The suspecting node.
        observer: NodeId,
        /// The node that fell silent.
        suspect: NodeId,
    },
    /// A failure detector heard from a suspected peer again.
    SuspicionCleared {
        /// The formerly suspecting node.
        observer: NodeId,
        /// The peer that came back.
        peer: NodeId,
    },
    /// A suspicion flip was absorbed by flap damping instead of being
    /// allowed to drive a view change (BGP-style route damping).
    FlapDamped {
        /// The flapping node.
        node: NodeId,
        /// Its decayed damping penalty after the flip (milli-units).
        penalty_milli: u64,
    },
    /// A detected partitioning survived the stabilizer's hysteresis
    /// window and was installed cluster-wide.
    ViewStabilized {
        /// Number of partitions in the stabilized view.
        partitions: u32,
        /// Size of the largest partition.
        largest: u32,
    },
    /// WAL replay found a torn tail: entries failing their checksum
    /// were truncated before the store was rebuilt.
    WalTruncated {
        /// The recovering node.
        node: NodeId,
        /// Entries dropped from the tail.
        truncated: u64,
    },
    /// Replica reconciliation (step 1 of the reconciliation phase)
    /// completed.
    ReconcileReplicaPhase {
        /// Missed updates propagated.
        missed_updates: u64,
        /// Write-write conflicts resolved.
        conflicts: u32,
        /// Virtual time the step took.
        duration_ns: u64,
    },
    /// Constraint reconciliation (step 2) completed.
    ReconcileConstraintPhase {
        /// Distinct threat identities re-evaluated.
        re_evaluated: u64,
        /// Threats found satisfied and removed.
        satisfied_removed: u64,
        /// Actual violations detected.
        violations: u64,
        /// Violations resolved by rollback search.
        resolved_by_rollback: u64,
        /// Violations resolved immediately by the handler.
        resolved_by_handler: u64,
        /// Violations deferred to later cleanup.
        deferred: u64,
        /// Threats postponed (partitions remain).
        postponed: u64,
        /// Threat identities skipped by the incremental engine (their
        /// objects were neither dirty nor newly checkable).
        skipped: u64,
        /// Virtual time the step took.
        duration_ns: u64,
    },
    /// The incremental reconciliation engine postponed a threat
    /// without re-evaluating it: none of its objects were in the dirty
    /// set and the threat was not yet fully checkable.
    ReconcileSkipped {
        /// Constraint name.
        constraint: String,
        /// Context object, if any.
        context: Option<String>,
    },
    /// Duplicate threat records were folded during degraded mode
    /// (`HistoryPolicy::Reduced`).
    ThreatCompaction {
        /// Duplicate records removed.
        folded: u64,
        /// Identities whose histories were folded.
        retained: u64,
    },
    /// A chaos-engine fault step was injected into the running cluster.
    ChaosFault {
        /// Zero-based step index within the fault plan.
        step: u32,
        /// Short, stable description of the fault (e.g. `crash(2)`).
        fault: String,
    },
    /// A node crashed: volatile state torn down, persistent log kept.
    NodeCrash {
        /// The crashed node.
        node: NodeId,
        /// Active transactions aborted by the crash.
        aborted_txs: u32,
        /// Prepared transactions left in doubt by the crash.
        in_doubt_txs: u32,
    },
    /// A crashed node restarted: log replayed, threats re-activated,
    /// node rejoined via GMS.
    NodeRestart {
        /// The restarted node.
        node: NodeId,
        /// Committed-state journal entries replayed.
        replayed_entries: u64,
        /// Persisted consistency threats re-activated (§5.5.1).
        reactivated_threats: u64,
    },
    /// A prepared transaction became in-doubt: its coordinator crashed
    /// between prepare and commit.
    TwoPcInDoubt {
        /// The in-doubt transaction.
        tx: TxId,
        /// The crashed coordinator.
        coordinator: NodeId,
    },
    /// An in-doubt transaction was resolved by the recovery protocol.
    TwoPcResolved {
        /// The transaction.
        tx: TxId,
        /// `true` when resolved by presumed abort; `false` when the
        /// restarted coordinator decided commit.
        presumed_abort: bool,
    },
    /// A validation batch was scheduled for deterministic (possibly
    /// parallel) evaluation. The shard/lane layout is a canonical
    /// function of the batch size alone — deliberately independent of
    /// the configured thread count, so same-seed traces stay
    /// byte-identical across `Serial` and `Threads(n)` runs.
    ValidationBatch {
        /// Constraint × object-group candidates in the batch.
        candidates: u32,
        /// Canonical work units the batch was split into.
        shards: u32,
        /// Canonical evaluation-lane count of the merge schedule
        /// (= shards; physical pool width never enters the trace).
        pool: u32,
    },
    /// A constraint expression was lowered to a flat program for the
    /// compiled validation engine.
    ConstraintCompiled {
        /// Constraint name.
        constraint: String,
        /// VM ops in the compiled program.
        ops: u32,
        /// Static reads (`self` fields + env keys) the program makes.
        reads: u32,
    },
    /// A validation candidate was answered from the verdict cache: the
    /// version of every object in its read-set was unchanged since the
    /// cached evaluation.
    VerdictCacheHit {
        /// Constraint name.
        constraint: String,
        /// Context object (display form `Class#key`).
        object: String,
    },
    /// A cacheable validation candidate missed the verdict cache and
    /// was evaluated in full.
    VerdictCacheMiss {
        /// Constraint name.
        constraint: String,
        /// Context object (display form `Class#key`).
        object: String,
    },
    /// Cached verdicts were dropped because their object was written,
    /// deleted, or resettled by reconciliation/restart.
    VerdictCacheInvalidate {
        /// The invalidated object (display form `Class#key`), or `"*"`
        /// for a whole-cache clear.
        object: String,
        /// Cache entries removed.
        entries: u32,
    },
    /// The request plane admitted a request into a per-node class
    /// queue.
    RequestAdmitted {
        /// Plane-wide request id (admission order).
        request: u64,
        /// The node whose plane admitted the request.
        node: NodeId,
        /// Priority class of the request.
        class: PriorityClass,
        /// Queue depth across all classes after admission.
        depth: u32,
    },
    /// The request plane refused a request at the admission gate; the
    /// caller sees a typed error and the request never queues.
    RequestRejected {
        /// Plane-wide request id (admission order).
        request: u64,
        /// The refusing node.
        node: NodeId,
        /// Priority class of the request.
        class: PriorityClass,
        /// Why admission was refused.
        reason: AdmissionReject,
    },
    /// An admitted request was dropped from its queue before it ran.
    RequestShed {
        /// Plane-wide request id (admission order).
        request: u64,
        /// The node that shed the request.
        node: NodeId,
        /// Priority class of the shed request.
        class: PriorityClass,
        /// Why the request was shed.
        cause: ShedCause,
    },
    /// An admitted request's virtual-time deadline expired while it
    /// was queued; it was dropped *before* execution.
    RequestDeadlineMissed {
        /// Plane-wide request id (admission order).
        request: u64,
        /// The node the request was queued on.
        node: NodeId,
        /// Priority class of the request.
        class: PriorityClass,
        /// Virtual time the request spent queued before expiry.
        waited_ns: u64,
    },
    /// An admitted request was dispatched and finished (its session
    /// closure ran to commit or returned an error).
    RequestCompleted {
        /// Plane-wide request id (admission order).
        request: u64,
        /// The executing node.
        node: NodeId,
        /// Priority class of the request.
        class: PriorityClass,
        /// Business outcome of the closure.
        outcome: InvocationOutcome,
        /// Virtual time spent queued before dispatch.
        queued_ns: u64,
        /// Virtual time the closure itself consumed.
        service_ns: u64,
    },
    /// A batch of cluster configuration deltas was applied atomically
    /// through `Cluster::reconfigure`.
    Reconfigure {
        /// Dotted paths of the fields that changed
        /// (e.g. `validation.parallelism`).
        changed: Vec<String>,
    },
    /// The replication ship path retried a backup install after an
    /// injected write failure, with exponential backoff.
    ReplicaShipRetry {
        /// The object being shipped.
        object: String,
        /// The faulty backup node.
        backup: NodeId,
        /// Attempts consumed (including the final one).
        attempts: u32,
        /// Total backoff charged, in abstract backoff units
        /// (1 + 2 + 4 + …).
        backoff_units: u64,
        /// Whether the install ultimately succeeded.
        succeeded: bool,
    },
    /// An in-doubt transaction timed out of the registry via the
    /// deadline path of `Cluster::resolve_in_doubt` (the coordinator
    /// never came back); `two_pc_resolved { presumed_abort: true }`
    /// follows immediately.
    InDoubtTimeout {
        /// The transaction that timed out.
        tx: TxId,
        /// The crashed coordinator it was waiting for.
        coordinator: NodeId,
        /// Virtual time past the presumed-abort deadline at
        /// resolution.
        overdue_ns: u64,
    },
    /// A federation router decision: `object` resolved to `shard` on
    /// the consistent-hash ring (or the sticky table).
    ShardRouted {
        /// The routed object (`Class#key`).
        object: String,
        /// The target shard.
        shard: u32,
        /// The target shard's system mode at routing time.
        mode: SystemMode,
        /// Whether the routing policy admitted the request
        /// (`false`: refused because the shard is degraded).
        admitted: bool,
    },
    /// One object's committed state moved between shards during an
    /// explicit federation rebalance.
    ShardMigrated {
        /// The migrated object (`Class#key`).
        object: String,
        /// The shard that gave the object up.
        from: u32,
        /// The shard that now owns it.
        to: u32,
        /// Replicas installed on the target shard.
        replicas: u64,
    },
    /// Every participant shard of a cross-shard transaction voted yes
    /// — the federation coordinator reached the commit decision point.
    #[serde(rename = "xshard_prepared")]
    XShardPrepared {
        /// Federation-wide transaction id.
        xtx: u64,
        /// Participant shards, in shard order.
        shards: Vec<u32>,
    },
    /// A cross-shard transaction finished: every participant committed,
    /// or every participant rolled back.
    #[serde(rename = "xshard_resolved")]
    XShardResolved {
        /// Federation-wide transaction id.
        xtx: u64,
        /// Whether the transaction committed on every shard.
        committed: bool,
        /// Whether an abort came from the federation-level
        /// presumed-abort recovery (coordinator crash + deadline)
        /// rather than an explicit abort or a failed prepare.
        presumed_abort: bool,
    },
}

impl TraceEvent {
    /// A short, stable name of the event kind (matches the serialized
    /// `kind` tag).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::InvocationStart { .. } => "invocation_start",
            TraceEvent::InvocationEnd { .. } => "invocation_end",
            TraceEvent::TriggerPoint { .. } => "trigger_point",
            TraceEvent::ConstraintValidated { .. } => "constraint_validated",
            TraceEvent::ThreatRecorded { .. } => "threat_recorded",
            TraceEvent::ThreatRejected { .. } => "threat_rejected",
            TraceEvent::TwoPc { .. } => "two_pc",
            TraceEvent::TxBegin { .. } => "tx_begin",
            TraceEvent::TxCommit { .. } => "tx_commit",
            TraceEvent::TxRollback { .. } => "tx_rollback",
            TraceEvent::ReplicationUpdate { .. } => "replication_update",
            TraceEvent::StalenessHit { .. } => "staleness_hit",
            TraceEvent::ViewChange { .. } => "view_change",
            TraceEvent::ModeTransition { .. } => "mode_transition",
            TraceEvent::SuspicionRaised { .. } => "suspicion_raised",
            TraceEvent::SuspicionCleared { .. } => "suspicion_cleared",
            TraceEvent::FlapDamped { .. } => "flap_damped",
            TraceEvent::ViewStabilized { .. } => "view_stabilized",
            TraceEvent::WalTruncated { .. } => "wal_truncated",
            TraceEvent::ReconcileReplicaPhase { .. } => "reconcile_replica_phase",
            TraceEvent::ReconcileConstraintPhase { .. } => "reconcile_constraint_phase",
            TraceEvent::ReconcileSkipped { .. } => "reconcile_skipped",
            TraceEvent::ThreatCompaction { .. } => "threat_compaction",
            TraceEvent::ChaosFault { .. } => "chaos_fault",
            TraceEvent::NodeCrash { .. } => "node_crash",
            TraceEvent::NodeRestart { .. } => "node_restart",
            TraceEvent::TwoPcInDoubt { .. } => "two_pc_in_doubt",
            TraceEvent::TwoPcResolved { .. } => "two_pc_resolved",
            TraceEvent::ValidationBatch { .. } => "validation_batch",
            TraceEvent::ConstraintCompiled { .. } => "constraint_compiled",
            TraceEvent::VerdictCacheHit { .. } => "verdict_cache_hit",
            TraceEvent::VerdictCacheMiss { .. } => "verdict_cache_miss",
            TraceEvent::VerdictCacheInvalidate { .. } => "verdict_cache_invalidate",
            TraceEvent::RequestAdmitted { .. } => "request_admitted",
            TraceEvent::RequestRejected { .. } => "request_rejected",
            TraceEvent::RequestShed { .. } => "request_shed",
            TraceEvent::RequestDeadlineMissed { .. } => "request_deadline_missed",
            TraceEvent::RequestCompleted { .. } => "request_completed",
            TraceEvent::Reconfigure { .. } => "reconfigure",
            TraceEvent::ReplicaShipRetry { .. } => "replica_ship_retry",
            TraceEvent::InDoubtTimeout { .. } => "in_doubt_timeout",
            TraceEvent::ShardRouted { .. } => "shard_routed",
            TraceEvent::ShardMigrated { .. } => "shard_migrated",
            TraceEvent::XShardPrepared { .. } => "xshard_prepared",
            TraceEvent::XShardResolved { .. } => "xshard_resolved",
        }
    }
}

/// One recorded event: a sequence number, a virtual timestamp and the
/// typed payload. Two identically-seeded runs produce identical record
/// streams (virtual time only — no wall clock anywhere).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic per-bus sequence number (0-based).
    pub seq: u64,
    /// Virtual time the event was emitted.
    pub at: SimTime,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_kind_tag() {
        let record = TraceRecord {
            seq: 7,
            at: SimTime::from_nanos(42),
            event: TraceEvent::ModeTransition {
                from: SystemMode::Healthy,
                to: SystemMode::Degraded,
                cause: TransitionCause::Scripted,
            },
        };
        let json = serde_json::to_string(&record).unwrap();
        assert!(json.contains("\"kind\":\"mode_transition\""), "{json}");
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back, record);
    }

    #[test]
    fn kind_matches_serde_tag() {
        let event = TraceEvent::StalenessHit {
            object: "Flight#F1".into(),
            node: NodeId(1),
        };
        let json = serde_json::to_value(&event).unwrap();
        assert_eq!(json["kind"], event.kind());
    }

    #[test]
    fn cost_breakdown_totals() {
        let cost = CostBreakdown {
            r1_application_ns: 1,
            r2_interception_ns: 2,
            r3_preparation_ns: 3,
            r4_repository_ns: 4,
            r5_checks_ns: 5,
        };
        assert_eq!(cost.total(), SimDuration::from_nanos(15));
    }
}
