//! # dedisys-replication
//!
//! The replication service (§4.3) — fault tolerance for node and link
//! failures, and the second key part of the adaptive-dependability
//! approach next to constraint consistency management.
//!
//! Four protocols are provided (selectable per cluster):
//!
//! * [`ProtocolKind::PrimaryBackup`] — classic primary/backup; writes
//!   blocked while the static primary is unreachable.
//! * [`ProtocolKind::PrimaryPartition`] — the primary-partition
//!   protocol \[RSB93\]: one partition (majority weight) continues
//!   normal operation, others are read-only.
//! * [`ProtocolKind::PrimaryPerPartition`] — **P4** \[BBG+06\]: a
//!   temporary primary is chosen per partition, so writes continue in
//!   *every* partition as long as the resulting consistency threats are
//!   acceptable. Objects are possibly stale in every partition.
//! * [`ProtocolKind::AdaptiveVoting`] — the quorum-based Adaptive
//!   Voting protocol: majority quorums in healthy mode, quorums adapted
//!   to the partition in degraded mode.
//!
//! The [`ReplicationManager`] implements placement (objects may be
//! replicated on all nodes or bound to a subset — the DTMS "strong
//! ownership" case), synchronous update propagation to reachable
//! backups, staleness/reachability predicates feeding the CCMgr's
//! LCC/NCC classification, degraded-mode write tracking with a state
//! [`dedisys_store::VersionHistory`] for rollback, and the *replica
//! reconciliation* half of the reconciliation phase (missed-update
//! propagation, write-write conflict detection, replica-consistency
//! handler callbacks — Figure 4.6).

mod manager;
mod protocol;
mod reconcile;

pub use manager::{PropagationReport, ReplStats, ReplicationManager, MAX_SHIP_ATTEMPTS};
pub use protocol::ProtocolKind;
pub use reconcile::{
    HighestVersionWins, ReconcileReport, ReplicaConflict, ReplicaConsistencyHandler,
};
