//! Replica reconciliation — the first half of the reconciliation phase
//! (Figure 4.6).
//!
//! After the GMS reports re-unification, missed updates are propagated
//! between the former partitions. Write-write conflicts (the same
//! object updated in two or more partitions) are handed to the
//! application-provided replica-consistency handler; the selected state
//! is then applied to all nodes.

use crate::manager::{history_key, ReplicationManager};
use dedisys_net::Topology;
use dedisys_object::{EntityContainer, EntityState};
use dedisys_types::{NodeId, ObjectId};
use std::collections::BTreeSet;

/// A write-write replica conflict: divergent states of the same logical
/// object from different partitions.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaConflict {
    /// The conflicted object.
    pub object: ObjectId,
    /// One candidate per partition: (representative node, its state —
    /// `None` when the partition deleted the object).
    pub candidates: Vec<(NodeId, Option<EntityState>)>,
}

/// Application callback producing a replica-consistent state for a
/// conflict (Figure 4.6, "replica consistency handler").
pub trait ReplicaConsistencyHandler {
    /// Chooses (or merges) the surviving state; `None` keeps the object
    /// deleted.
    fn resolve(&mut self, conflict: &ReplicaConflict) -> Option<EntityState>;
}

/// The generic default of §4.4: the replica with the most updates
/// (highest version) wins; a deletion only wins if no live state
/// exists.
#[derive(Debug, Clone, Copy, Default)]
pub struct HighestVersionWins;

impl ReplicaConsistencyHandler for HighestVersionWins {
    fn resolve(&mut self, conflict: &ReplicaConflict) -> Option<EntityState> {
        conflict
            .candidates
            .iter()
            .filter_map(|(_, state)| state.as_ref())
            .max_by_key(|s| s.version())
            .cloned()
    }
}

impl<F> ReplicaConsistencyHandler for F
where
    F: FnMut(&ReplicaConflict) -> Option<EntityState>,
{
    fn resolve(&mut self, conflict: &ReplicaConflict) -> Option<EntityState> {
        self(conflict)
    }
}

/// Outcome of replica reconciliation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReconcileReport {
    /// Conflicts detected and how they were resolved (forwarded to
    /// constraint reconciliation, §5.2: conflict details should be
    /// available there too).
    pub conflicts: Vec<(ReplicaConflict, Option<EntityState>)>,
    /// Objects whose (conflict-free) missed updates were propagated.
    pub missed_updates: u64,
    /// Point-to-point messages exchanged.
    pub messages: u64,
    /// The *dirty set*: objects whose committed state on at least one
    /// reachable replica actually changed during this reconciliation
    /// (missed-update install or conflict resolution). Incremental
    /// constraint reconciliation re-evaluates only threats touching
    /// these objects (plus newly checkable ones) instead of scanning
    /// every stored identity.
    pub dirty: BTreeSet<ObjectId>,
}

impl ReconcileReport {
    /// Objects that had write-write conflicts.
    pub fn conflicted_objects(&self) -> Vec<&ObjectId> {
        self.conflicts.iter().map(|(c, _)| &c.object).collect()
    }
}

impl ReplicationManager {
    /// Runs replica reconciliation over a (re-unified) topology.
    ///
    /// For every object written during degraded mode the per-partition
    /// states are compared: a single writer partition (or identical
    /// states) yields plain missed-update propagation; divergent states
    /// are resolved through `handler` and the result installed on every
    /// replica node. Degraded bookkeeping is consumed; the state
    /// history is retained for constraint reconciliation (rollback
    /// search) until [`ReplicationManager::clear_degraded_state`].
    ///
    /// # Panics
    ///
    /// Panics if called while the topology is still partitioned —
    /// callers must reconcile only after re-unification (partial
    /// re-unifications postpone, §3.3).
    pub fn reconcile_replicas(
        &mut self,
        topology: &Topology,
        containers: &mut [EntityContainer],
        handler: &mut dyn ReplicaConsistencyHandler,
    ) -> ReconcileReport {
        assert!(
            topology.is_healthy(),
            "replica reconciliation requires a re-unified topology"
        );
        self.reconcile_replicas_scoped(topology, NodeId(0), containers, handler)
    }

    /// Partial replica reconciliation after a *partial* re-unification
    /// (§3.3): only objects whose degraded-mode writer partitions are
    /// all reachable from `observer` are reconciled; the rest stay in
    /// the degraded bookkeeping until further partitions re-unify. If
    /// the object's replica set extends beyond the observer's
    /// partition, the merged state is installed locally and the object
    /// remains tracked as degraded (the unreachable side may still
    /// diverge).
    pub fn reconcile_replicas_scoped(
        &mut self,
        topology: &Topology,
        observer: NodeId,
        containers: &mut [EntityContainer],
        handler: &mut dyn ReplicaConsistencyHandler,
    ) -> ReconcileReport {
        let reachable = topology.partition_of(observer).clone();
        let mut report = ReconcileReport::default();
        let degraded = self.take_degraded_writes();
        let mut postponed = std::collections::BTreeMap::new();
        for (object, partitions) in degraded {
            // Split the writer partitions into those now reachable
            // from the observer and those still away.
            let (here, away): (
                std::collections::BTreeMap<u32, NodeId>,
                std::collections::BTreeMap<u32, NodeId>,
            ) = partitions
                .into_iter()
                .partition(|(_, rep)| reachable.contains(rep));
            if here.is_empty() {
                // Nothing of this object is reachable: postpone as is.
                postponed.insert(object, away);
                continue;
            }
            // Reconcile the reachable writers among each other — the
            // merged partition must agree internally even while other
            // partitions remain (P4 elects a temporary primary for it).
            self.reconcile_one(&object, &here, &reachable, containers, handler, &mut report);
            let fully_replicated_here = self
                .replicas_of(&object)
                .map(|set| set.iter().all(|r| reachable.contains(r)))
                .unwrap_or(true);
            if !away.is_empty() || !fully_replicated_here {
                // Keep tracking: unreachable writers may still diverge,
                // and replicas outside the partition missed the merge.
                let pkey = reachable.iter().next().expect("non-empty").0;
                let rep = *reachable
                    .iter()
                    .find(|n| self.replicas_of(&object).is_some_and(|set| set.contains(n)))
                    .unwrap_or(&observer);
                let mut remaining = away;
                remaining.insert(pkey, rep);
                postponed.insert(object, remaining);
            }
        }
        self.restore_degraded_writes(postponed);
        report
    }

    fn reconcile_one(
        &mut self,
        object: &ObjectId,
        partitions: &std::collections::BTreeMap<u32, NodeId>,
        reachable: &std::collections::BTreeSet<NodeId>,
        containers: &mut [EntityContainer],
        handler: &mut dyn ReplicaConsistencyHandler,
        report: &mut ReconcileReport,
    ) {
        let candidates: Vec<(NodeId, Option<EntityState>)> = partitions
            .values()
            .map(|&rep| {
                (
                    rep,
                    containers[rep.index()].committed_entity(object).cloned(),
                )
            })
            .collect();
        let distinct_states: Vec<&Option<EntityState>> = {
            let mut seen: Vec<&Option<EntityState>> = Vec::new();
            for (_, s) in &candidates {
                if !seen.contains(&s) {
                    seen.push(s);
                }
            }
            seen
        };
        let winner: Option<EntityState> = if distinct_states.len() <= 1 {
            // No conflict: a single partition wrote, or all wrote
            // identical states.
            report.missed_updates += 1;
            candidates.first().and_then(|(_, s)| s.clone())
        } else {
            self.count_conflict();
            let conflict = ReplicaConflict {
                object: object.clone(),
                candidates: candidates.clone(),
            };
            let resolved = handler.resolve(&conflict);
            report.conflicts.push((conflict, resolved.clone()));
            resolved
        };
        // Install the winner on every *reachable* replica node
        // (all of them after a full heal).
        let replicas: Vec<NodeId> = self
            .replicas_of(object)
            .map(|set| {
                set.iter()
                    .filter(|n| reachable.contains(n))
                    .copied()
                    .collect()
            })
            .unwrap_or_default();
        let messages = replicas.len().saturating_sub(1) as u64 * 2;
        report.messages += messages;
        self.count_missed_updates(1, messages);
        for node in replicas {
            // Dirty-set detection: the object only counts as dirty if
            // the install actually changes some replica's committed
            // state (an idempotent re-install is not a change).
            if containers[node.index()].committed_entity(object) != winner.as_ref() {
                report.dirty.insert(object.clone());
            }
            match &winner {
                Some(state) => containers[node.index()].install_committed(state.clone()),
                None => {
                    containers[node.index()].remove_committed(object);
                }
            }
        }
    }

    /// The recorded degraded-mode states of `object` in partition
    /// `pkey` (oldest first) — input to the rollback search of
    /// constraint reconciliation (§3.3).
    pub fn partition_history(&self, object: &ObjectId, pkey: u32) -> Vec<EntityState> {
        self.history()
            .chain(&history_key(object, pkey))
            .iter()
            .filter_map(|e| EntityState::from_json(&e.state).ok())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use dedisys_gms::NodeWeights;
    use dedisys_object::{AppDescriptor, ClassDescriptor};
    use dedisys_types::{SimTime, TxId, Value};

    fn app() -> AppDescriptor {
        AppDescriptor::new("t")
            .with_class(ClassDescriptor::new("Flight").with_field("sold", Value::Int(0)))
    }

    fn obj() -> ObjectId {
        ObjectId::new("Flight", "F1")
    }

    fn setup(n: u32) -> (ReplicationManager, Vec<EntityContainer>, Topology) {
        let mut m =
            ReplicationManager::new(ProtocolKind::PrimaryPerPartition, NodeWeights::uniform(n));
        m.register_object(obj(), (0..n).map(NodeId), NodeId(0))
            .unwrap();
        let mut cs: Vec<EntityContainer> = (0..n).map(|_| EntityContainer::new(&app())).collect();
        // Seed the object on every node (healthy-mode create).
        for (i, c) in cs.iter_mut().enumerate() {
            let tx = TxId::new(NodeId(i as u32), 500);
            let e = EntityState::for_class(&app(), &obj()).unwrap();
            c.create(tx, e).unwrap();
            c.commit(tx);
        }
        (m, cs, Topology::fully_connected(n))
    }

    fn write_on(
        m: &mut ReplicationManager,
        cs: &mut [EntityContainer],
        topo: &Topology,
        node: u32,
        sold: i64,
        seq: u64,
    ) {
        let tx = TxId::new(NodeId(node), seq);
        cs[node as usize]
            .write_field(tx, &obj(), "sold", Value::Int(sold), SimTime::ZERO)
            .unwrap();
        cs[node as usize].commit(tx);
        m.propagate_update(&obj(), NodeId(node), topo, cs, SimTime::ZERO);
    }

    #[test]
    fn single_partition_writes_propagate_without_conflict() {
        let (mut m, mut cs, mut topo) = setup(3);
        topo.split(&[&[0], &[1, 2]]);
        write_on(&mut m, &mut cs, &topo, 1, 7, 1);
        topo.heal();
        let report = m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
        assert!(report.conflicts.is_empty());
        assert_eq!(report.missed_updates, 1);
        assert_eq!(
            cs[0].committed_entity(&obj()).unwrap().field("sold"),
            &Value::Int(7)
        );
    }

    #[test]
    fn divergent_writes_conflict_and_highest_version_wins() {
        let (mut m, mut cs, mut topo) = setup(3);
        topo.split(&[&[0], &[1, 2]]);
        write_on(&mut m, &mut cs, &topo, 0, 5, 1); // version 1 in {0}
        write_on(&mut m, &mut cs, &topo, 1, 7, 1); // version 1 in {1,2}
        write_on(&mut m, &mut cs, &topo, 1, 8, 2); // version 2 in {1,2}
        topo.heal();
        let report = m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(m.stats().conflicts, 1);
        for c in &cs {
            assert_eq!(
                c.committed_entity(&obj()).unwrap().field("sold"),
                &Value::Int(8)
            );
        }
    }

    #[test]
    fn custom_handler_can_merge_states() {
        let (mut m, mut cs, mut topo) = setup(2);
        topo.split(&[&[0], &[1]]);
        write_on(&mut m, &mut cs, &topo, 0, 5, 1);
        write_on(&mut m, &mut cs, &topo, 1, 7, 1);
        topo.heal();
        // Additive merge: both partitions' sales count.
        let mut merger = |conflict: &ReplicaConflict| {
            let total: i64 = conflict
                .candidates
                .iter()
                .filter_map(|(_, s)| s.as_ref())
                .filter_map(|s| s.field("sold").as_int())
                .sum();
            let mut merged = conflict.candidates[0].1.clone().expect("live state");
            merged.set_field("sold", Value::Int(total), SimTime::ZERO);
            Some(merged)
        };
        let report = m.reconcile_replicas(&topo, &mut cs, &mut merger);
        assert_eq!(report.conflicts.len(), 1);
        assert_eq!(
            cs[1].committed_entity(&obj()).unwrap().field("sold"),
            &Value::Int(12)
        );
    }

    #[test]
    fn deletion_vs_update_conflict() {
        let (mut m, mut cs, mut topo) = setup(2);
        topo.split(&[&[0], &[1]]);
        // Partition {0} deletes, partition {1} updates.
        let tx = TxId::new(NodeId(0), 1);
        cs[0].delete(tx, &obj()).unwrap();
        cs[0].commit(tx);
        m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        write_on(&mut m, &mut cs, &topo, 1, 7, 1);
        topo.heal();
        let report = m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
        assert_eq!(report.conflicts.len(), 1);
        // HighestVersionWins prefers the live state.
        assert!(cs[0].committed_entity(&obj()).is_some());
    }

    #[test]
    fn dirty_set_reports_only_actually_changed_objects() {
        let (mut m, mut cs, mut topo) = setup(3);
        topo.split(&[&[0], &[1, 2]]);
        write_on(&mut m, &mut cs, &topo, 1, 7, 1);
        topo.heal();
        let report = m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
        // Node 0 missed the update: the object is dirty.
        assert!(report.dirty.contains(&obj()));
        assert_eq!(report.dirty.len(), 1);
        // A second reconciliation has no degraded writes left and must
        // report an empty dirty set.
        let report = m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
        assert!(report.dirty.is_empty());
    }

    #[test]
    fn history_supports_rollback_search() {
        let (mut m, mut cs, mut topo) = setup(2);
        topo.split(&[&[0], &[1]]);
        write_on(&mut m, &mut cs, &topo, 1, 7, 1);
        write_on(&mut m, &mut cs, &topo, 1, 9, 2);
        let states = m.partition_history(&obj(), 1);
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].field("sold"), &Value::Int(7));
        assert_eq!(states[1].field("sold"), &Value::Int(9));
        m.clear_degraded_state();
        assert!(m.partition_history(&obj(), 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "re-unified")]
    fn reconcile_requires_healthy_topology() {
        let (mut m, mut cs, mut topo) = setup(2);
        topo.split(&[&[0], &[1]]);
        m.reconcile_replicas(&topo, &mut cs, &mut HighestVersionWins);
    }
}
