//! Replication protocol selection and placement rules.

use dedisys_gms::NodeWeights;
use dedisys_net::Topology;
use dedisys_types::{Error, NodeId, ObjectId, Result};
use std::collections::BTreeSet;

/// The replication protocol in force.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtocolKind {
    /// Primary/backup: writes go to the static primary; blocked when it
    /// is unreachable.
    PrimaryBackup,
    /// Primary-partition \[RSB93\]: writes allowed only in the primary
    /// partition (majority weight; ties broken towards the partition
    /// containing the lowest node id).
    PrimaryPartition,
    /// Primary-per-partition (P4) \[BBG+06\]: every partition elects a
    /// temporary primary per object, trading consistency threats for
    /// availability.
    #[default]
    PrimaryPerPartition,
    /// Adaptive Voting: majority write quorums, adapted to the
    /// partition during degraded mode.
    AdaptiveVoting,
}

impl ProtocolKind {
    /// The node on which a write to `object` must execute for a request
    /// issued on `requester`, or an error if writes are blocked.
    ///
    /// `replicas` is the object's replica set, `primary` its static
    /// primary (always a member of `replicas`).
    ///
    /// # Errors
    ///
    /// * [`Error::ObjectUnreachable`] — no replica reachable.
    /// * [`Error::ModeRestriction`] — protocol blocks writes here.
    /// * [`Error::NoQuorum`] — voting quorum unavailable (strict mode).
    pub fn write_target(
        self,
        object: &ObjectId,
        requester: NodeId,
        replicas: &BTreeSet<NodeId>,
        primary: NodeId,
        topology: &Topology,
        weights: &NodeWeights,
    ) -> Result<NodeId> {
        let partition = topology.partition_of(requester);
        let reachable: BTreeSet<NodeId> = replicas.intersection(partition).copied().collect();
        if reachable.is_empty() {
            return Err(Error::ObjectUnreachable(object.clone()));
        }
        match self {
            ProtocolKind::PrimaryBackup => {
                if reachable.contains(&primary) {
                    Ok(primary)
                } else {
                    Err(Error::ModeRestriction(format!(
                        "primary {primary} of {object} unreachable under primary-backup"
                    )))
                }
            }
            ProtocolKind::PrimaryPartition => {
                if is_primary_partition(partition, topology, weights) {
                    // Normal operation: the static primary is preferred;
                    // if it crashed, the lowest reachable replica takes
                    // over.
                    Ok(if reachable.contains(&primary) {
                        primary
                    } else {
                        *reachable.iter().next().expect("non-empty")
                    })
                } else {
                    Err(Error::ModeRestriction(format!(
                        "writes to {object} blocked outside the primary partition"
                    )))
                }
            }
            ProtocolKind::PrimaryPerPartition => {
                // Static primary if reachable, otherwise the temporary
                // per-partition primary (lowest reachable replica).
                Ok(if reachable.contains(&primary) {
                    primary
                } else {
                    *reachable.iter().next().expect("non-empty")
                })
            }
            ProtocolKind::AdaptiveVoting => {
                let available = weights.partition_weight(&reachable);
                let required = weights.partition_weight(replicas) / 2 + 1;
                if topology.is_healthy() && available < required {
                    return Err(Error::NoQuorum {
                        object: object.clone(),
                        available,
                        required,
                    });
                }
                // Degraded mode: the quorum is adapted to the partition
                // (any reachable majority *of the partition's copies*),
                // accepting consistency threats.
                Ok(if reachable.contains(&primary) {
                    primary
                } else {
                    *reachable.iter().next().expect("non-empty")
                })
            }
        }
    }

    /// Whether a read of `object` on `requester` may observe stale
    /// state under the current topology (feeding LCC classification,
    /// §3.1).
    pub fn is_possibly_stale(
        self,
        requester: NodeId,
        replicas: &BTreeSet<NodeId>,
        primary: NodeId,
        topology: &Topology,
        weights: &NodeWeights,
    ) -> bool {
        if topology.is_healthy() {
            return false;
        }
        let partition = topology.partition_of(requester);
        let all_replicas_here = replicas.iter().all(|r| partition.contains(r));
        match self {
            // Primary-backup blocks writes elsewhere, so a copy is stale
            // only if the primary is in another partition (it may have
            // been updated there when the primary's partition is the
            // writable one). If the primary is reachable, reads are
            // authoritative.
            ProtocolKind::PrimaryBackup => !partition.contains(&primary),
            // Only the primary partition takes writes: every object
            // accessed in a non-primary partition is possibly stale
            // [RSB93].
            ProtocolKind::PrimaryPartition => !is_primary_partition(partition, topology, weights),
            // P4: a temporary primary may write in *any* partition, so
            // objects are possibly stale in every partition [BBG+06] —
            // unless every replica of the object lives in this
            // partition (no other partition holds a copy to diverge).
            ProtocolKind::PrimaryPerPartition | ProtocolKind::AdaptiveVoting => !all_replicas_here,
        }
    }
}

/// Whether `partition` is the primary partition: strictly more than
/// half the total weight, or exactly half and containing node 0 (tie
/// break).
fn is_primary_partition(
    partition: &BTreeSet<NodeId>,
    _topology: &Topology,
    weights: &NodeWeights,
) -> bool {
    let w = u64::from(weights.partition_weight(partition));
    let total = u64::from(weights.total());
    w * 2 > total || (w * 2 == total && partition.contains(&NodeId(0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicas(n: u32) -> BTreeSet<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn obj() -> ObjectId {
        ObjectId::new("Flight", "F1")
    }

    #[test]
    fn primary_backup_blocks_without_primary() {
        let mut topo = Topology::fully_connected(3);
        let w = NodeWeights::uniform(3);
        let p = ProtocolKind::PrimaryBackup;
        assert_eq!(
            p.write_target(&obj(), NodeId(2), &replicas(3), NodeId(0), &topo, &w),
            Ok(NodeId(0))
        );
        topo.split(&[&[0], &[1, 2]]);
        assert!(matches!(
            p.write_target(&obj(), NodeId(2), &replicas(3), NodeId(0), &topo, &w),
            Err(Error::ModeRestriction(_))
        ));
        // The primary's own partition still writes.
        assert_eq!(
            p.write_target(&obj(), NodeId(0), &replicas(3), NodeId(0), &topo, &w),
            Ok(NodeId(0))
        );
    }

    #[test]
    fn primary_partition_allows_majority_side_only() {
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0], &[1, 2]]);
        let w = NodeWeights::uniform(3);
        let p = ProtocolKind::PrimaryPartition;
        // Majority partition {1,2} writes (primary crashed -> lowest).
        assert_eq!(
            p.write_target(&obj(), NodeId(1), &replicas(3), NodeId(0), &topo, &w),
            Ok(NodeId(1))
        );
        // Minority partition {0} blocked.
        assert!(matches!(
            p.write_target(&obj(), NodeId(0), &replicas(3), NodeId(0), &topo, &w),
            Err(Error::ModeRestriction(_))
        ));
    }

    #[test]
    fn p4_writes_in_every_partition() {
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0], &[1, 2]]);
        let w = NodeWeights::uniform(3);
        let p = ProtocolKind::PrimaryPerPartition;
        assert_eq!(
            p.write_target(&obj(), NodeId(0), &replicas(3), NodeId(0), &topo, &w),
            Ok(NodeId(0))
        );
        // Temporary primary in {1,2} is the lowest reachable replica.
        assert_eq!(
            p.write_target(&obj(), NodeId(2), &replicas(3), NodeId(0), &topo, &w),
            Ok(NodeId(1))
        );
    }

    #[test]
    fn adaptive_voting_requires_quorum_only_when_healthy() {
        let w = NodeWeights::uniform(3);
        let p = ProtocolKind::AdaptiveVoting;
        let topo = Topology::fully_connected(3);
        // Healthy with all replicas reachable: fine.
        assert!(p
            .write_target(&obj(), NodeId(1), &replicas(3), NodeId(0), &topo, &w)
            .is_ok());
        // Degraded minority partition: quorum adapted, write allowed.
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0], &[1, 2]]);
        assert!(p
            .write_target(&obj(), NodeId(0), &replicas(3), NodeId(0), &topo, &w)
            .is_ok());
    }

    #[test]
    fn unreachable_object_with_bound_placement() {
        // DTMS-style: object only on nodes {0,1}.
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0, 1], &[2]]);
        let w = NodeWeights::uniform(3);
        let bound: BTreeSet<NodeId> = [NodeId(0), NodeId(1)].into();
        for p in [
            ProtocolKind::PrimaryBackup,
            ProtocolKind::PrimaryPerPartition,
            ProtocolKind::AdaptiveVoting,
        ] {
            assert!(matches!(
                p.write_target(&obj(), NodeId(2), &bound, NodeId(0), &topo, &w),
                Err(Error::ObjectUnreachable(_))
            ));
        }
    }

    #[test]
    fn staleness_per_protocol() {
        let mut topo = Topology::fully_connected(3);
        let w = NodeWeights::uniform(3);
        let all = replicas(3);
        // Healthy: nothing stale.
        assert!(!ProtocolKind::PrimaryPerPartition.is_possibly_stale(
            NodeId(1),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        topo.split(&[&[0], &[1, 2]]);
        // Primary-backup: stale only away from the primary.
        assert!(!ProtocolKind::PrimaryBackup.is_possibly_stale(
            NodeId(0),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        assert!(ProtocolKind::PrimaryBackup.is_possibly_stale(
            NodeId(1),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        // Primary-partition: stale only in the minority partition.
        assert!(ProtocolKind::PrimaryPartition.is_possibly_stale(
            NodeId(0),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        assert!(!ProtocolKind::PrimaryPartition.is_possibly_stale(
            NodeId(1),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        // P4: stale in every partition.
        assert!(ProtocolKind::PrimaryPerPartition.is_possibly_stale(
            NodeId(0),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
        assert!(ProtocolKind::PrimaryPerPartition.is_possibly_stale(
            NodeId(2),
            &all,
            NodeId(0),
            &topo,
            &w
        ));
    }

    #[test]
    fn p4_not_stale_when_all_replicas_local() {
        // Object bound to {1,2}, both in the same partition: no other
        // partition can diverge it.
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0], &[1, 2]]);
        let w = NodeWeights::uniform(3);
        let bound: BTreeSet<NodeId> = [NodeId(1), NodeId(2)].into();
        assert!(!ProtocolKind::PrimaryPerPartition.is_possibly_stale(
            NodeId(1),
            &bound,
            NodeId(1),
            &topo,
            &w
        ));
    }
}
