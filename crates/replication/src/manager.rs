//! The replication manager: placement, propagation, staleness and
//! degraded-mode tracking.

use crate::ProtocolKind;
use dedisys_gms::NodeWeights;
use dedisys_net::Topology;
use dedisys_object::EntityContainer;
use dedisys_store::VersionHistory;
use dedisys_telemetry::{Telemetry, TraceEvent};
use dedisys_types::{Error, NodeId, ObjectId, Result, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Placement of one logical object.
#[derive(Debug, Clone)]
struct Placement {
    replicas: BTreeSet<NodeId>,
    primary: NodeId,
}

/// Upper bound on install attempts per backup on the ship path (one
/// initial try plus bounded retries with exponential backoff).
pub const MAX_SHIP_ATTEMPTS: u32 = 4;

/// Result of one synchronous update propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropagationReport {
    /// Backups the update reached (excluding the executing node).
    pub recipients: Vec<NodeId>,
    /// Point-to-point messages exchanged (update + confirmation per
    /// recipient — the protocol propagates synchronously, §4.3).
    pub messages: u64,
    /// Install retries performed after injected write failures.
    pub retries: u64,
    /// Total exponential-backoff units waited (1 + 2 + 4 + … per
    /// retried backup).
    pub backoff_units: u64,
    /// Backups that could not be reached within the retry budget (or
    /// were skipped due to injected replica lag); they are recorded as
    /// degraded writes so reconciliation converges them later.
    pub failed: Vec<NodeId>,
}

/// Counters kept by the manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplStats {
    /// Updates propagated (create/write/delete commits).
    pub propagations: u64,
    /// Point-to-point messages sent for propagation.
    pub messages: u64,
    /// Writes executed while the system was degraded.
    pub degraded_writes: u64,
    /// Write-write conflicts detected during reconciliation.
    pub conflicts: u64,
    /// Missed updates pushed during reconciliation.
    pub missed_updates: u64,
    /// Backup installs retried after injected write failures.
    pub ship_retries: u64,
    /// Backup installs abandoned after exhausting the retry budget.
    pub ship_failures: u64,
    /// Propagations skipped on a backup due to injected replica lag.
    pub lagged_skips: u64,
}

/// The replication service of a cluster.
///
/// Owns placement metadata and degraded-mode bookkeeping; entity state
/// itself lives in the per-node [`EntityContainer`]s, which the manager
/// writes through during propagation.
#[derive(Debug)]
pub struct ReplicationManager {
    protocol: ProtocolKind,
    weights: NodeWeights,
    placements: HashMap<ObjectId, Placement>,
    /// Objects written during degraded mode: object → (partition key →
    /// representative node of that partition).
    degraded_writes: BTreeMap<ObjectId, BTreeMap<u32, NodeId>>,
    /// Intermediate states applied during degraded mode, keyed
    /// `object|partition`, enabling rollback during reconciliation.
    history: VersionHistory,
    /// Injected store write-failure windows: remaining failing install
    /// attempts per backup node (chaos engine fault).
    write_faults: BTreeMap<NodeId, u32>,
    /// Injected replica lag: number of upcoming propagations each
    /// backup node silently misses (chaos engine fault).
    lag: BTreeMap<NodeId, u32>,
    stats: ReplStats,
    telemetry: Option<Telemetry>,
}

impl ReplicationManager {
    /// Creates a manager for `protocol` with per-node `weights`.
    pub fn new(protocol: ProtocolKind, weights: NodeWeights) -> Self {
        Self {
            protocol,
            weights,
            placements: HashMap::new(),
            degraded_writes: BTreeMap::new(),
            history: VersionHistory::new(),
            write_faults: BTreeMap::new(),
            lag: BTreeMap::new(),
            stats: ReplStats::default(),
            telemetry: None,
        }
    }

    /// Injects a store write-failure window on `node`: the next
    /// `failures` backup-install attempts on that node fail, forcing
    /// the ship path into bounded retry with exponential backoff.
    pub fn inject_write_fault(&mut self, node: NodeId, failures: u32) {
        if failures > 0 {
            *self.write_faults.entry(node).or_insert(0) += failures;
        }
    }

    /// Injects replica lag on `node`: the next `updates` propagations
    /// skip that backup entirely; the missed states are recorded as
    /// degraded writes so reconciliation converges the replica later.
    pub fn inject_replica_lag(&mut self, node: NodeId, updates: u32) {
        if updates > 0 {
            *self.lag.entry(node).or_insert(0) += updates;
        }
    }

    /// Remaining injected write failures on `node`.
    pub fn pending_write_faults(&self, node: NodeId) -> u32 {
        self.write_faults.get(&node).copied().unwrap_or(0)
    }

    /// Remaining injected lag window on `node`.
    pub fn pending_lag(&self, node: NodeId) -> u32 {
        self.lag.get(&node).copied().unwrap_or(0)
    }

    /// Wires a telemetry bus; `replication_update` and `staleness_hit`
    /// events are emitted from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    /// The protocol in force.
    pub fn protocol(&self) -> ProtocolKind {
        self.protocol
    }

    /// The node weights.
    pub fn weights(&self) -> &NodeWeights {
        &self.weights
    }

    /// Accumulated counters.
    pub fn stats(&self) -> ReplStats {
        self.stats
    }

    /// Switches between full and reduced degraded-mode history
    /// (the fig5-8 ablation).
    pub fn set_reduced_history(&mut self, reduced: bool) {
        self.history = if reduced {
            VersionHistory::reduced()
        } else {
            VersionHistory::new()
        };
    }

    /// Whether the degraded-mode history is reduced (latest state
    /// only).
    pub fn reduced_history(&self) -> bool {
        !self.history.is_full_history()
    }

    /// The degraded-mode state history.
    pub fn history(&self) -> &VersionHistory {
        &self.history
    }

    /// Registers `object` with the given replica set and primary.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if `primary` is not in `replicas` or
    /// the replica set is empty.
    pub fn register_object(
        &mut self,
        object: ObjectId,
        replicas: impl IntoIterator<Item = NodeId>,
        primary: NodeId,
    ) -> Result<()> {
        let replicas: BTreeSet<NodeId> = replicas.into_iter().collect();
        if replicas.is_empty() {
            return Err(Error::Config(format!("{object}: empty replica set")));
        }
        if !replicas.contains(&primary) {
            return Err(Error::Config(format!(
                "{object}: primary {primary} not in replica set"
            )));
        }
        self.placements
            .insert(object, Placement { replicas, primary });
        Ok(())
    }

    /// Removes placement metadata (after a propagated delete).
    pub fn unregister_object(&mut self, object: &ObjectId) {
        self.placements.remove(object);
    }

    /// The replica set of `object`, if registered.
    pub fn replicas_of(&self, object: &ObjectId) -> Option<&BTreeSet<NodeId>> {
        self.placements.get(object).map(|p| &p.replicas)
    }

    /// The static primary of `object`, if registered.
    pub fn primary_of(&self, object: &ObjectId) -> Option<NodeId> {
        self.placements.get(object).map(|p| p.primary)
    }

    /// The node a write to `object` must execute on (§4.3).
    ///
    /// # Errors
    ///
    /// See [`ProtocolKind::write_target`]; unregistered objects execute
    /// locally.
    pub fn write_target(
        &self,
        object: &ObjectId,
        requester: NodeId,
        topology: &Topology,
    ) -> Result<NodeId> {
        match self.placements.get(object) {
            None => Ok(requester),
            Some(p) => self.protocol.write_target(
                object,
                requester,
                &p.replicas,
                p.primary,
                topology,
                &self.weights,
            ),
        }
    }

    /// Whether a read of `object` on `requester` may be stale (LCC).
    pub fn is_possibly_stale(
        &self,
        object: &ObjectId,
        requester: NodeId,
        topology: &Topology,
    ) -> bool {
        let stale = self.is_possibly_stale_quiet(object, requester, topology);
        if stale {
            if let Some(t) = &self.telemetry {
                t.metrics().incr("replication.staleness_hits");
                t.emit(|| TraceEvent::StalenessHit {
                    object: object.to_string(),
                    node: requester,
                });
            }
        }
        stale
    }

    /// Staleness probe without telemetry: same predicate as
    /// [`ReplicationManager::is_possibly_stale`], but intended for
    /// *planning* decisions (e.g. the incremental reconciler's skip
    /// check) that must not pollute the `staleness_hit` trace stream
    /// reserved for actual validation reads.
    pub fn is_possibly_stale_quiet(
        &self,
        object: &ObjectId,
        requester: NodeId,
        topology: &Topology,
    ) -> bool {
        match self.placements.get(object) {
            None => false,
            Some(p) => self.protocol.is_possibly_stale(
                requester,
                &p.replicas,
                p.primary,
                topology,
                &self.weights,
            ),
        }
    }

    /// Whether `object` still has unreconciled degraded-mode writes
    /// (its committed state may change once the remaining writer
    /// partitions become reachable).
    pub fn is_degraded_tracked(&self, object: &ObjectId) -> bool {
        self.degraded_writes.contains_key(object)
    }

    /// Whether any replica of `object` is reachable from `requester`
    /// (false ⇒ NCC / uncheckable).
    pub fn is_reachable(&self, object: &ObjectId, requester: NodeId, topology: &Topology) -> bool {
        match self.placements.get(object) {
            None => true,
            Some(p) => {
                let partition = topology.partition_of(requester);
                p.replicas.iter().any(|r| partition.contains(r))
            }
        }
    }

    /// Synchronously propagates the committed state of `object` from
    /// `executed_on` to every reachable backup replica, recording
    /// degraded-mode bookkeeping when partitions are present.
    ///
    /// Injected faults harden the ship path: a backup inside a *write-
    /// failure window* (see [`ReplicationManager::inject_write_fault`])
    /// rejects installs, which are retried up to [`MAX_SHIP_ATTEMPTS`]
    /// times with exponential backoff (1, 2, 4, … units); a *lagged*
    /// backup ([`ReplicationManager::inject_replica_lag`]) silently
    /// misses the propagation. Backups that miss the update either way
    /// are recorded as degraded writes so the reconciliation phase
    /// converges them once the fault clears.
    pub fn propagate_update(
        &mut self,
        object: &ObjectId,
        executed_on: NodeId,
        topology: &Topology,
        containers: &mut [EntityContainer],
        now: SimTime,
    ) -> PropagationReport {
        self.stats.propagations += 1;
        let state = containers[executed_on.index()]
            .committed_entity(object)
            .cloned();
        let candidates = self.reachable_backups(object, executed_on, topology);
        let mut recipients = Vec::new();
        let mut failed = Vec::new();
        let mut messages = 0u64;
        let mut retries = 0u64;
        let mut backoff_units = 0u64;
        for r in candidates {
            // Replica lag: the backup misses this propagation entirely.
            if let Some(remaining) = self.lag.get_mut(&r) {
                *remaining -= 1;
                if *remaining == 0 {
                    self.lag.remove(&r);
                }
                self.stats.lagged_skips += 1;
                failed.push(r);
                continue;
            }
            // Store write-failure window: attempts fail while fault
            // budget remains; retry with exponential backoff, bounded.
            let faults = self.write_faults.get(&r).copied().unwrap_or(0);
            let failing = faults.min(MAX_SHIP_ATTEMPTS);
            if failing > 0 {
                let left = self.write_faults.get_mut(&r).expect("fault entry");
                *left -= failing;
                if *left == 0 {
                    self.write_faults.remove(&r);
                }
                // One message per failed attempt (update sent, no
                // confirmation), backoff doubling before each retry.
                messages += u64::from(failing);
                let node_retries = u64::from(failing.min(MAX_SHIP_ATTEMPTS - 1));
                retries += node_retries;
                self.stats.ship_retries += node_retries;
                let node_backoff = (1u64 << node_retries) - 1;
                backoff_units += node_backoff;
                let succeeded = failing < MAX_SHIP_ATTEMPTS;
                if let Some(t) = &self.telemetry {
                    t.metrics().add("replication.ship_retries", node_retries);
                    t.emit(|| TraceEvent::ReplicaShipRetry {
                        object: object.to_string(),
                        backup: r,
                        attempts: failing + u32::from(succeeded),
                        backoff_units: node_backoff,
                        succeeded,
                    });
                }
                if !succeeded {
                    self.stats.ship_failures += 1;
                    failed.push(r);
                    continue;
                }
            }
            match &state {
                Some(state) => containers[r.index()].install_committed(state.clone()),
                // The object was deleted on the executing node.
                None => {
                    containers[r.index()].remove_committed(object);
                }
            }
            messages += 2; // update + confirmation
            recipients.push(r);
        }
        self.stats.messages += messages;
        let degraded = !topology.is_healthy();
        if let Some(t) = &self.telemetry {
            t.metrics().incr("replication.propagations");
            t.metrics().add("replication.messages", messages);
            t.emit(|| TraceEvent::ReplicationUpdate {
                object: object.to_string(),
                from: executed_on,
                recipients: recipients.len() as u32,
                messages,
                degraded,
            });
        }

        if !topology.is_healthy() || !failed.is_empty() {
            self.stats.degraded_writes += 1;
            let pkey = partition_key(executed_on, topology);
            self.degraded_writes
                .entry(object.clone())
                .or_default()
                .insert(pkey, executed_on);
            if let Some(state) = &state {
                let key = history_key(object, pkey);
                if let Ok(json) = state.to_json() {
                    self.history.record(key, state.version(), json, now);
                }
            }
        }
        PropagationReport {
            recipients,
            messages,
            retries,
            backoff_units,
            failed,
        }
    }

    /// Objects written in at least one partition during degraded mode,
    /// with the per-partition representative nodes.
    pub fn degraded_write_map(&self) -> &BTreeMap<ObjectId, BTreeMap<u32, NodeId>> {
        &self.degraded_writes
    }

    /// Takes the degraded-write map (used by replica reconciliation).
    pub(crate) fn take_degraded_writes(&mut self) -> BTreeMap<ObjectId, BTreeMap<u32, NodeId>> {
        std::mem::take(&mut self.degraded_writes)
    }

    /// Puts postponed entries back (partial reconciliation, §3.3).
    pub(crate) fn restore_degraded_writes(
        &mut self,
        entries: BTreeMap<ObjectId, BTreeMap<u32, NodeId>>,
    ) {
        for (object, partitions) in entries {
            self.degraded_writes
                .entry(object)
                .or_default()
                .extend(partitions);
        }
    }

    pub(crate) fn count_conflict(&mut self) {
        self.stats.conflicts += 1;
        if let Some(t) = &self.telemetry {
            t.metrics().incr("reconcile.conflicts");
        }
    }

    pub(crate) fn count_missed_updates(&mut self, n: u64, messages: u64) {
        self.stats.missed_updates += n;
        self.stats.messages += messages;
        if let Some(t) = &self.telemetry {
            t.metrics().add("reconcile.missed_updates", n);
            t.metrics().add("replication.messages", messages);
        }
    }

    /// Clears degraded-mode bookkeeping (after reconciliation
    /// completes).
    pub fn clear_degraded_state(&mut self) {
        self.degraded_writes.clear();
        self.history.clear();
    }

    fn reachable_backups(
        &self,
        object: &ObjectId,
        executed_on: NodeId,
        topology: &Topology,
    ) -> Vec<NodeId> {
        let partition = topology.partition_of(executed_on);
        match self.placements.get(object) {
            None => Vec::new(),
            Some(p) => p
                .replicas
                .iter()
                .filter(|&&r| r != executed_on && partition.contains(&r))
                .copied()
                .collect(),
        }
    }
}

/// Partition key: the lowest node id in the partition.
pub(crate) fn partition_key(node: NodeId, topology: &Topology) -> u32 {
    topology
        .partition_of(node)
        .iter()
        .next()
        .expect("partitions are non-empty")
        .0
}

/// History key for an object's states in one partition.
pub(crate) fn history_key(object: &ObjectId, pkey: u32) -> String {
    format!("{object}|p{pkey}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
    use dedisys_types::{TxId, Value};

    fn app() -> AppDescriptor {
        AppDescriptor::new("t")
            .with_class(ClassDescriptor::new("Flight").with_field("seats", Value::Int(0)))
    }

    fn containers(n: usize) -> Vec<EntityContainer> {
        (0..n).map(|_| EntityContainer::new(&app())).collect()
    }

    fn obj() -> ObjectId {
        ObjectId::new("Flight", "F1")
    }

    fn mgr(n: u32) -> ReplicationManager {
        let mut m =
            ReplicationManager::new(ProtocolKind::PrimaryPerPartition, NodeWeights::uniform(n));
        m.register_object(obj(), (0..n).map(NodeId), NodeId(0))
            .unwrap();
        m
    }

    fn seed(containers: &mut [EntityContainer], node: usize, seats: i64) {
        let tx = TxId::new(NodeId(node as u32), 999);
        let mut e = EntityState::for_class(&app(), &obj()).unwrap();
        e.set_field("seats", Value::Int(seats), SimTime::ZERO);
        containers[node].create(tx, e).unwrap();
        containers[node].commit(tx);
    }

    #[test]
    fn propagation_installs_on_reachable_backups() {
        let mut m = mgr(3);
        let topo = Topology::fully_connected(3);
        let mut cs = containers(3);
        seed(&mut cs, 0, 80);
        let report = m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert_eq!(report.recipients, vec![NodeId(1), NodeId(2)]);
        assert_eq!(report.messages, 4);
        assert_eq!(
            cs[2].committed_entity(&obj()).unwrap().field("seats"),
            &Value::Int(80)
        );
        assert!(m.degraded_write_map().is_empty(), "healthy: no tracking");
    }

    #[test]
    fn degraded_propagation_is_tracked_with_history() {
        let mut m = mgr(3);
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0], &[1, 2]]);
        let mut cs = containers(3);
        seed(&mut cs, 1, 70);
        let report = m.propagate_update(&obj(), NodeId(1), &topo, &mut cs, SimTime::ZERO);
        assert_eq!(report.recipients, vec![NodeId(2)]);
        assert_eq!(m.degraded_write_map().len(), 1);
        assert_eq!(m.stats().degraded_writes, 1);
        assert_eq!(m.history().total_entries(), 1);
    }

    #[test]
    fn delete_propagates_as_removal() {
        let mut m = mgr(2);
        let topo = Topology::fully_connected(2);
        let mut cs = containers(2);
        seed(&mut cs, 0, 1);
        m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert!(cs[1].committed_entity(&obj()).is_some());
        // Delete on node 0, then propagate.
        let tx = TxId::new(NodeId(0), 1000);
        cs[0].delete(tx, &obj()).unwrap();
        cs[0].commit(tx);
        m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert!(cs[1].committed_entity(&obj()).is_none());
    }

    #[test]
    fn write_fault_window_retries_with_backoff() {
        let mut m = mgr(2);
        let topo = Topology::fully_connected(2);
        let mut cs = containers(2);
        seed(&mut cs, 0, 80);
        m.inject_write_fault(NodeId(1), 2); // two failures, then success
        let report = m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert_eq!(report.recipients, vec![NodeId(1)]);
        assert_eq!(report.retries, 2);
        assert_eq!(report.backoff_units, 3); // 1 + 2
        assert!(report.failed.is_empty());
        assert_eq!(m.stats().ship_retries, 2);
        assert_eq!(
            cs[1].committed_entity(&obj()).unwrap().field("seats"),
            &Value::Int(80)
        );
        assert_eq!(m.pending_write_faults(NodeId(1)), 0);
    }

    #[test]
    fn exhausted_retry_budget_defers_to_reconciliation() {
        let mut m = mgr(2);
        let topo = Topology::fully_connected(2);
        let mut cs = containers(2);
        seed(&mut cs, 0, 80);
        m.inject_write_fault(NodeId(1), 10);
        let report = m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert!(report.recipients.is_empty());
        assert_eq!(report.failed, vec![NodeId(1)]);
        assert_eq!(m.stats().ship_failures, 1);
        assert!(cs[1].committed_entity(&obj()).is_none());
        assert!(
            m.is_degraded_tracked(&obj()),
            "missed install tracked for reconciliation"
        );
        // One bounded burst of MAX_SHIP_ATTEMPTS consumed.
        assert_eq!(m.pending_write_faults(NodeId(1)), 10 - MAX_SHIP_ATTEMPTS);
    }

    #[test]
    fn replica_lag_skips_backup_until_window_closes() {
        let mut m = mgr(3);
        let topo = Topology::fully_connected(3);
        let mut cs = containers(3);
        seed(&mut cs, 0, 80);
        m.inject_replica_lag(NodeId(2), 1);
        let report = m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert_eq!(report.recipients, vec![NodeId(1)]);
        assert_eq!(report.failed, vec![NodeId(2)]);
        assert_eq!(m.stats().lagged_skips, 1);
        assert!(cs[2].committed_entity(&obj()).is_none());
        assert!(m.is_degraded_tracked(&obj()));
        // Window consumed: the next propagation reaches node 2 again.
        let report = m.propagate_update(&obj(), NodeId(0), &topo, &mut cs, SimTime::ZERO);
        assert!(report.failed.is_empty());
        assert!(cs[2].committed_entity(&obj()).is_some());
    }

    #[test]
    fn placement_validation() {
        let mut m = ReplicationManager::new(ProtocolKind::PrimaryBackup, NodeWeights::uniform(2));
        assert!(m.register_object(obj(), [], NodeId(0)).is_err());
        assert!(m.register_object(obj(), [NodeId(1)], NodeId(0)).is_err());
        assert!(m.register_object(obj(), [NodeId(0)], NodeId(0)).is_ok());
    }

    #[test]
    fn reachability_with_bound_placement() {
        let mut m =
            ReplicationManager::new(ProtocolKind::PrimaryPerPartition, NodeWeights::uniform(3));
        m.register_object(obj(), [NodeId(0), NodeId(1)], NodeId(0))
            .unwrap();
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0, 1], &[2]]);
        assert!(m.is_reachable(&obj(), NodeId(0), &topo));
        assert!(!m.is_reachable(&obj(), NodeId(2), &topo));
    }

    #[test]
    fn unregistered_objects_are_local() {
        let m = ReplicationManager::new(ProtocolKind::PrimaryPerPartition, NodeWeights::uniform(2));
        let topo = Topology::fully_connected(2);
        assert_eq!(m.write_target(&obj(), NodeId(1), &topo), Ok(NodeId(1)));
        assert!(!m.is_possibly_stale(&obj(), NodeId(1), &topo));
        assert!(m.is_reachable(&obj(), NodeId(1), &topo));
    }
}
