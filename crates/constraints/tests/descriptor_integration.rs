//! Integration: a full deployment descriptor exercising every
//! constraint kind, preparation kind and negotiation metadata, resolved
//! and validated end to end against a `MapAccess` world.

use dedisys_constraints::{
    ConstraintConfigSet, ConstraintKind, ConstraintPriority, ImplRegistry, MapAccess,
    ValidationContext,
};
use dedisys_types::{ObjectId, SatisfactionDegree, Value};
use std::sync::Arc;

const DESCRIPTOR: &str = r#"{
  "constraints": [
    {
      "name": "OrderTotalNonNegative",
      "type": "HARD",
      "priority": "RELAXABLE",
      "minSatisfactionDegree": "POSSIBLY_SATISFIED",
      "contextClass": "Order",
      "intraObject": true,
      "expr": "self.total >= 0",
      "affectedMethods": [
        { "class": "Order", "method": "setTotal" }
      ]
    },
    {
      "name": "OrderWithinCredit",
      "type": "SOFT",
      "priority": "RELAXABLE",
      "minSatisfactionDegree": "UNCHECKABLE",
      "contextClass": "Order",
      "expr": "self.total <= self.customer.creditLimit",
      "affectedMethods": [
        { "class": "Order", "method": "setTotal",
          "preparation": { "kind": "calledObject" } },
        { "class": "Customer", "method": "setCreditLimit",
          "preparation": { "kind": "referenceField", "field": "lastOrder" } }
      ],
      "freshness": [ { "class": "Customer", "maxAge": 3 } ]
    },
    {
      "name": "PositiveAmountArgument",
      "type": "PRE",
      "contextClass": "Order",
      "expr": "arg(0) > 0",
      "affectedMethods": [ { "class": "Order", "method": "addItem" } ]
    },
    {
      "name": "TotalIncreasedByAmount",
      "type": "POST",
      "contextClass": "Order",
      "expr": "result() >= arg(0)",
      "affectedMethods": [ { "class": "Order", "method": "addItem" } ]
    },
    {
      "name": "AuditTrailPresent",
      "type": "ASYNC",
      "priority": "RELAXABLE",
      "contextObject": false,
      "expr": "count(\"Order\") >= 0",
      "affectedMethods": [ { "class": "Order", "method": "setTotal",
        "preparation": { "kind": "none" } } ]
    },
    {
      "name": "HandRolled",
      "type": "HARD",
      "implementation": "HandRolled",
      "contextClass": "Order",
      "affectedMethods": [ { "class": "Order", "method": "setTotal" } ]
    }
  ]
}"#;

fn world() -> (MapAccess, ObjectId, ObjectId) {
    let order = ObjectId::new("Order", "O1");
    let customer = ObjectId::new("Customer", "C1");
    let mut w = MapAccess::new();
    w.put_field(&order, "total", Value::Int(250));
    w.put_field(&order, "customer", Value::Ref(customer.clone()));
    w.put_field(&customer, "creditLimit", Value::Int(1000));
    w.put_field(&customer, "lastOrder", Value::Ref(order.clone()));
    (w, order, customer)
}

#[test]
fn full_descriptor_resolves_with_all_kinds() {
    let set = ConstraintConfigSet::from_json(DESCRIPTOR).unwrap();
    let mut impls = ImplRegistry::new();
    impls.register(
        "HandRolled",
        Arc::new(|ctx: &mut ValidationContext<'_>| {
            Ok(ctx.self_field("total")?.as_int().unwrap_or(0) % 5 == 0)
        }),
    );
    let constraints = set.resolve(&impls).unwrap();
    assert_eq!(constraints.len(), 6);

    let kinds: Vec<ConstraintKind> = constraints.iter().map(|c| c.meta.kind).collect();
    assert!(kinds.contains(&ConstraintKind::HardInvariant));
    assert!(kinds.contains(&ConstraintKind::SoftInvariant));
    assert!(kinds.contains(&ConstraintKind::AsyncInvariant));
    assert!(kinds.contains(&ConstraintKind::Precondition));
    assert!(kinds.contains(&ConstraintKind::Postcondition));

    let credit = constraints
        .iter()
        .find(|c| c.name().as_str() == "OrderWithinCredit")
        .unwrap();
    assert_eq!(credit.meta.priority, ConstraintPriority::Tradeable);
    assert_eq!(
        credit.meta.min_satisfaction_degree,
        SatisfactionDegree::Uncheckable
    );
    assert_eq!(credit.meta.freshness.len(), 1);
    assert_eq!(credit.affected_methods.len(), 2);
}

#[test]
fn resolved_constraints_validate_against_the_world() {
    let set = ConstraintConfigSet::from_json(DESCRIPTOR).unwrap();
    let mut impls = ImplRegistry::new();
    impls.register(
        "HandRolled",
        Arc::new(|ctx: &mut ValidationContext<'_>| {
            Ok(ctx.self_field("total")?.as_int().unwrap_or(0) % 5 == 0)
        }),
    );
    let constraints = set.resolve(&impls).unwrap();
    let (mut w, order, _) = world();

    for c in &constraints {
        if !c.meta.kind.is_invariant() {
            continue;
        }
        let ctx_obj = if c.meta.needs_context_object {
            Some(order.clone())
        } else {
            None
        };
        let mut ctx = match ctx_obj {
            Some(id) => ValidationContext::for_invariant(id, &mut w),
            None => ValidationContext::for_query(&mut w),
        };
        assert_eq!(
            c.implementation.validate(&mut ctx),
            Ok(true),
            "{}",
            c.name()
        );
    }
}

#[test]
fn cross_class_trigger_reaches_the_context_via_the_reference() {
    let set = ConstraintConfigSet::from_json(DESCRIPTOR).unwrap();
    let mut impls = ImplRegistry::new();
    impls.register(
        "HandRolled",
        Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
    );
    let constraints = set.resolve(&impls).unwrap();
    let credit = constraints
        .iter()
        .find(|c| c.name().as_str() == "OrderWithinCredit")
        .unwrap();

    let (mut w, order, customer) = world();
    let sig = dedisys_types::MethodSignature::new("Customer", "setCreditLimit");
    let prep = credit.preparation_for(&sig).unwrap();
    // The preparation follows Customer.lastOrder to the Order context.
    let resolved = prep.resolve(&customer, &mut w).unwrap();
    assert_eq!(resolved, Some(order));
}

#[test]
fn violations_are_detected_through_the_descriptor_constraints() {
    let set = ConstraintConfigSet::from_json(DESCRIPTOR).unwrap();
    let mut impls = ImplRegistry::new();
    impls.register(
        "HandRolled",
        Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
    );
    let constraints = set.resolve(&impls).unwrap();
    let credit = constraints
        .iter()
        .find(|c| c.name().as_str() == "OrderWithinCredit")
        .unwrap();

    let (mut w, order, customer) = world();
    w.put_field(&order, "total", Value::Int(2000)); // over the limit
    let mut ctx = ValidationContext::for_invariant(order.clone(), &mut w);
    assert_eq!(credit.implementation.validate(&mut ctx), Ok(false));
    // Unreachable customer ⇒ uncheckable (error propagates).
    let mut w2 = {
        let (mut w2, o, c) = world();
        let _ = o;
        w2.set_unreachable(&c, true);
        let _ = customer;
        w2
    };
    let mut ctx = ValidationContext::for_invariant(order, &mut w2);
    assert!(matches!(
        credit.implementation.validate(&mut ctx),
        Err(dedisys_types::Error::ObjectUnreachable(_))
    ));
}
