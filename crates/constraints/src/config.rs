//! The constraint deployment descriptor (the Listing 4.1 equivalent).
//!
//! Constraints and their metadata are declared in a configuration file
//! read at application deployment (§4.2.2). The original used XML; here
//! the descriptor is JSON. Implementations are either declarative
//! (`"expr"`) or refer to a code-registered constraint class by name
//! (`"implementation"`), resolved through an [`ImplRegistry`].

use crate::expr::ExprConstraint;
use crate::{
    Constraint, ConstraintKind, ConstraintMeta, ConstraintPriority, ContextPreparation,
    FreshnessCriterion, ObjectScope, RegisteredConstraint,
};
use dedisys_types::{Error, Result, SatisfactionDegree};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;

/// Context-preparation declaration of an affected method.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq, Default)]
#[serde(tag = "kind", rename_all = "camelCase")]
pub enum PreparationConfig {
    /// The called object is the context object.
    #[default]
    CalledObject,
    /// Follow a reference field of the called object.
    #[serde(rename_all = "camelCase")]
    ReferenceField {
        /// The reference-holding field.
        field: String,
    },
    /// No context object.
    None,
}

impl From<PreparationConfig> for ContextPreparation {
    fn from(cfg: PreparationConfig) -> Self {
        match cfg {
            PreparationConfig::CalledObject => ContextPreparation::CalledObject,
            PreparationConfig::ReferenceField { field } => {
                ContextPreparation::ReferenceField(field)
            }
            PreparationConfig::None => ContextPreparation::None,
        }
    }
}

/// One `<affected-method>` declaration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "camelCase")]
pub struct AffectedMethodConfig {
    /// Declaring class of the method.
    pub class: String,
    /// Method name.
    pub method: String,
    /// Context preparation (defaults to called-object).
    #[serde(default)]
    pub preparation: PreparationConfig,
}

/// A freshness-criterion declaration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
#[serde(rename_all = "camelCase")]
pub struct FreshnessConfig {
    /// The affected class.
    pub class: String,
    /// Maximum tolerated missed updates.
    pub max_age: u64,
}

/// One `<constraint>` declaration.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(rename_all = "camelCase")]
pub struct ConstraintConfig {
    /// Unique constraint name.
    pub name: String,
    /// Kind: `PRE`, `POST`, `HARD`, `SOFT` or `ASYNC`.
    #[serde(rename = "type")]
    pub kind: String,
    /// `RELAXABLE` (tradeable) or `CRITICAL` (default).
    #[serde(default)]
    pub priority: Option<String>,
    /// Whether validation starts from a context object.
    #[serde(default = "default_true")]
    pub context_object: bool,
    /// Declarative negotiation floor, e.g. `"UNCHECKABLE"`.
    #[serde(default)]
    pub min_satisfaction_degree: Option<String>,
    /// Human description.
    #[serde(default)]
    pub description: String,
    /// Context class for invariants.
    #[serde(default)]
    pub context_class: Option<String>,
    /// Declarative implementation (constraint expression).
    #[serde(default)]
    pub expr: Option<String>,
    /// Name of a code-registered implementation (the `<class>` element).
    #[serde(default)]
    pub implementation: Option<String>,
    /// Intra-object scope flag (§3.1); default inter-object.
    #[serde(default)]
    pub intra_object: bool,
    /// Trigger points.
    #[serde(default)]
    pub affected_methods: Vec<AffectedMethodConfig>,
    /// Freshness criteria.
    #[serde(default)]
    pub freshness: Vec<FreshnessConfig>,
}

fn default_true() -> bool {
    true
}

/// Registry of code-provided constraint implementations, keyed by the
/// `implementation` name used in the descriptor.
#[derive(Clone, Default)]
pub struct ImplRegistry {
    impls: HashMap<String, Arc<dyn Constraint>>,
}

impl std::fmt::Debug for ImplRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<&String> = self.impls.keys().collect();
        names.sort();
        write!(f, "ImplRegistry{names:?}")
    }
}

impl ImplRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an implementation under `name`.
    pub fn register(&mut self, name: impl Into<String>, implementation: Arc<dyn Constraint>) {
        self.impls.insert(name.into(), implementation);
    }

    /// Looks up an implementation.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Constraint>> {
        self.impls.get(name).cloned()
    }
}

/// A whole descriptor file: a list of constraint declarations.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct ConstraintConfigSet {
    /// The declared constraints.
    pub constraints: Vec<ConstraintConfig>,
}

impl ConstraintConfigSet {
    /// Parses a JSON descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json).map_err(|e| Error::Config(format!("descriptor: {e}")))
    }

    /// Serializes back to JSON (pretty).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on serialization failure.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string_pretty(self).map_err(|e| Error::Config(e.to_string()))
    }

    /// Resolves every declaration into a [`RegisteredConstraint`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for unknown kinds/priorities/degrees,
    /// missing implementations, or declarations with neither `expr` nor
    /// `implementation`.
    pub fn resolve(&self, impls: &ImplRegistry) -> Result<Vec<RegisteredConstraint>> {
        self.constraints
            .iter()
            .map(|c| resolve_one(c, impls))
            .collect()
    }
}

fn resolve_one(cfg: &ConstraintConfig, impls: &ImplRegistry) -> Result<RegisteredConstraint> {
    let kind = ConstraintKind::parse_config(&cfg.kind)
        .ok_or_else(|| Error::Config(format!("{}: unknown type '{}'", cfg.name, cfg.kind)))?;
    let priority = match &cfg.priority {
        None => ConstraintPriority::NonTradeable,
        Some(p) => ConstraintPriority::parse_config(p)
            .ok_or_else(|| Error::Config(format!("{}: unknown priority '{p}'", cfg.name)))?,
    };
    let min_degree = match &cfg.min_satisfaction_degree {
        None => SatisfactionDegree::Satisfied,
        Some(d) => SatisfactionDegree::parse_config(d)
            .ok_or_else(|| Error::Config(format!("{}: unknown degree '{d}'", cfg.name)))?,
    };
    let implementation: Arc<dyn Constraint> = match (&cfg.expr, &cfg.implementation) {
        (Some(expr), None) => Arc::new(ExprConstraint::parse(expr)?),
        (None, Some(name)) => impls.get(name).ok_or_else(|| {
            Error::Config(format!(
                "{}: implementation '{name}' not registered",
                cfg.name
            ))
        })?,
        (Some(_), Some(_)) => {
            return Err(Error::Config(format!(
                "{}: give either 'expr' or 'implementation', not both",
                cfg.name
            )))
        }
        (None, None) => {
            return Err(Error::Config(format!(
                "{}: missing 'expr' or 'implementation'",
                cfg.name
            )))
        }
    };

    let mut meta = ConstraintMeta::new(cfg.name.clone())
        .kind(kind)
        .describe(cfg.description.clone());
    meta.priority = priority;
    meta.min_satisfaction_degree = min_degree;
    meta.needs_context_object = cfg.context_object;
    if cfg.intra_object {
        meta.scope = ObjectScope::IntraObject;
    }
    for f in &cfg.freshness {
        meta.freshness
            .push(FreshnessCriterion::new(f.class.clone(), f.max_age));
    }

    let mut registered = RegisteredConstraint::new(meta, implementation);
    if let Some(class) = &cfg.context_class {
        registered = registered.context_class(class.clone());
    }
    for m in &cfg.affected_methods {
        registered = registered.affects(
            m.class.clone(),
            m.method.clone(),
            m.preparation.clone().into(),
        );
    }
    Ok(registered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ValidationContext;

    /// The ATS descriptor of Listing 4.1, transliterated to JSON.
    const ATS_DESCRIPTOR: &str = r#"{
      "constraints": [
        {
          "name": "ComponentKindReferenceConsistency",
          "type": "HARD",
          "priority": "RELAXABLE",
          "contextObject": true,
          "minSatisfactionDegree": "UNCHECKABLE",
          "contextClass": "RepairReport",
          "expr": "self.componentKind = \"Signal Controller\" or self.componentKind = \"Signal Cable\"",
          "affectedMethods": [
            { "class": "RepairReport", "method": "setAffectedComponent",
              "preparation": { "kind": "calledObject" } },
            { "class": "Alarm", "method": "setAlarmKind",
              "preparation": { "kind": "referenceField", "field": "repairReport" } }
          ],
          "freshness": [ { "class": "Alarm", "maxAge": 5 } ]
        }
      ]
    }"#;

    #[test]
    fn parses_the_ats_descriptor() {
        let set = ConstraintConfigSet::from_json(ATS_DESCRIPTOR).unwrap();
        assert_eq!(set.constraints.len(), 1);
        let c = &set.constraints[0];
        assert_eq!(c.kind, "HARD");
        assert_eq!(c.affected_methods.len(), 2);
        assert_eq!(
            c.affected_methods[1].preparation,
            PreparationConfig::ReferenceField {
                field: "repairReport".into()
            }
        );
    }

    #[test]
    fn resolves_to_registered_constraints() {
        let set = ConstraintConfigSet::from_json(ATS_DESCRIPTOR).unwrap();
        let registered = set.resolve(&ImplRegistry::new()).unwrap();
        let c = &registered[0];
        assert_eq!(c.meta.kind, ConstraintKind::HardInvariant);
        assert_eq!(c.meta.priority, ConstraintPriority::Tradeable);
        assert_eq!(
            c.meta.min_satisfaction_degree,
            SatisfactionDegree::Uncheckable
        );
        assert_eq!(c.context_class.as_ref().unwrap().as_str(), "RepairReport");
        assert_eq!(c.affected_methods.len(), 2);
        assert_eq!(c.meta.freshness.len(), 1);
    }

    #[test]
    fn code_implementations_resolve_by_name() {
        let json = r#"{ "constraints": [ {
            "name": "C", "type": "SOFT", "implementation": "AlwaysTrue"
        } ] }"#;
        let set = ConstraintConfigSet::from_json(json).unwrap();
        assert!(set.resolve(&ImplRegistry::new()).is_err(), "unregistered");
        let mut impls = ImplRegistry::new();
        impls.register(
            "AlwaysTrue",
            Arc::new(|_: &mut ValidationContext<'_>| Ok(true)),
        );
        let registered = set.resolve(&impls).unwrap();
        assert_eq!(registered[0].meta.kind, ConstraintKind::SoftInvariant);
    }

    #[test]
    fn invalid_declarations_are_rejected() {
        for bad in [
            r#"{ "constraints": [ { "name": "C", "type": "WEIRD", "expr": "true" } ] }"#,
            r#"{ "constraints": [ { "name": "C", "type": "HARD" } ] }"#,
            r#"{ "constraints": [ { "name": "C", "type": "HARD", "expr": "true", "implementation": "X" } ] }"#,
            r#"{ "constraints": [ { "name": "C", "type": "HARD", "priority": "MAYBE", "expr": "true" } ] }"#,
            r#"{ "constraints": [ { "name": "C", "type": "HARD", "minSatisfactionDegree": "KINDA", "expr": "true" } ] }"#,
        ] {
            let set = ConstraintConfigSet::from_json(bad).unwrap();
            assert!(set.resolve(&ImplRegistry::new()).is_err(), "{bad}");
        }
    }

    #[test]
    fn json_roundtrip() {
        let set = ConstraintConfigSet::from_json(ATS_DESCRIPTOR).unwrap();
        let json = set.to_json().unwrap();
        let back = ConstraintConfigSet::from_json(&json).unwrap();
        assert_eq!(set, back);
    }
}
