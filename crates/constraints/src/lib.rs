//! # dedisys-constraints
//!
//! Explicit runtime integrity constraints — the constraint runtime model
//! of Figure 4.3 made into first-class Rust citizens.
//!
//! The dissertation's central requirement is that data integrity
//! constraints be *explicitly available and manageable during runtime*
//! (§1.5): encapsulated one-per-class, registered in a repository that
//! can be queried by class/method/kind, and add/remove/enable/disable-
//! able while the system runs. This crate provides:
//!
//! * [`Constraint`] — the `validate(ctx)` contract between middleware
//!   and application, plus `before_method_invocation` for `@pre`-style
//!   postconditions.
//! * [`ConstraintMeta`] / [`RegisteredConstraint`] — metadata: kind
//!   (pre/post/hard/soft/**async** invariant), tradeable priority,
//!   minimum satisfaction degree, context class, affected methods with
//!   context preparation, freshness criteria, intra-/inter-object scope.
//! * [`ConstraintRepository`] — runtime registry with two lookup
//!   implementations: **per-invocation search** and the **optimized
//!   (cached)** variant whose difference Chapter 2 quantifies.
//! * [`expr`] — a small OCL-like expression language (lexer, parser,
//!   interpreter) so constraints can also be given declaratively, e.g.
//!   `self.soldTickets <= self.seats`.
//! * [`ConstraintConfig`] — the JSON deployment descriptor (the
//!   Listing 4.1 equivalent) and its loader.
//!
//! ## Example
//!
//! ```
//! use dedisys_constraints::{
//!     expr::ExprConstraint, ConstraintKind, ConstraintMeta, ConstraintPriority,
//!     MapAccess, ValidationContext,
//! };
//! use dedisys_types::{ObjectId, Value};
//!
//! // The ticket constraint of Listing 1.2, declaratively:
//! let constraint = ExprConstraint::parse("self.soldTickets <= self.seats").unwrap();
//!
//! let flight = ObjectId::new("Flight", "LH-441");
//! let mut world = MapAccess::new();
//! world.put_field(&flight, "seats", Value::Int(80));
//! world.put_field(&flight, "soldTickets", Value::Int(77));
//!
//! let mut ctx = ValidationContext::for_invariant(flight, &mut world);
//! use dedisys_constraints::Constraint;
//! assert_eq!(constraint.validate(&mut ctx), Ok(true));
//! ```

mod config;
mod constraint;
mod context;
pub mod expr;
mod freshness;
mod preparation;
mod repository;

pub use config::{AffectedMethodConfig, ConstraintConfig, ConstraintConfigSet, ImplRegistry};
pub use constraint::{
    CompiledInfo, Constraint, ConstraintEngine, ConstraintKind, ConstraintMeta, ConstraintPriority,
    ObjectScope, ReadSet, RegisteredConstraint, VOLATILE_ENV_KEYS,
};
pub use context::{MapAccess, ObjectAccess, ValidationContext};
pub use freshness::FreshnessCriterion;
pub use preparation::ContextPreparation;
pub use repository::{ConstraintRepository, LookupKind, LookupMode, RepositoryStats};
