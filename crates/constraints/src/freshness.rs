//! Freshness criteria (Figure 4.3, `FreshnessCriterion`).

use dedisys_types::{ClassName, VersionInfo};

/// A maximum-age bound for possibly stale objects of one class, used in
/// declarative threat negotiation (§4.2.3): the difference
/// `getEstimatedLatestVersion() - getVersion()` must not exceed
/// `max_missed_updates`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FreshnessCriterion {
    /// The affected class the criterion applies to.
    pub class: ClassName,
    /// Maximum tolerated estimated missed updates.
    pub max_missed_updates: u64,
}

impl FreshnessCriterion {
    /// Creates a criterion.
    pub fn new(class: impl Into<ClassName>, max_missed_updates: u64) -> Self {
        Self {
            class: class.into(),
            max_missed_updates,
        }
    }

    /// Whether a copy with `info` satisfies the criterion.
    pub fn accepts(&self, info: VersionInfo) -> bool {
        info.missed_updates() <= self.max_missed_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::Version;

    #[test]
    fn accepts_fresh_and_slightly_stale() {
        let c = FreshnessCriterion::new("Flight", 2);
        assert!(c.accepts(VersionInfo::fresh(Version(5))));
        assert!(c.accepts(VersionInfo::new(Version(5), Version(7))));
        assert!(!c.accepts(VersionInfo::new(Version(5), Version(8))));
    }
}
