//! Tokenizer for the constraint expression language.

use super::expr_err;
use dedisys_types::Result;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Identifier or keyword.
    Ident(String),
    /// `(`.
    LParen,
    /// `)`.
    RParen,
    /// `.`.
    Dot,
    /// `,`.
    Comma,
    /// `+`.
    Plus,
    /// `-`.
    Minus,
    /// `*`.
    Star,
    /// `/`.
    Slash,
    /// `%`.
    Percent,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=` or `==`.
    Eq,
    /// `<>` or `!=`.
    Ne,
}

/// Tokenizes `source`.
///
/// # Errors
///
/// Returns [`dedisys_types::Error::Expr`] on unknown characters,
/// unterminated strings or malformed numbers.
pub fn tokenize(source: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '%' => {
                tokens.push(Token::Percent);
                i += 1;
            }
            '<' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Le);
                    i += 2;
                } else if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 2;
                } else {
                    i += 1;
                }
                tokens.push(Token::Eq);
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(expr_err("unexpected '!' (use 'not' or '!=')"));
                }
            }
            '"' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match chars.get(i) {
                        None => return Err(expr_err("unterminated string literal")),
                        Some('"') => {
                            i += 1;
                            break;
                        }
                        Some('\\') => {
                            match chars.get(i + 1) {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                other => {
                                    return Err(expr_err(format!(
                                        "unknown escape: \\{}",
                                        other.map(|c| c.to_string()).unwrap_or_default()
                                    )))
                                }
                            }
                            i += 2;
                        }
                        Some(&c) => {
                            s.push(c);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < chars.len() && chars[i].is_ascii_digit() {
                    i += 1;
                }
                let mut is_float = false;
                if i + 1 < chars.len() && chars[i] == '.' && chars[i + 1].is_ascii_digit() {
                    is_float = true;
                    i += 1;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_float {
                    let f = text
                        .parse::<f64>()
                        .map_err(|e| expr_err(format!("bad float '{text}': {e}")))?;
                    tokens.push(Token::Float(f));
                } else {
                    let n = text
                        .parse::<i64>()
                        .map_err(|e| expr_err(format!("bad integer '{text}': {e}")))?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                tokens.push(Token::Ident(chars[start..i].iter().collect()));
            }
            other => return Err(expr_err(format!("unexpected character '{other}'"))),
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_the_ticket_constraint() {
        let tokens = tokenize("self.soldTickets <= self.seats").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("self".into()),
                Token::Dot,
                Token::Ident("soldTickets".into()),
                Token::Le,
                Token::Ident("self".into()),
                Token::Dot,
                Token::Ident("seats".into()),
            ]
        );
    }

    #[test]
    fn tokenizes_literals_and_operators() {
        let tokens = tokenize(r#"1 + 2.5 * "a\"b" <> x != y == z"#).unwrap();
        assert_eq!(tokens[0], Token::Int(1));
        assert_eq!(tokens[2], Token::Float(2.5));
        assert_eq!(tokens[4], Token::Str("a\"b".into()));
        assert_eq!(tokens[5], Token::Ne);
        assert_eq!(tokens[7], Token::Ne);
        assert_eq!(tokens[9], Token::Eq);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(tokenize("a # b").is_err());
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
