//! Recursive-descent parser for constraint expressions.

use super::ast::{BinOp, Expr, UnaryOp};
use super::expr_err;
use super::lexer::{tokenize, Token};
use dedisys_types::{Result, Value};

/// Parses `source` into an expression.
///
/// # Errors
///
/// Returns [`dedisys_types::Error::Expr`] on lexical or syntax errors.
pub fn parse(source: &str) -> Result<Expr> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let expr = parser.implies()?;
    if parser.pos != parser.tokens.len() {
        return Err(expr_err(format!(
            "unexpected trailing input at token {}",
            parser.pos
        )));
    }
    Ok(expr)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<()> {
        match self.next() {
            Some(ref t) if t == token => Ok(()),
            other => Err(expr_err(format!("expected {what}, found {other:?}"))),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(id)) if id == kw)
    }

    fn implies(&mut self) -> Result<Expr> {
        let mut left = self.or()?;
        while self.peek_keyword("implies") {
            self.pos += 1;
            let right = self.or()?;
            left = Expr::Binary(BinOp::Implies, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn or(&mut self) -> Result<Expr> {
        let mut left = self.and()?;
        while self.peek_keyword("or") {
            self.pos += 1;
            let right = self.and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and(&mut self) -> Result<Expr> {
        let mut left = self.not()?;
        while self.peek_keyword("and") {
            self.pos += 1;
            let right = self.not()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not(&mut self) -> Result<Expr> {
        if self.peek_keyword("not") {
            self.pos += 1;
            let inner = self.not()?;
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Lt) => Some(BinOp::Lt),
            Some(Token::Le) => Some(BinOp::Le),
            Some(Token::Gt) => Some(BinOp::Gt),
            Some(Token::Ge) => Some(BinOp::Ge),
            Some(Token::Eq) => Some(BinOp::Eq),
            Some(Token::Ne) => Some(BinOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(Expr::Binary(op, Box::new(left), Box::new(right)));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Slash) => BinOp::Div,
                Some(Token::Percent) => BinOp::Rem,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        if matches!(self.peek(), Some(Token::Minus)) {
            self.pos += 1;
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr> {
        let mut expr = self.primary()?;
        while matches!(self.peek(), Some(Token::Dot)) {
            self.pos += 1;
            match self.next() {
                Some(Token::Ident(field)) => {
                    expr = Expr::Field(Box::new(expr), field);
                }
                other => return Err(expr_err(format!("expected field name, found {other:?}"))),
            }
        }
        Ok(expr)
    }

    fn string_arg(&mut self, func: &str) -> Result<String> {
        self.expect(&Token::LParen, "'('")?;
        let s = match self.next() {
            Some(Token::Str(s)) => s,
            other => {
                return Err(expr_err(format!(
                    "{func}(...) expects a string literal, found {other:?}"
                )))
            }
        };
        self.expect(&Token::RParen, "')'")?;
        Ok(s)
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Expr::Literal(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Expr::Literal(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Expr::Literal(Value::Str(s))),
            Some(Token::LParen) => {
                let inner = self.implies()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(inner)
            }
            Some(Token::Ident(id)) => match id.as_str() {
                "true" => Ok(Expr::Literal(Value::Bool(true))),
                "false" => Ok(Expr::Literal(Value::Bool(false))),
                "null" => Ok(Expr::Literal(Value::Null)),
                "self" => Ok(Expr::SelfRef),
                "env" => Ok(Expr::Env(self.string_arg("env")?)),
                "pre" => Ok(Expr::Pre(self.string_arg("pre")?)),
                "count" => Ok(Expr::Count(self.string_arg("count")?.into())),
                "size" => {
                    self.expect(&Token::LParen, "'('")?;
                    let inner = self.implies()?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Expr::Size(Box::new(inner)))
                }
                "arg" => {
                    self.expect(&Token::LParen, "'('")?;
                    let idx = match self.next() {
                        Some(Token::Int(n)) if n >= 0 => n as usize,
                        other => {
                            return Err(expr_err(format!(
                                "arg(...) expects a non-negative integer, found {other:?}"
                            )))
                        }
                    };
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Expr::Arg(idx))
                }
                "result" => {
                    self.expect(&Token::LParen, "'('")?;
                    self.expect(&Token::RParen, "')'")?;
                    Ok(Expr::MethodResult)
                }
                other => Err(expr_err(format!(
                    "unknown identifier '{other}' (navigation starts at 'self')"
                ))),
            },
            other => Err(expr_err(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_navigation_chain() {
        let e = parse("self.repairReport.componentKind").unwrap();
        assert_eq!(
            e,
            Expr::Field(
                Box::new(Expr::Field(Box::new(Expr::SelfRef), "repairReport".into())),
                "componentKind".into()
            )
        );
    }

    #[test]
    fn precedence_arithmetic_over_comparison_over_bool() {
        let e = parse("self.a + 1 <= 5 and not self.b").unwrap();
        match e {
            Expr::Binary(BinOp::And, l, r) => {
                assert!(matches!(*l, Expr::Binary(BinOp::Le, _, _)));
                assert!(matches!(*r, Expr::Unary(UnaryOp::Not, _)));
            }
            other => panic!("unexpected shape: {other:?}"),
        }
    }

    #[test]
    fn implies_has_lowest_precedence() {
        let e = parse("self.a or self.b implies self.c").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Implies, _, _)));
    }

    #[test]
    fn parses_builtins() {
        assert_eq!(parse("arg(0)").unwrap(), Expr::Arg(0));
        assert_eq!(parse("result()").unwrap(), Expr::MethodResult);
        assert_eq!(parse("pre(\"x\")").unwrap(), Expr::Pre("x".into()));
        assert_eq!(parse("env(\"w\")").unwrap(), Expr::Env("w".into()));
        assert_eq!(
            parse("count(\"Flight\")").unwrap(),
            Expr::Count("Flight".into())
        );
        assert!(matches!(parse("size(self.items)").unwrap(), Expr::Size(_)));
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("self.").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("foo").is_err());
        assert!(parse("arg(-1)").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("(1").is_err());
    }

    #[test]
    fn unary_minus() {
        let e = parse("-self.a + 1").unwrap();
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
    }
}
