//! Abstract syntax of constraint expressions.

use dedisys_types::{ClassName, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+` (numeric addition; string concatenation).
    Add,
    /// `-`.
    Sub,
    /// `*`.
    Mul,
    /// `/`.
    Div,
    /// `%`.
    Rem,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
    /// `=` / `==`.
    Eq,
    /// `<>` / `!=`.
    Ne,
    /// `and` (short-circuit).
    And,
    /// `or` (short-circuit).
    Or,
    /// `implies` (short-circuit: false antecedent ⇒ true).
    Implies,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// `not`.
    Not,
    /// Numeric negation.
    Neg,
}

/// A constraint expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// The context object (`self`).
    SelfRef,
    /// `env("key")` — middleware-provided environment value.
    Env(String),
    /// `pre("key")` — value snapshotted by `before_method_invocation`.
    Pre(String),
    /// `arg(i)` — i-th method argument.
    Arg(usize),
    /// `result()` — the method result (postconditions).
    MethodResult,
    /// `count("Class")` — number of reachable objects of the class.
    Count(ClassName),
    /// `size(e)` — length of a list or string.
    Size(Box<Expr>),
    /// Field navigation `e.field` (on object references).
    Field(Box<Expr>, String),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Implies => "implies",
        };
        f.write_str(s)
    }
}

impl std::fmt::Display for Expr {
    /// Pretty-prints the expression with full parenthesization, so
    /// `parse(expr.to_string())` reproduces the same AST.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Literal(Value::Str(s)) => write!(f, "{:?}", s),
            Expr::Literal(Value::Float(x)) => write!(f, "{x:?}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::SelfRef => f.write_str("self"),
            Expr::Env(k) => write!(f, "env({k:?})"),
            Expr::Pre(k) => write!(f, "pre({k:?})"),
            Expr::Arg(i) => write!(f, "arg({i})"),
            Expr::MethodResult => f.write_str("result()"),
            Expr::Count(class) => write!(f, "count({:?})", class.as_str()),
            Expr::Size(e) => write!(f, "size({e})"),
            Expr::Field(e, field) => write!(f, "{e}.{field}"),
            Expr::Unary(UnaryOp::Not, e) => write!(f, "(not {e})"),
            Expr::Unary(UnaryOp::Neg, e) => write!(f, "(-{e})"),
            Expr::Binary(op, l, r) => write!(f, "({l} {op} {r})"),
        }
    }
}

impl Expr {
    /// Number of nodes (used in tests and complexity accounting).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Literal(_)
            | Expr::SelfRef
            | Expr::Env(_)
            | Expr::Pre(_)
            | Expr::Arg(_)
            | Expr::MethodResult
            | Expr::Count(_) => 1,
            Expr::Size(e) | Expr::Field(e, _) | Expr::Unary(_, e) => 1 + e.node_count(),
            Expr::Binary(_, l, r) => 1 + l.node_count() + r.node_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count() {
        let e = Expr::Binary(
            BinOp::Le,
            Box::new(Expr::Field(Box::new(Expr::SelfRef), "a".into())),
            Box::new(Expr::Literal(Value::Int(1))),
        );
        assert_eq!(e.node_count(), 4);
    }
}
