//! Constraint compilation: lowering the [`Expr`] AST to a flat program
//! run by a small stack VM.
//!
//! Chapter 2 attributes the Dresden-OCL toolkit's ~405× validation
//! overhead to *interpretive*, tool-generated checking. Re-walking the
//! AST on every trigger re-pays that interpretation cost each time;
//! [`compile`] pays it once per constraint instead:
//!
//! * the tree is linearized into postorder `Op`s over arena pools
//!   (constants, names, classes) — no per-evaluation allocation or
//!   recursion;
//! * constant subexpressions are folded at compile time (through the
//!   same short-circuit semantics the interpreter uses, so `false and
//!   self.gone.x` folds to `false` without touching `gone`);
//! * the static [`ReadSet`] — which `self` fields and env keys the
//!   program can read, whether it navigates across objects or depends
//!   on per-call inputs — is precomputed for the CCM verdict cache.
//!
//! [`Program::evaluate`] is a drop-in replacement for
//! [`super::evaluate`]: same values, same error messages, same
//! evaluation and short-circuit order, same accessed-object tracking
//! through the [`ValidationContext`]. The eager binary semantics are
//! literally shared (one `apply_eager` definition), and the
//! `interpreter_equivalence` test below pins the rest.

use super::ast::{BinOp, Expr, UnaryOp};
use super::eval::{apply_eager, missing_self, nav_error, negate_value, size_value};
use crate::constraint::{CompiledInfo, ReadSet};
use crate::ValidationContext;
use dedisys_types::{ClassName, Result, Value};

/// One instruction of a compiled constraint program.
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Push `consts[i]`.
    Const(u32),
    /// Push `Value::Ref(context object)`; error without one.
    SelfVal,
    /// Push the env value named `names[i]`, or `Null`.
    Env(u32),
    /// Push the `@pre` snapshot value named `names[i]`, or `Null`.
    Pre(u32),
    /// Push method argument `i`, or `Null`.
    Arg(u32),
    /// Push the method result, or `Null`.
    MethodResult,
    /// Push the number of reachable `classes[i]` instances.
    Count(u32),
    /// Pop a list/string, push its length.
    Size,
    /// Pop an object reference, push its field `names[i]`.
    Field(u32),
    /// Pop a value, push its boolean negation.
    Not,
    /// Pop a number, push its arithmetic negation.
    Neg,
    /// Pop rhs then lhs, push the eager binary result.
    Bin(BinOp),
    /// Pop the condition; when falsy push `Bool(short)` and jump to
    /// `target` (short-circuit for `and` — `short: false` — and
    /// `implies` — `short: true`).
    JumpIfFalsy { target: u32, short: bool },
    /// Pop the condition; when truthy push `Bool(true)` and jump to
    /// `target` (short-circuit for `or`).
    JumpIfTruthy { target: u32 },
    /// Pop a value, push `Bool(v.truthy())` (boolean result coercion).
    Truthy,
}

/// A compiled constraint program: flat ops over arena pools, plus the
/// precomputed static read-set.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    consts: Vec<Value>,
    names: Vec<String>,
    classes: Vec<ClassName>,
    read_set: ReadSet,
    /// AST nodes folded away at compile time.
    folded: u32,
    /// Upper bound on operand-stack depth, for one up-front allocation.
    max_stack: usize,
}

impl Program {
    /// The static read-set of the program.
    pub fn read_set(&self) -> &ReadSet {
        &self.read_set
    }

    /// Number of VM ops.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// AST nodes removed by constant folding.
    pub fn folded_nodes(&self) -> u32 {
        self.folded
    }

    /// The telemetry summary of this program.
    pub fn info(&self) -> CompiledInfo {
        CompiledInfo {
            ops: self.ops.len() as u32,
            reads: (self.read_set.self_fields.len() + self.read_set.env_keys.len()) as u32,
            cacheable: self.read_set.cacheable(),
        }
    }

    /// Runs the program against `ctx`.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`super::evaluate`] on the source AST:
    /// type errors, division by zero, navigation from non-references,
    /// missing `self`, and propagated object-access failures.
    pub fn evaluate(&self, ctx: &mut ValidationContext<'_>) -> Result<Value> {
        let mut stack: Vec<Value> = Vec::with_capacity(self.max_stack.max(1));
        let mut pc = 0usize;
        while pc < self.ops.len() {
            match &self.ops[pc] {
                Op::Const(i) => stack.push(self.consts[*i as usize].clone()),
                Op::SelfVal => {
                    let id = ctx.context_object().cloned().ok_or_else(missing_self)?;
                    stack.push(Value::Ref(id));
                }
                Op::Env(i) => stack.push(
                    ctx.env(&self.names[*i as usize])
                        .cloned()
                        .unwrap_or(Value::Null),
                ),
                Op::Pre(i) => stack.push(
                    ctx.pre(&self.names[*i as usize])
                        .cloned()
                        .unwrap_or(Value::Null),
                ),
                Op::Arg(i) => {
                    stack.push(ctx.args().get(*i as usize).cloned().unwrap_or(Value::Null))
                }
                Op::MethodResult => stack.push(ctx.result().cloned().unwrap_or(Value::Null)),
                Op::Count(i) => stack.push(Value::Int(
                    ctx.objects_of_class(&self.classes[*i as usize]).len() as i64,
                )),
                Op::Size => {
                    let v = stack.pop().expect("size operand");
                    stack.push(size_value(v)?);
                }
                Op::Field(i) => {
                    let field = &self.names[*i as usize];
                    let v = stack.pop().expect("navigation base");
                    match v {
                        Value::Ref(id) => stack.push(ctx.field(&id, field)?),
                        other => return Err(nav_error(field, &other)),
                    }
                }
                Op::Not => {
                    let v = stack.pop().expect("not operand");
                    stack.push(Value::Bool(!v.truthy()));
                }
                Op::Neg => {
                    let v = stack.pop().expect("neg operand");
                    stack.push(negate_value(v)?);
                }
                Op::Bin(op) => {
                    let r = stack.pop().expect("binary rhs");
                    let l = stack.pop().expect("binary lhs");
                    stack.push(apply_eager(*op, &l, &r)?);
                }
                Op::JumpIfFalsy { target, short } => {
                    let v = stack.pop().expect("short-circuit condition");
                    if !v.truthy() {
                        stack.push(Value::Bool(*short));
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::JumpIfTruthy { target } => {
                    let v = stack.pop().expect("short-circuit condition");
                    if v.truthy() {
                        stack.push(Value::Bool(true));
                        pc = *target as usize;
                        continue;
                    }
                }
                Op::Truthy => {
                    let v = stack.pop().expect("coercion operand");
                    stack.push(Value::Bool(v.truthy()));
                }
            }
            pc += 1;
        }
        Ok(stack.pop().expect("a program leaves exactly one value"))
    }
}

/// Lowers `expr` into a [`Program`].
pub fn compile(expr: &Expr) -> Program {
    let mut read_set = ReadSet::default();
    analyze(expr, &mut read_set);
    let mut c = Compiler {
        program: Program {
            ops: Vec::new(),
            consts: Vec::new(),
            names: Vec::new(),
            classes: Vec::new(),
            read_set,
            folded: 0,
            max_stack: 0,
        },
        depth: 0,
    };
    c.emit(expr);
    c.program
}

/// Collects the static read-set of `expr` — conservative over both
/// short-circuit branches, on the *unfolded* tree.
fn analyze(expr: &Expr, rs: &mut ReadSet) {
    match expr {
        Expr::Literal(_) | Expr::SelfRef => {}
        Expr::Env(key) => {
            rs.env_keys.insert(key.clone());
        }
        Expr::Pre(_) | Expr::Arg(_) | Expr::MethodResult => rs.call_dependent = true,
        Expr::Count(_) => rs.cross_object = true,
        Expr::Size(inner) | Expr::Unary(_, inner) => analyze(inner, rs),
        Expr::Field(base, field) => {
            if matches!(**base, Expr::SelfRef) {
                rs.self_fields.insert(field.clone());
            } else {
                // `self.a.b` and friends reach past the context object.
                rs.cross_object = true;
                analyze(base, rs);
            }
        }
        Expr::Binary(_, left, right) => {
            analyze(left, rs);
            analyze(right, rs);
        }
    }
}

/// Evaluates a context-free subexpression at compile time, through the
/// interpreter's exact semantics (including short-circuiting). `None`
/// when the value depends on the context or when evaluation would
/// error — runtime errors must stay runtime errors.
fn fold(expr: &Expr) -> Option<Value> {
    match expr {
        Expr::Literal(v) => Some(v.clone()),
        Expr::Unary(op, inner) => {
            let v = fold(inner)?;
            match op {
                UnaryOp::Not => Some(Value::Bool(!v.truthy())),
                UnaryOp::Neg => negate_value(v).ok(),
            }
        }
        Expr::Size(inner) => size_value(fold(inner)?).ok(),
        Expr::Binary(op, left, right) => {
            let l = fold(left)?;
            match op {
                BinOp::And => {
                    if !l.truthy() {
                        return Some(Value::Bool(false));
                    }
                    Some(Value::Bool(fold(right)?.truthy()))
                }
                BinOp::Or => {
                    if l.truthy() {
                        return Some(Value::Bool(true));
                    }
                    Some(Value::Bool(fold(right)?.truthy()))
                }
                BinOp::Implies => {
                    if !l.truthy() {
                        return Some(Value::Bool(true));
                    }
                    Some(Value::Bool(fold(right)?.truthy()))
                }
                _ => {
                    let r = fold(right)?;
                    apply_eager(*op, &l, &r).ok()
                }
            }
        }
        _ => None,
    }
}

struct Compiler {
    program: Program,
    depth: usize,
}

impl Compiler {
    fn push(&mut self, n: usize) {
        self.depth += n;
        self.program.max_stack = self.program.max_stack.max(self.depth);
    }

    fn pop(&mut self, n: usize) {
        self.depth -= n;
    }

    fn const_idx(&mut self, v: Value) -> u32 {
        match self.program.consts.iter().position(|c| *c == v) {
            Some(i) => i as u32,
            None => {
                self.program.consts.push(v);
                (self.program.consts.len() - 1) as u32
            }
        }
    }

    fn name_idx(&mut self, name: &str) -> u32 {
        match self.program.names.iter().position(|n| n == name) {
            Some(i) => i as u32,
            None => {
                self.program.names.push(name.to_owned());
                (self.program.names.len() - 1) as u32
            }
        }
    }

    fn class_idx(&mut self, class: &ClassName) -> u32 {
        match self.program.classes.iter().position(|c| c == class) {
            Some(i) => i as u32,
            None => {
                self.program.classes.push(class.clone());
                (self.program.classes.len() - 1) as u32
            }
        }
    }

    fn emit_const(&mut self, v: Value) {
        let idx = self.const_idx(v);
        self.program.ops.push(Op::Const(idx));
        self.push(1);
    }

    /// Emits ops evaluating `expr`, leaving exactly one value on the
    /// stack.
    fn emit(&mut self, expr: &Expr) {
        if !matches!(expr, Expr::Literal(_)) {
            if let Some(v) = fold(expr) {
                self.program.folded += (expr.node_count() as u32).saturating_sub(1);
                self.emit_const(v);
                return;
            }
        }
        match expr {
            Expr::Literal(v) => self.emit_const(v.clone()),
            Expr::SelfRef => {
                self.program.ops.push(Op::SelfVal);
                self.push(1);
            }
            Expr::Env(key) => {
                let idx = self.name_idx(key);
                self.program.ops.push(Op::Env(idx));
                self.push(1);
            }
            Expr::Pre(key) => {
                let idx = self.name_idx(key);
                self.program.ops.push(Op::Pre(idx));
                self.push(1);
            }
            Expr::Arg(i) => {
                self.program.ops.push(Op::Arg(*i as u32));
                self.push(1);
            }
            Expr::MethodResult => {
                self.program.ops.push(Op::MethodResult);
                self.push(1);
            }
            Expr::Count(class) => {
                let idx = self.class_idx(class);
                self.program.ops.push(Op::Count(idx));
                self.push(1);
            }
            Expr::Size(inner) => {
                self.emit(inner);
                self.program.ops.push(Op::Size);
            }
            Expr::Field(inner, field) => {
                self.emit(inner);
                let idx = self.name_idx(field);
                self.program.ops.push(Op::Field(idx));
            }
            Expr::Unary(op, inner) => {
                self.emit(inner);
                self.program.ops.push(match op {
                    UnaryOp::Not => Op::Not,
                    UnaryOp::Neg => Op::Neg,
                });
            }
            Expr::Binary(op, left, right) => match op {
                BinOp::And => self.emit_short_circuit(left, right, false, false),
                BinOp::Or => self.emit_short_circuit(left, right, true, true),
                BinOp::Implies => self.emit_short_circuit(left, right, false, true),
                _ => {
                    self.emit(left);
                    self.emit(right);
                    self.program.ops.push(Op::Bin(*op));
                    self.pop(1);
                }
            },
        }
    }

    /// `and` / `or` / `implies`: evaluate the left side; when it
    /// decides the result (`on_truthy` selects the polarity), push the
    /// constant `short` and skip the right side; otherwise evaluate the
    /// right side and coerce it to a boolean.
    fn emit_short_circuit(&mut self, left: &Expr, right: &Expr, on_truthy: bool, short: bool) {
        self.emit(left);
        let jump_at = self.program.ops.len();
        // Placeholder target, patched once the right side is emitted.
        self.program.ops.push(if on_truthy {
            Op::JumpIfTruthy { target: 0 }
        } else {
            Op::JumpIfFalsy { target: 0, short }
        });
        // The condition is consumed; both continuations push one value.
        self.pop(1);
        self.emit(right);
        self.program.ops.push(Op::Truthy);
        let target = self.program.ops.len() as u32;
        match &mut self.program.ops[jump_at] {
            Op::JumpIfTruthy { target: t } | Op::JumpIfFalsy { target: t, .. } => *t = target,
            _ => unreachable!("patched op is the jump just pushed"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::{evaluate, parse};
    use super::*;
    use crate::{MapAccess, ValidationContext};
    use dedisys_types::{MethodName, ObjectId};

    fn world() -> (MapAccess, ObjectId) {
        let id = ObjectId::new("Flight", "F1");
        let mut w = MapAccess::new();
        w.put_field(&id, "soldTickets", Value::Int(70));
        w.put_field(&id, "seats", Value::Int(80));
        w.put_field(
            &id,
            "codes",
            Value::List(vec![Value::Int(1), Value::Int(2)]),
        );
        let report = ObjectId::new("RepairReport", "R1");
        w.put_field(&id, "repairReport", Value::Ref(report.clone()));
        w.put_field(&report, "componentKind", Value::from("Signal Cable"));
        (w, id)
    }

    /// Compiled evaluation must be indistinguishable from the
    /// interpreter: same value or same error, and the same accessed
    /// object set, for every expression form of the language.
    #[test]
    fn interpreter_equivalence() {
        let sources = [
            "self.soldTickets <= self.seats",
            "self.soldTickets + 11 <= self.seats",
            "self.repairReport.componentKind = \"Signal Cable\"",
            "self.seats > 0 or self.missing.seats > 0",
            "false and self.missing.seats > 0",
            "true implies self.soldTickets < self.seats",
            "false implies self.missing.seats > 0",
            "not (self.soldTickets > self.seats)",
            "-self.soldTickets < 0",
            "7 / 2 = 3 and 7.0 / 2 = 3.5 and 7 % 3 = 1",
            "1 / 0",
            "1 = 1.0",
            "1 <> 2",
            "\"a\" + \"b\" = \"ab\"",
            "size(self.codes) = 2",
            "size(\"abc\") = 3",
            "size(1)",
            "count(\"Flight\") = 1",
            "env(\"partitionWeight\") >= 0.5",
            "env(\"missing\") = null",
            "arg(0) = 3",
            "result() = pre(\"sold\") + arg(0)",
            "1 + \"a\"",
            "1 < \"a\"",
            "null.field",
            "-\"a\"",
            "self.seats = 80 and self.soldTickets = 70 or 1 / 0 > 0",
        ];
        for source in sources {
            let ast = parse(source).unwrap();
            let program = compile(&ast);

            let (mut w, id) = world();
            let mut ctx = ValidationContext::for_method(
                id.clone(),
                MethodName::from("sellTickets"),
                vec![Value::Int(3)],
                &mut w,
            );
            ctx.set_result(Value::Int(8));
            ctx.store_pre("sold", Value::Int(5));
            ctx.set_env("partitionWeight", Value::Float(0.5));
            let interpreted = evaluate(&ast, &mut ctx);
            let interpreted_accessed = ctx.accessed_objects().clone();
            drop(ctx);

            let (mut w, id) = world();
            let mut ctx = ValidationContext::for_method(
                id,
                MethodName::from("sellTickets"),
                vec![Value::Int(3)],
                &mut w,
            );
            ctx.set_result(Value::Int(8));
            ctx.store_pre("sold", Value::Int(5));
            ctx.set_env("partitionWeight", Value::Float(0.5));
            let compiled = program.evaluate(&mut ctx);
            let compiled_accessed = ctx.accessed_objects().clone();

            assert_eq!(interpreted, compiled, "value diverged for `{source}`");
            assert_eq!(
                interpreted_accessed, compiled_accessed,
                "accessed set diverged for `{source}`"
            );
        }
    }

    #[test]
    fn missing_context_object_errors_identically() {
        let ast = parse("self.seats > 0").unwrap();
        let program = compile(&ast);
        let mut w = MapAccess::new();
        let mut ctx = ValidationContext::for_query(&mut w);
        let mut ctx2_world = MapAccess::new();
        let mut ctx2 = ValidationContext::for_query(&mut ctx2_world);
        assert_eq!(evaluate(&ast, &mut ctx), program.evaluate(&mut ctx2));
    }

    #[test]
    fn short_circuit_skips_unreachable_branch() {
        let (mut w, id) = world();
        let ghost = ObjectId::new("Flight", "GONE");
        w.put_field(&ghost, "seats", Value::Int(1));
        w.set_unreachable(&ghost, true);
        w.put_field(&id, "other", Value::Ref(ghost));
        let program = compile(&parse("self.seats > 0 or self.other.seats > 0").unwrap());
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(program.evaluate(&mut ctx), Ok(Value::Bool(true)));
    }

    #[test]
    fn constant_subexpressions_fold() {
        let program = compile(&parse("1 + 2 * 3 = 7").unwrap());
        // The whole expression is context-free: one Const op.
        assert_eq!(program.op_count(), 1);
        assert!(program.folded_nodes() > 0);
        let mut w = MapAccess::new();
        let mut ctx = ValidationContext::for_query(&mut w);
        assert_eq!(program.evaluate(&mut ctx), Ok(Value::Bool(true)));

        // Short-circuit folding never folds a division by zero away
        // from the evaluated path…
        let program = compile(&parse("1 / 0 > 0").unwrap());
        let mut w = MapAccess::new();
        let mut ctx = ValidationContext::for_query(&mut w);
        assert!(program.evaluate(&mut ctx).is_err());

        // …but a short-circuited error branch folds to the constant.
        let program = compile(&parse("false and 1 / 0 > 0").unwrap());
        assert_eq!(program.op_count(), 1);
    }

    #[test]
    fn read_set_analysis() {
        let rs = |source: &str| compile(&parse(source).unwrap()).read_set().clone();

        let simple = rs("self.soldTickets <= self.seats");
        assert_eq!(simple.self_fields.len(), 2);
        assert!(simple.self_fields.contains("seats"));
        assert!(!simple.cross_object);
        assert!(!simple.call_dependent);
        assert!(simple.cacheable());

        assert!(rs("self.repairReport.componentKind = \"x\"").cross_object);
        assert!(!rs("self.repairReport.componentKind = \"x\"").cacheable());
        assert!(rs("count(\"Flight\") > 0").cross_object);
        assert!(rs("arg(0) > 0").call_dependent);
        assert!(rs("pre(\"sold\") > 0").call_dependent);
        assert!(rs("result() > 0").call_dependent);

        let env = rs("env(\"quota\") > 0");
        assert!(env.env_keys.contains("quota"));
        assert!(env.cacheable(), "non-volatile env keys stay cacheable");
        assert!(!rs("env(\"partitionWeight\") > 0.5").cacheable());
        assert!(!rs("env(\"healthy\")").cacheable());
        assert!(!rs("env(\"partitionWeightUnits\") > 0").cacheable());
    }

    #[test]
    fn arena_pools_deduplicate() {
        let program = compile(&parse("self.a = self.b and self.a = self.a").unwrap());
        // `a` and `b` once each in the name pool.
        assert_eq!(program.names.len(), 2);
        assert!(program.max_stack >= 2);
    }
}
