//! An OCL-like constraint expression language.
//!
//! Constraints are usually attached to design models as OCL (§1.5,
//! Figure 1.6). This module provides a runtime-interpreted equivalent
//! so constraints can be stated declaratively in the deployment
//! descriptor:
//!
//! ```text
//! self.soldTickets <= self.seats
//! self.repairReport.componentKind = "Signal Controller" or
//!     self.repairReport.componentKind = "Signal Cable"
//! pre("size") + 1 = size(self.items)
//! ```
//!
//! Supported forms: literals (`1`, `2.5`, `"x"`, `true`, `null`),
//! `self` navigation through reference fields (`self.a.b`), arithmetic
//! (`+ - * / %`), comparison (`< <= > >= = <> != ==`), boolean
//! `and`/`or`/`not`/`implies`, `size(e)` for lists and strings,
//! `count("Class")` (number of reachable objects of a class), `arg(i)`
//! (method argument), `result()` (method result, postconditions),
//! `pre("key")` (value snapshotted before the invocation) and
//! `env("key")` (middleware-provided environment values such as the
//! partition weight, §5.5.2).
//!
//! The interpreter doubles as the *slow, tool-generated* validation
//! strategy of Chapter 2's comparison (the Dresden-OCL analogue).

mod ast;
pub mod compile;
mod eval;
mod lexer;
mod parser;

pub use ast::{BinOp, Expr, UnaryOp};
pub use compile::{compile, Program};
pub use eval::evaluate;
pub use lexer::{tokenize, Token};
pub use parser::parse;

use crate::constraint::{CompiledInfo, ConstraintEngine, ReadSet};
use crate::{Constraint, ValidationContext};
use dedisys_types::{Error, Result};
use std::sync::OnceLock;

/// A constraint whose validation logic is an expression — interpreted
/// over the AST, or lowered once to a [`Program`] and run by the stack
/// VM (see [`ConstraintEngine`]).
#[derive(Debug, Clone)]
pub struct ExprConstraint {
    source: String,
    ast: Expr,
    /// Lazily-compiled program; populated on first compiled-engine use
    /// (or eagerly by the cluster at build time).
    program: OnceLock<Program>,
}

impl ExprConstraint {
    /// Parses `source` into an expression constraint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Expr`] on lexical or syntax errors.
    ///
    /// ```
    /// use dedisys_constraints::expr::ExprConstraint;
    /// assert!(ExprConstraint::parse("self.soldTickets <= self.seats").is_ok());
    /// assert!(ExprConstraint::parse("self.soldTickets <=").is_err());
    /// ```
    pub fn parse(source: &str) -> Result<Self> {
        let ast = parse(source)?;
        Ok(Self {
            source: source.to_owned(),
            ast,
            program: OnceLock::new(),
        })
    }

    /// The original source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The parsed expression.
    pub fn ast(&self) -> &Expr {
        &self.ast
    }

    /// The compiled program, lowering the AST on first use.
    pub fn program(&self) -> &Program {
        self.program.get_or_init(|| compile(&self.ast))
    }
}

impl Constraint for ExprConstraint {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        let value = evaluate(&self.ast, ctx)?;
        Ok(value.truthy())
    }

    fn validate_with(
        &self,
        engine: ConstraintEngine,
        ctx: &mut ValidationContext<'_>,
    ) -> Result<bool> {
        match engine {
            ConstraintEngine::Interpreted => self.validate(ctx),
            ConstraintEngine::Compiled => Ok(self.program().evaluate(ctx)?.truthy()),
        }
    }

    fn read_set(&self) -> Option<&ReadSet> {
        Some(self.program().read_set())
    }

    fn compiled(&self) -> Option<CompiledInfo> {
        Some(self.program().info())
    }
}

/// Parses and immediately evaluates `source` (tests, REPL-style use).
///
/// # Errors
///
/// Propagates parse and evaluation failures.
pub fn eval_str(source: &str, ctx: &mut ValidationContext<'_>) -> Result<dedisys_types::Value> {
    let ast = parse(source)?;
    evaluate(&ast, ctx)
}

/// Helper constructing an [`Error::Expr`].
pub(crate) fn expr_err(msg: impl Into<String>) -> Error {
    Error::Expr(msg.into())
}

// The interpreter is a pure function over the AST; the parallel batch
// engine relies on `ExprConstraint` being shareable across worker
// threads.
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    fn _expr_constraint_is_thread_safe() {
        assert_send_sync::<ExprConstraint>();
        assert_send_sync::<Expr>();
    }
};
