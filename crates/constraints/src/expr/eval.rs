//! The expression interpreter.

use super::ast::{BinOp, Expr, UnaryOp};
use super::expr_err;
use crate::ValidationContext;
use dedisys_types::{Result, Value};
use std::cmp::Ordering;

/// Evaluates `expr` against the validation context.
///
/// # Errors
///
/// * [`dedisys_types::Error::Expr`] — type errors, division by zero,
///   navigation from non-references, missing `self`.
/// * Object-access failures (unreachable objects) propagate unchanged,
///   making the surrounding constraint uncheckable.
pub fn evaluate(expr: &Expr, ctx: &mut ValidationContext<'_>) -> Result<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::SelfRef => {
            let id = ctx.context_object().cloned().ok_or_else(missing_self)?;
            Ok(Value::Ref(id))
        }
        Expr::Env(key) => Ok(ctx.env(key).cloned().unwrap_or(Value::Null)),
        Expr::Pre(key) => Ok(ctx.pre(key).cloned().unwrap_or(Value::Null)),
        Expr::Arg(i) => Ok(ctx.args().get(*i).cloned().unwrap_or(Value::Null)),
        Expr::MethodResult => Ok(ctx.result().cloned().unwrap_or(Value::Null)),
        Expr::Count(class) => Ok(Value::Int(ctx.objects_of_class(class).len() as i64)),
        Expr::Size(inner) => {
            let v = evaluate(inner, ctx)?;
            size_value(v)
        }
        Expr::Field(inner, field) => {
            let v = evaluate(inner, ctx)?;
            match v {
                Value::Ref(id) => ctx.field(&id, field),
                other => Err(nav_error(field, &other)),
            }
        }
        Expr::Unary(op, inner) => {
            let v = evaluate(inner, ctx)?;
            match op {
                UnaryOp::Not => Ok(Value::Bool(!v.truthy())),
                UnaryOp::Neg => negate_value(v),
            }
        }
        Expr::Binary(op, left, right) => eval_binary(*op, left, right, ctx),
    }
}

/// The `'self' used without a context object` error — shared between
/// interpreter and VM so the two engines fail identically.
pub(super) fn missing_self() -> dedisys_types::Error {
    expr_err("'self' used without a context object")
}

/// `size(v)` semantics, shared between interpreter and VM.
pub(super) fn size_value(v: Value) -> Result<Value> {
    match v {
        Value::List(items) => Ok(Value::Int(items.len() as i64)),
        Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
        other => Err(expr_err(format!(
            "size() expects a list or string, found {}",
            other.type_name()
        ))),
    }
}

/// Unary minus semantics, shared between interpreter and VM.
pub(super) fn negate_value(v: Value) -> Result<Value> {
    match v {
        Value::Int(n) => Ok(Value::Int(-n)),
        Value::Float(f) => Ok(Value::Float(-f)),
        other => Err(expr_err(format!("cannot negate {}", other.type_name()))),
    }
}

/// The navigation error for a non-reference base, shared between
/// interpreter and VM.
pub(super) fn nav_error(field: &str, v: &Value) -> dedisys_types::Error {
    match v {
        Value::Null => expr_err(format!("navigation '.{field}' on null")),
        other => expr_err(format!(
            "navigation '.{field}' on {}, expected an object reference",
            other.type_name()
        )),
    }
}

fn eval_binary(
    op: BinOp,
    left: &Expr,
    right: &Expr,
    ctx: &mut ValidationContext<'_>,
) -> Result<Value> {
    // Short-circuit boolean forms first.
    match op {
        BinOp::And => {
            let l = evaluate(left, ctx)?;
            if !l.truthy() {
                return Ok(Value::Bool(false));
            }
            return Ok(Value::Bool(evaluate(right, ctx)?.truthy()));
        }
        BinOp::Or => {
            let l = evaluate(left, ctx)?;
            if l.truthy() {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(evaluate(right, ctx)?.truthy()));
        }
        BinOp::Implies => {
            let l = evaluate(left, ctx)?;
            if !l.truthy() {
                return Ok(Value::Bool(true));
            }
            return Ok(Value::Bool(evaluate(right, ctx)?.truthy()));
        }
        _ => {}
    }

    let l = evaluate(left, ctx)?;
    let r = evaluate(right, ctx)?;
    apply_eager(op, &l, &r)
}

/// Applies a non-short-circuiting binary operator to two evaluated
/// operands — the single definition of eager binary semantics, used by
/// the interpreter, the stack VM and the constant folder.
pub(super) fn apply_eager(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinOp::Add => match (l, r) {
            (Value::Str(a), Value::Str(b)) => Ok(Value::Str(format!("{a}{b}"))),
            _ => numeric(op, l, r),
        },
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => numeric(op, l, r),
        BinOp::Eq => Ok(Value::Bool(values_equal(l, r))),
        BinOp::Ne => Ok(Value::Bool(!values_equal(l, r))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = l.compare(r).ok_or_else(|| {
                expr_err(format!(
                    "cannot compare {} with {}",
                    l.type_name(),
                    r.type_name()
                ))
            })?;
            let result = match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!("comparison op"),
            };
            Ok(Value::Bool(result))
        }
        BinOp::And | BinOp::Or | BinOp::Implies => unreachable!("handled above"),
    }
}

fn values_equal(l: &Value, r: &Value) -> bool {
    if l == r {
        return true;
    }
    // Numeric cross-type equality: 1 = 1.0
    matches!((l.as_float(), r.as_float()), (Some(a), Some(b)) if a == b)
}

fn numeric(op: BinOp, l: &Value, r: &Value) -> Result<Value> {
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            BinOp::Add => Ok(Value::Int(a + b)),
            BinOp::Sub => Ok(Value::Int(a - b)),
            BinOp::Mul => Ok(Value::Int(a * b)),
            BinOp::Div => {
                if *b == 0 {
                    Err(expr_err("division by zero"))
                } else {
                    Ok(Value::Int(a / b))
                }
            }
            BinOp::Rem => {
                if *b == 0 {
                    Err(expr_err("division by zero"))
                } else {
                    Ok(Value::Int(a % b))
                }
            }
            _ => unreachable!("numeric op"),
        };
    }
    let (a, b) = match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(expr_err(format!(
                "arithmetic on {} and {}",
                l.type_name(),
                r.type_name()
            )))
        }
    };
    match op {
        BinOp::Add => Ok(Value::Float(a + b)),
        BinOp::Sub => Ok(Value::Float(a - b)),
        BinOp::Mul => Ok(Value::Float(a * b)),
        BinOp::Div => {
            if b == 0.0 {
                Err(expr_err("division by zero"))
            } else {
                Ok(Value::Float(a / b))
            }
        }
        BinOp::Rem => Err(expr_err("remainder on floats is not supported")),
        _ => unreachable!("numeric op"),
    }
}

#[cfg(test)]
mod tests {
    use super::super::eval_str;
    use crate::{MapAccess, ValidationContext};
    use dedisys_types::{Error, MethodName, ObjectId, Value};

    fn flight_world(sold: i64, seats: i64) -> (MapAccess, ObjectId) {
        let id = ObjectId::new("Flight", "F1");
        let mut w = MapAccess::new();
        w.put_field(&id, "soldTickets", Value::Int(sold));
        w.put_field(&id, "seats", Value::Int(seats));
        (w, id)
    }

    #[test]
    fn ticket_constraint_evaluates() {
        let (mut w, id) = flight_world(70, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(
            eval_str("self.soldTickets <= self.seats", &mut ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("self.soldTickets + 11 <= self.seats", &mut ctx).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn navigation_through_references() {
        let alarm = ObjectId::new("Alarm", "A1");
        let report = ObjectId::new("RepairReport", "R1");
        let mut w = MapAccess::new();
        w.put_field(&alarm, "repairReport", Value::Ref(report.clone()));
        w.put_field(&report, "componentKind", Value::from("Signal Cable"));
        let mut ctx = ValidationContext::for_invariant(alarm, &mut w);
        assert_eq!(
            eval_str(
                "self.repairReport.componentKind = \"Signal Cable\"",
                &mut ctx
            )
            .unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn unreachable_objects_propagate() {
        let (mut w, id) = flight_world(1, 2);
        w.set_unreachable(&id, true);
        let mut ctx = ValidationContext::for_invariant(id.clone(), &mut w);
        assert_eq!(
            eval_str("self.seats > 0", &mut ctx),
            Err(Error::ObjectUnreachable(id))
        );
    }

    #[test]
    fn short_circuit_avoids_unreachable_branch() {
        let (mut w, id) = flight_world(1, 2);
        let ghost = ObjectId::new("Flight", "GONE");
        w.put_field(&ghost, "seats", Value::Int(1));
        w.set_unreachable(&ghost, true);
        w.put_field(&id, "other", Value::Ref(ghost));
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        // Left side true → right side (unreachable) never evaluated.
        assert_eq!(
            eval_str("self.seats > 0 or self.other.seats > 0", &mut ctx).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn implies_semantics() {
        let (mut w, id) = flight_world(0, 0);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(
            eval_str("false implies false", &mut ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("true implies false", &mut ctx).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn arithmetic_and_division_by_zero() {
        let (mut w, id) = flight_world(0, 0);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(eval_str("7 / 2", &mut ctx).unwrap(), Value::Int(3));
        assert_eq!(eval_str("7.0 / 2", &mut ctx).unwrap(), Value::Float(3.5));
        assert_eq!(eval_str("7 % 3", &mut ctx).unwrap(), Value::Int(1));
        assert!(eval_str("1 / 0", &mut ctx).is_err());
        assert_eq!(
            eval_str("\"a\" + \"b\"", &mut ctx).unwrap(),
            Value::from("ab")
        );
    }

    #[test]
    fn numeric_cross_type_equality() {
        let (mut w, id) = flight_world(0, 0);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(eval_str("1 = 1.0", &mut ctx).unwrap(), Value::Bool(true));
        assert_eq!(eval_str("1 <> 2", &mut ctx).unwrap(), Value::Bool(true));
    }

    #[test]
    fn builtins_in_method_context() {
        let (mut w, id) = flight_world(5, 10);
        let mut ctx = ValidationContext::for_method(
            id,
            MethodName::from("sellTickets"),
            vec![Value::Int(3)],
            &mut w,
        );
        ctx.set_result(Value::Int(8));
        ctx.store_pre("sold", Value::Int(5));
        ctx.set_env("partitionWeight", Value::Float(0.5));
        assert_eq!(eval_str("arg(0)", &mut ctx).unwrap(), Value::Int(3));
        assert_eq!(eval_str("result()", &mut ctx).unwrap(), Value::Int(8));
        assert_eq!(
            eval_str("result() = pre(\"sold\") + arg(0)", &mut ctx).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_str("env(\"partitionWeight\") >= 0.5", &mut ctx).unwrap(),
            Value::Bool(true)
        );
    }

    #[test]
    fn count_and_size() {
        let (mut w, id) = flight_world(0, 0);
        w.put_field(&ObjectId::new("Flight", "F2"), "seats", Value::Int(1));
        w.put_field(
            &id,
            "codes",
            Value::List(vec![Value::Int(1), Value::Int(2)]),
        );
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert_eq!(
            eval_str("count(\"Flight\")", &mut ctx).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            eval_str("size(self.codes)", &mut ctx).unwrap(),
            Value::Int(2)
        );
        assert_eq!(eval_str("size(\"abc\")", &mut ctx).unwrap(), Value::Int(3));
        assert!(eval_str("size(1)", &mut ctx).is_err());
    }

    #[test]
    fn type_errors_are_reported() {
        let (mut w, id) = flight_world(0, 0);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        assert!(eval_str("1 + \"a\"", &mut ctx).is_err());
        assert!(eval_str("1 < \"a\"", &mut ctx).is_err());
        assert!(eval_str("null.field", &mut ctx).is_err());
        assert!(eval_str("-\"a\"", &mut ctx).is_err());
    }
}
