//! The constraint trait and its runtime metadata (Figure 4.3).

use crate::{ContextPreparation, FreshnessCriterion, ValidationContext};
use dedisys_types::{ClassName, ConstraintName, MethodSignature, Result, SatisfactionDegree};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// How declarative constraints are executed (Chapter 2 attributes the
/// Dresden-OCL ~405× overhead to *interpretive* validation).
///
/// The engine is verdict-transparent: for any workload the verdicts,
/// threats and statistics are identical under both settings — only the
/// per-check virtual-time cost (and wall clock) changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConstraintEngine {
    /// Walk the expression AST on every validation (the tool-generated
    /// Dresden-OCL analogue of Chapter 2).
    #[default]
    Interpreted,
    /// Run the flat program lowered once per constraint by
    /// [`fn@crate::expr::compile`] on a stack VM.
    Compiled,
}

/// Environment keys whose values change with the topology (partition
/// weight, health). A verdict that read them cannot be memoized by
/// object versions alone, so the CCM verdict cache bypasses any
/// constraint whose [`ReadSet`] touches them.
pub const VOLATILE_ENV_KEYS: &[&str] = &[
    "partitionWeight",
    "partitionWeightUnits",
    "totalWeightUnits",
    "healthy",
];

/// The static read-set of a compiled constraint program: everything a
/// validation's outcome can depend on besides the context object's own
/// attribute values. Computed once at compile time; the CCM verdict
/// cache uses it to decide whether a verdict is memoizable by
/// `(constraint, context object, version)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReadSet {
    /// `self` attributes read (`self.seats`, …).
    pub self_fields: BTreeSet<String>,
    /// Environment keys read via `env("…")`.
    pub env_keys: BTreeSet<String>,
    /// Whether the program navigates beyond the context object
    /// (`self.a.b`, `count("Class")`) — its outcome then depends on
    /// objects the version key does not cover.
    pub cross_object: bool,
    /// Whether the program reads per-call inputs (`arg(i)`, `result()`,
    /// `pre("…")`).
    pub call_dependent: bool,
}

impl ReadSet {
    /// Whether a verdict of this program may be memoized by
    /// `(constraint, context object, context-object version)`: no
    /// cross-object navigation, no per-call inputs, no volatile
    /// environment values.
    pub fn cacheable(&self) -> bool {
        !self.cross_object
            && !self.call_dependent
            && self
                .env_keys
                .iter()
                .all(|k| !VOLATILE_ENV_KEYS.contains(&k.as_str()))
    }
}

/// Summary of one lowered constraint program, reported by
/// [`Constraint::compiled`] for telemetry (`constraint_compiled`
/// events).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledInfo {
    /// Number of VM ops in the lowered program.
    pub ops: u32,
    /// Distinct `self` fields + env keys in the static read-set.
    pub reads: u32,
    /// Whether verdicts are memoizable ([`ReadSet::cacheable`]).
    pub cacheable: bool,
}

/// When a constraint is validated (§1.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintKind {
    /// Checked before the affected method executes.
    Precondition,
    /// Checked after the affected method executed.
    Postcondition,
    /// Invariant checked at the end of each affected operation within a
    /// transaction ("hard", \[JQ92\]).
    HardInvariant,
    /// Invariant checked at the end of the transaction ("soft").
    SoftInvariant,
    /// §5.5.3 improvement: behaves like a soft invariant in healthy
    /// mode; in degraded mode it is **not validated at all** — a threat
    /// is recorded directly for re-evaluation during reconciliation.
    AsyncInvariant,
}

impl ConstraintKind {
    /// Whether this kind is an invariant (checkable at any time,
    /// re-evaluated during reconciliation — §3).
    pub fn is_invariant(self) -> bool {
        matches!(
            self,
            ConstraintKind::HardInvariant
                | ConstraintKind::SoftInvariant
                | ConstraintKind::AsyncInvariant
        )
    }

    /// Parses the configuration spelling (`"PRE"`, `"POST"`, `"HARD"`,
    /// `"SOFT"`, `"ASYNC"`).
    pub fn parse_config(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "PRE" | "PRECONDITION" => Some(ConstraintKind::Precondition),
            "POST" | "POSTCONDITION" => Some(ConstraintKind::Postcondition),
            "HARD" => Some(ConstraintKind::HardInvariant),
            "SOFT" => Some(ConstraintKind::SoftInvariant),
            "ASYNC" => Some(ConstraintKind::AsyncInvariant),
            _ => None,
        }
    }
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintKind::Precondition => "precondition",
            ConstraintKind::Postcondition => "postcondition",
            ConstraintKind::HardInvariant => "hard invariant",
            ConstraintKind::SoftInvariant => "soft invariant",
            ConstraintKind::AsyncInvariant => "async invariant",
        };
        f.write_str(s)
    }
}

/// Whether a constraint may be traded during degraded mode (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ConstraintPriority {
    /// Critical for correct operation; must never be violated.
    /// Consistency threats are rejected automatically.
    #[default]
    NonTradeable,
    /// May temporarily be relaxed in degraded mode to increase
    /// availability (the configuration spelling is `RELAXABLE`).
    Tradeable,
}

impl ConstraintPriority {
    /// Parses the configuration spelling.
    pub fn parse_config(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "RELAXABLE" | "TRADEABLE" => Some(ConstraintPriority::Tradeable),
            "CRITICAL" | "NON_TRADEABLE" | "NONTRADEABLE" => Some(ConstraintPriority::NonTradeable),
            _ => None,
        }
    }
}

/// Intra- vs inter-object scope (§3.1, Figure 3.2).
///
/// Intra-object constraints touch only attributes of a single object;
/// under copy-selection replica reconciliation they cannot be violated
/// retrospectively, so an LCC may report `Satisfied` instead of
/// `PossiblySatisfied`, reducing the threat volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ObjectScope {
    /// Needs access to more than one object.
    #[default]
    InterObject,
    /// Evaluable on a single object's attributes.
    IntraObject,
}

/// The validation contract between middleware and application.
///
/// One implementing type represents exactly one integrity constraint
/// (§1.5). `validate` returns `Ok(true)` when satisfied, `Ok(false)`
/// when violated, or an error when checking is impossible (unreachable
/// objects) — the middleware maps that to `Uncheckable`.
pub trait Constraint: Send + Sync {
    /// Validates the constraint against the objects reachable through
    /// `ctx`.
    ///
    /// # Errors
    ///
    /// [`dedisys_types::Error::ObjectUnreachable`] (usually propagated
    /// from field access) makes the constraint uncheckable.
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool>;

    /// Called before the affected method runs, allowing postconditions
    /// to snapshot `@pre` state into the context (§4.2.1).
    fn before_method_invocation(&self, ctx: &mut ValidationContext<'_>) {
        let _ = ctx;
    }

    /// Validates under the given execution engine. Declarative
    /// constraints ([`crate::expr::ExprConstraint`]) dispatch to their
    /// compiled program for [`ConstraintEngine::Compiled`]; imperative
    /// constraints have nothing to compile and always interpret.
    ///
    /// # Errors
    ///
    /// As for [`Constraint::validate`].
    fn validate_with(
        &self,
        engine: ConstraintEngine,
        ctx: &mut ValidationContext<'_>,
    ) -> Result<bool> {
        let _ = engine;
        self.validate(ctx)
    }

    /// The static read-set of this constraint, when one can be derived
    /// (declarative constraints only). `None` means the middleware must
    /// assume the validation may read anything — no verdict caching.
    fn read_set(&self) -> Option<&ReadSet> {
        None
    }

    /// Forces compilation (when supported) and reports the program
    /// summary; `None` for imperative constraints.
    fn compiled(&self) -> Option<CompiledInfo> {
        None
    }
}

impl<F> Constraint for F
where
    F: Fn(&mut ValidationContext<'_>) -> Result<bool> + Send + Sync,
{
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        self(ctx)
    }
}

/// Runtime metadata of a constraint (the attribute block of Figure
/// 4.3).
#[derive(Debug, Clone)]
pub struct ConstraintMeta {
    /// Unique name within the application.
    pub name: ConstraintName,
    /// Validation kind.
    pub kind: ConstraintKind,
    /// Tradeable or not.
    pub priority: ConstraintPriority,
    /// Degraded-mode acceptance floor for *declarative* negotiation:
    /// threats at or above this degree are acceptable.
    pub min_satisfaction_degree: SatisfactionDegree,
    /// Human description.
    pub description: String,
    /// Whether validation starts from a context object (`true`) or from
    /// a query (`false`, §3.2.2 case 2).
    pub needs_context_object: bool,
    /// Intra- vs inter-object scope.
    pub scope: ObjectScope,
    /// Freshness criteria, one per affected class at most.
    pub freshness: Vec<FreshnessCriterion>,
}

impl ConstraintMeta {
    /// Creates metadata with the common defaults: hard invariant,
    /// non-tradeable, context object required, inter-object scope.
    pub fn new(name: impl Into<ConstraintName>) -> Self {
        Self {
            name: name.into(),
            kind: ConstraintKind::HardInvariant,
            priority: ConstraintPriority::NonTradeable,
            min_satisfaction_degree: SatisfactionDegree::Satisfied,
            description: String::new(),
            needs_context_object: true,
            scope: ObjectScope::InterObject,
            freshness: Vec::new(),
        }
    }

    /// Sets the kind.
    pub fn kind(mut self, kind: ConstraintKind) -> Self {
        self.kind = kind;
        self
    }

    /// Marks the constraint tradeable with the given acceptance floor.
    pub fn tradeable(mut self, min_degree: SatisfactionDegree) -> Self {
        self.priority = ConstraintPriority::Tradeable;
        self.min_satisfaction_degree = min_degree;
        self
    }

    /// Sets the description.
    pub fn describe(mut self, text: impl Into<String>) -> Self {
        self.description = text.into();
        self
    }

    /// Marks the constraint intra-object.
    pub fn intra_object(mut self) -> Self {
        self.scope = ObjectScope::IntraObject;
        self
    }

    /// Declares validation to start from a query instead of a context
    /// object.
    pub fn query_based(mut self) -> Self {
        self.needs_context_object = false;
        self
    }

    /// Adds a freshness criterion.
    pub fn with_freshness(mut self, criterion: FreshnessCriterion) -> Self {
        self.freshness.push(criterion);
        self
    }
}

/// An affected method of a constraint: the trigger point plus how to
/// derive the context object from the invocation (§4.2.2).
#[derive(Debug, Clone)]
pub struct AffectedMethod {
    /// The triggering method.
    pub signature: MethodSignature,
    /// How to obtain the context object.
    pub preparation: ContextPreparation,
}

/// A constraint registered with the repository: metadata, affected
/// methods, context class and the implementation.
#[derive(Clone)]
pub struct RegisteredConstraint {
    /// The metadata.
    pub meta: ConstraintMeta,
    /// Context class for invariants (e.g. `RepairReport`).
    pub context_class: Option<ClassName>,
    /// Trigger points.
    pub affected_methods: Vec<AffectedMethod>,
    /// The validation implementation.
    pub implementation: Arc<dyn Constraint>,
    /// Runtime-toggleable enablement.
    pub enabled: bool,
}

impl fmt::Debug for RegisteredConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RegisteredConstraint")
            .field("name", &self.meta.name)
            .field("kind", &self.meta.kind)
            .field("priority", &self.meta.priority)
            .field("context_class", &self.context_class)
            .field("affected_methods", &self.affected_methods.len())
            .field("enabled", &self.enabled)
            .finish()
    }
}

impl RegisteredConstraint {
    /// Creates a registered constraint.
    pub fn new(meta: ConstraintMeta, implementation: Arc<dyn Constraint>) -> Self {
        Self {
            meta,
            context_class: None,
            affected_methods: Vec::new(),
            implementation,
            enabled: true,
        }
    }

    /// Sets the context class.
    pub fn context_class(mut self, class: impl Into<ClassName>) -> Self {
        self.context_class = Some(class.into());
        self
    }

    /// Adds an affected method.
    pub fn affects(
        mut self,
        class: impl Into<ClassName>,
        method: impl Into<dedisys_types::MethodName>,
        preparation: ContextPreparation,
    ) -> Self {
        self.affected_methods.push(AffectedMethod {
            signature: MethodSignature::new(class.into(), method.into()),
            preparation,
        });
        self
    }

    /// The constraint name.
    pub fn name(&self) -> &ConstraintName {
        &self.meta.name
    }

    /// Whether `sig` triggers this constraint, and with which
    /// preparation.
    pub fn preparation_for(&self, sig: &MethodSignature) -> Option<&ContextPreparation> {
        self.affected_methods
            .iter()
            .find(|m| &m.signature == sig)
            .map(|m| &m.preparation)
    }

    /// Whether this constraint may be traded at all (§3.2).
    pub fn is_tradeable(&self) -> bool {
        self.meta.priority == ConstraintPriority::Tradeable
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapAccess;
    use dedisys_types::{ObjectId, Value};

    #[test]
    fn kind_parsing_and_classification() {
        assert_eq!(
            ConstraintKind::parse_config("HARD"),
            Some(ConstraintKind::HardInvariant)
        );
        assert_eq!(
            ConstraintKind::parse_config("pre"),
            Some(ConstraintKind::Precondition)
        );
        assert!(ConstraintKind::HardInvariant.is_invariant());
        assert!(!ConstraintKind::Precondition.is_invariant());
        assert!(ConstraintKind::AsyncInvariant.is_invariant());
    }

    #[test]
    fn priority_parsing() {
        assert_eq!(
            ConstraintPriority::parse_config("RELAXABLE"),
            Some(ConstraintPriority::Tradeable)
        );
        assert_eq!(
            ConstraintPriority::parse_config("critical"),
            Some(ConstraintPriority::NonTradeable)
        );
    }

    #[test]
    fn closure_constraints_and_registration() {
        let implementation = Arc::new(|ctx: &mut ValidationContext<'_>| {
            let id = ctx.context_object().cloned().expect("has context");
            let sold = ctx.field(&id, "soldTickets")?.as_int().unwrap_or(0);
            let seats = ctx.field(&id, "seats")?.as_int().unwrap_or(0);
            Ok(sold <= seats)
        });
        let registered = RegisteredConstraint::new(
            ConstraintMeta::new("TicketConstraint")
                .tradeable(dedisys_types::SatisfactionDegree::PossiblySatisfied),
            implementation,
        )
        .context_class("Flight")
        .affects("Flight", "sellTickets", ContextPreparation::CalledObject);

        assert!(registered.is_tradeable());
        let sig = MethodSignature::new("Flight", "sellTickets");
        assert!(registered.preparation_for(&sig).is_some());
        assert!(registered
            .preparation_for(&MethodSignature::new("Flight", "getSeats"))
            .is_none());

        let flight = ObjectId::new("Flight", "F1");
        let mut world = MapAccess::new();
        world.put_field(&flight, "seats", Value::Int(80));
        world.put_field(&flight, "soldTickets", Value::Int(70));
        let mut ctx = ValidationContext::for_invariant(flight, &mut world);
        assert_eq!(registered.implementation.validate(&mut ctx), Ok(true));
    }

    #[test]
    fn meta_builder_defaults() {
        let meta = ConstraintMeta::new("C")
            .describe("d")
            .intra_object()
            .query_based();
        assert_eq!(meta.kind, ConstraintKind::HardInvariant);
        assert_eq!(meta.priority, ConstraintPriority::NonTradeable);
        assert_eq!(meta.scope, ObjectScope::IntraObject);
        assert!(!meta.needs_context_object);
    }
}
