//! Context preparation (`<preparation-class>` of Listing 4.1).
//!
//! An invariant is implemented against a specific context class; when a
//! method of a *different* class triggers it, the context object must be
//! derived from the invocation — e.g. `Alarm.setAlarmKind` triggers the
//! `ComponentKindReferenceConsistency` constraint whose context object
//! is the alarm's `RepairReport`, obtained via a getter.

use crate::ObjectAccess;
use dedisys_types::{ObjectId, Result, Value};

/// How to obtain a constraint's context object from an invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextPreparation {
    /// The called object *is* the context object
    /// (`CalledObjectIsContextObject`).
    CalledObject,
    /// Follow a reference field of the called object
    /// (`ReferenceIsContextObject` with a getter parameter).
    ReferenceField(String),
    /// The constraint needs no context object (query-based).
    None,
}

impl ContextPreparation {
    /// Resolves the context object for a call on `called`.
    ///
    /// # Errors
    ///
    /// * Propagates unreachable-object failures when following a
    ///   reference.
    /// * [`dedisys_types::Error::Config`] when a reference field does
    ///   not hold an object reference.
    pub fn resolve(
        &self,
        called: &ObjectId,
        access: &mut dyn ObjectAccess,
    ) -> Result<Option<ObjectId>> {
        match self {
            ContextPreparation::CalledObject => Ok(Some(called.clone())),
            ContextPreparation::ReferenceField(field) => {
                let value = access.field(called, field)?;
                match value {
                    Value::Ref(id) => Ok(Some(id)),
                    Value::Null => Err(dedisys_types::Error::Config(format!(
                        "reference field '{field}' of {called} is null"
                    ))),
                    other => Err(dedisys_types::Error::Config(format!(
                        "field '{field}' of {called} is not a reference (found {})",
                        other.type_name()
                    ))),
                }
            }
            ContextPreparation::None => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MapAccess;

    #[test]
    fn called_object_preparation() {
        let called = ObjectId::new("RepairReport", "R1");
        let mut w = MapAccess::new();
        let prep = ContextPreparation::CalledObject;
        assert_eq!(prep.resolve(&called, &mut w).unwrap(), Some(called));
    }

    #[test]
    fn reference_field_preparation() {
        let alarm = ObjectId::new("Alarm", "A1");
        let report = ObjectId::new("RepairReport", "R1");
        let mut w = MapAccess::new();
        w.put_field(&alarm, "repairReport", Value::Ref(report.clone()));
        let prep = ContextPreparation::ReferenceField("repairReport".into());
        assert_eq!(prep.resolve(&alarm, &mut w).unwrap(), Some(report));
    }

    #[test]
    fn non_reference_field_rejected() {
        let alarm = ObjectId::new("Alarm", "A1");
        let mut w = MapAccess::new();
        w.put_field(&alarm, "repairReport", Value::Int(3));
        let prep = ContextPreparation::ReferenceField("repairReport".into());
        assert!(prep.resolve(&alarm, &mut w).is_err());
    }

    #[test]
    fn unreachable_reference_propagates() {
        let alarm = ObjectId::new("Alarm", "A1");
        let mut w = MapAccess::new();
        w.put_field(&alarm, "repairReport", Value::Null);
        w.set_unreachable(&alarm, true);
        let prep = ContextPreparation::ReferenceField("repairReport".into());
        assert!(matches!(
            prep.resolve(&alarm, &mut w),
            Err(dedisys_types::Error::ObjectUnreachable(_))
        ));
    }

    #[test]
    fn none_preparation_yields_no_context() {
        let called = ObjectId::new("A", "1");
        let mut w = MapAccess::new();
        assert_eq!(
            ContextPreparation::None.resolve(&called, &mut w).unwrap(),
            None
        );
    }
}
