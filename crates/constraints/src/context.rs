//! The `ConstraintValidationContext` of Figure 4.3.

use dedisys_types::{ClassName, MethodName, ObjectId, Result, Value};
use std::collections::{BTreeMap, BTreeSet};

/// How constraint implementations reach application objects.
///
/// The middleware implements this against the entity container (with
/// replica-aware semantics); tests use [`MapAccess`]. Access failures
/// ([`dedisys_types::Error::ObjectUnreachable`]) bubble out of
/// `validate` and make the constraint uncheckable.
///
/// `Send` is a supertrait so validation contexts can be constructed
/// inside the worker threads of the deterministic parallel batch
/// engine; every access implementation is a view over shared
/// (`Sync`) middleware state.
pub trait ObjectAccess: Send {
    /// Reads `field` of `id`.
    ///
    /// # Errors
    ///
    /// * [`dedisys_types::Error::ObjectUnreachable`] — no replica of the
    ///   object is reachable.
    /// * [`dedisys_types::Error::ObjectNotFound`] — the object does not
    ///   exist.
    fn field(&mut self, id: &ObjectId, field: &str) -> Result<Value>;

    /// Ids of all reachable objects of `class` (query-based
    /// constraints).
    fn objects_of_class(&mut self, class: &ClassName) -> Vec<ObjectId>;
}

/// A simple in-memory [`ObjectAccess`] for tests and examples.
#[derive(Debug, Clone, Default)]
pub struct MapAccess {
    fields: BTreeMap<ObjectId, BTreeMap<String, Value>>,
    unreachable: BTreeSet<ObjectId>,
}

impl MapAccess {
    /// Creates an empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a field of an object.
    pub fn put_field(&mut self, id: &ObjectId, field: &str, value: Value) {
        self.fields
            .entry(id.clone())
            .or_default()
            .insert(field.to_owned(), value);
    }

    /// Marks an object unreachable (all replicas lost).
    pub fn set_unreachable(&mut self, id: &ObjectId, unreachable: bool) {
        if unreachable {
            self.unreachable.insert(id.clone());
        } else {
            self.unreachable.remove(id);
        }
    }
}

impl ObjectAccess for MapAccess {
    fn field(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        if self.unreachable.contains(id) {
            return Err(dedisys_types::Error::ObjectUnreachable(id.clone()));
        }
        let obj = self
            .fields
            .get(id)
            .ok_or_else(|| dedisys_types::Error::ObjectNotFound(id.clone()))?;
        Ok(obj.get(field).cloned().unwrap_or(Value::Null))
    }

    fn objects_of_class(&mut self, class: &ClassName) -> Vec<ObjectId> {
        self.fields
            .keys()
            .filter(|id| id.class() == class && !self.unreachable.contains(id))
            .cloned()
            .collect()
    }
}

/// The validation context handed to [`crate::Constraint::validate`].
///
/// Carries (depending on constraint kind, §4.2.1) the context object,
/// the called object, method and arguments, the method result for
/// postconditions, and a `@pre` store filled by
/// `before_method_invocation`. Every object touched through the
/// context is *gathered* (§4.2.3) so the CCMgr can ask the replication
/// manager about staleness afterwards.
pub struct ValidationContext<'a> {
    access: &'a mut dyn ObjectAccess,
    context_object: Option<ObjectId>,
    called_object: Option<ObjectId>,
    method: Option<MethodName>,
    args: Vec<Value>,
    result: Option<Value>,
    pre_state: BTreeMap<String, Value>,
    accessed: BTreeSet<ObjectId>,
    /// Extra values the middleware exposes to constraints — e.g. the
    /// current partition weight for partition-sensitive constraints
    /// (§5.5.2) under the key `"partitionWeight"`.
    environment: BTreeMap<String, Value>,
}

impl<'a> ValidationContext<'a> {
    /// Context for an invariant starting from `context_object`.
    pub fn for_invariant(context_object: ObjectId, access: &'a mut dyn ObjectAccess) -> Self {
        Self {
            access,
            context_object: Some(context_object),
            called_object: None,
            method: None,
            args: Vec::new(),
            result: None,
            pre_state: BTreeMap::new(),
            accessed: BTreeSet::new(),
            environment: BTreeMap::new(),
        }
    }

    /// Context for a query-based invariant (no context object).
    pub fn for_query(access: &'a mut dyn ObjectAccess) -> Self {
        Self {
            access,
            context_object: None,
            called_object: None,
            method: None,
            args: Vec::new(),
            result: None,
            pre_state: BTreeMap::new(),
            accessed: BTreeSet::new(),
            environment: BTreeMap::new(),
        }
    }

    /// Context for a pre-/postcondition of a method call.
    pub fn for_method(
        called_object: ObjectId,
        method: MethodName,
        args: Vec<Value>,
        access: &'a mut dyn ObjectAccess,
    ) -> Self {
        Self {
            access,
            context_object: Some(called_object.clone()),
            called_object: Some(called_object),
            method: Some(method),
            args,
            result: None,
            pre_state: BTreeMap::new(),
            accessed: BTreeSet::new(),
            environment: BTreeMap::new(),
        }
    }

    /// Overrides the context object (after context preparation).
    pub fn set_context_object(&mut self, id: Option<ObjectId>) {
        self.context_object = id;
    }

    /// The context object (`getContextObject()`).
    pub fn context_object(&self) -> Option<&ObjectId> {
        self.context_object.as_ref()
    }

    /// The called object (`getCalledObject()`).
    pub fn called_object(&self) -> Option<&ObjectId> {
        self.called_object.as_ref()
    }

    /// The invoked method (`getMethod()`).
    pub fn method(&self) -> Option<&MethodName> {
        self.method.as_ref()
    }

    /// The method arguments (`getMethodArguments()`).
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The method result (`getMethodResult()`, postconditions only).
    pub fn result(&self) -> Option<&Value> {
        self.result.as_ref()
    }

    /// Sets the method result before postcondition validation.
    pub fn set_result(&mut self, result: Value) {
        self.result = Some(result);
    }

    /// Reads a field, recording the access.
    ///
    /// # Errors
    ///
    /// Propagates [`ObjectAccess::field`] failures; the unreachable
    /// object is still recorded as accessed.
    pub fn field(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        self.accessed.insert(id.clone());
        self.access.field(id, field)
    }

    /// Convenience: a field of the context object.
    ///
    /// # Errors
    ///
    /// [`dedisys_types::Error::Config`] if no context object is set;
    /// otherwise as [`ValidationContext::field`].
    pub fn self_field(&mut self, field: &str) -> Result<Value> {
        let id = self
            .context_object
            .clone()
            .ok_or_else(|| dedisys_types::Error::Config("no context object".into()))?;
        self.field(&id, field)
    }

    /// Query all objects of a class (recorded as accessed).
    pub fn objects_of_class(&mut self, class: &ClassName) -> Vec<ObjectId> {
        let ids = self.access.objects_of_class(class);
        self.accessed.extend(ids.iter().cloned());
        ids
    }

    /// Objects touched during validation (the "gathered affected
    /// objects" of Figure 4.4).
    pub fn accessed_objects(&self) -> &BTreeSet<ObjectId> {
        &self.accessed
    }

    /// Stores a `@pre` value (called from `before_method_invocation`).
    pub fn store_pre(&mut self, key: impl Into<String>, value: Value) {
        self.pre_state.insert(key.into(), value);
    }

    /// Reads a `@pre` value during `validate`.
    pub fn pre(&self, key: &str) -> Option<&Value> {
        self.pre_state.get(key)
    }

    /// Moves the pre-state out (middleware carries it between the
    /// before- and after-invocation hooks).
    pub fn take_pre_state(&mut self) -> BTreeMap<String, Value> {
        std::mem::take(&mut self.pre_state)
    }

    /// Restores a previously taken pre-state.
    pub fn set_pre_state(&mut self, state: BTreeMap<String, Value>) {
        self.pre_state = state;
    }

    /// Exposes an environment value to the constraint.
    pub fn set_env(&mut self, key: impl Into<String>, value: Value) {
        self.environment.insert(key.into(), value);
    }

    /// Reads an environment value (e.g. `"partitionWeight"`).
    pub fn env(&self, key: &str) -> Option<&Value> {
        self.environment.get(key)
    }
}

// The parallel batch engine moves evaluation work onto scoped worker
// threads; these assertions pin the `Send`/`Sync` obligations at
// compile time.
const _: () = {
    fn assert_send<T: Send>() {}
    fn assert_send_sync<T: Send + Sync>() {}
    fn _context_types_are_thread_safe() {
        assert_send::<ValidationContext<'_>>();
        assert_send_sync::<MapAccess>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::Error;

    fn world() -> (MapAccess, ObjectId) {
        let id = ObjectId::new("Flight", "F1");
        let mut w = MapAccess::new();
        w.put_field(&id, "seats", Value::Int(80));
        (w, id)
    }

    #[test]
    fn field_access_records_objects() {
        let (mut w, id) = world();
        let other = ObjectId::new("Person", "P1");
        w.put_field(&other, "age", Value::Int(30));
        let mut ctx = ValidationContext::for_invariant(id.clone(), &mut w);
        ctx.self_field("seats").unwrap();
        ctx.field(&other, "age").unwrap();
        assert_eq!(
            ctx.accessed_objects().iter().cloned().collect::<Vec<_>>(),
            vec![id, other]
        );
    }

    #[test]
    fn unreachable_objects_error_but_are_recorded() {
        let (mut w, id) = world();
        w.set_unreachable(&id, true);
        let mut ctx = ValidationContext::for_invariant(id.clone(), &mut w);
        assert_eq!(
            ctx.self_field("seats"),
            Err(Error::ObjectUnreachable(id.clone()))
        );
        assert!(ctx.accessed_objects().contains(&id));
    }

    #[test]
    fn method_context_carries_call_info() {
        let (mut w, id) = world();
        let mut ctx = ValidationContext::for_method(
            id.clone(),
            MethodName::from("setSeats"),
            vec![Value::Int(90)],
            &mut w,
        );
        assert_eq!(ctx.called_object(), Some(&id));
        assert_eq!(ctx.method().unwrap().as_str(), "setSeats");
        assert_eq!(ctx.args(), &[Value::Int(90)]);
        ctx.set_result(Value::Bool(true));
        assert_eq!(ctx.result(), Some(&Value::Bool(true)));
    }

    #[test]
    fn pre_state_roundtrip() {
        let (mut w, id) = world();
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.store_pre("size", Value::Int(3));
        assert_eq!(ctx.pre("size"), Some(&Value::Int(3)));
        let state = ctx.take_pre_state();
        assert!(ctx.pre("size").is_none());
        ctx.set_pre_state(state);
        assert_eq!(ctx.pre("size"), Some(&Value::Int(3)));
    }

    #[test]
    fn environment_values() {
        let (mut w, id) = world();
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("partitionWeight", Value::Float(0.5));
        assert_eq!(ctx.env("partitionWeight"), Some(&Value::Float(0.5)));
        assert!(ctx.env("missing").is_none());
    }

    #[test]
    fn query_context_lists_class_objects() {
        let (mut w, id) = world();
        w.put_field(&ObjectId::new("Flight", "F2"), "seats", Value::Int(10));
        let mut ctx = ValidationContext::for_query(&mut w);
        let flights = ctx.objects_of_class(&ClassName::from("Flight"));
        assert_eq!(flights.len(), 2);
        assert!(ctx.accessed_objects().contains(&id));
    }
}
