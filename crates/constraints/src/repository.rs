//! The constraint repository (§2.1.4, §4.2.2).

use crate::{ConstraintKind, RegisteredConstraint};
use dedisys_types::{ClassName, ConstraintName, Error, MethodSignature, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// How [`ConstraintRepository::lookup`] searches.
///
/// Chapter 2 measures both: the naive repository scans all constraints
/// on every query; the optimized one caches query results in a hash
/// table keyed by class + method + constraint type, reducing a lookup
/// to a single hash probe (§2.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LookupMode {
    /// Hash-cache query results (the "optimized repository").
    #[default]
    Cached,
    /// Linear scan per query (the "search per invocation" repository).
    Scan,
}

/// Kind filter of a lookup. All invariant kinds share one bucket — the
/// CCMgr decides *when* each fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LookupKind {
    /// Preconditions of the method.
    Precondition,
    /// Postconditions of the method.
    Postcondition,
    /// Invariants (hard, soft, async) affected by the method.
    Invariant,
}

impl LookupKind {
    fn matches(self, kind: ConstraintKind) -> bool {
        match self {
            LookupKind::Precondition => kind == ConstraintKind::Precondition,
            LookupKind::Postcondition => kind == ConstraintKind::Postcondition,
            LookupKind::Invariant => kind.is_invariant(),
        }
    }
}

/// Lookup/search counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepositoryStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub cache_hits: u64,
    /// Constraints examined by linear scans.
    pub scanned: u64,
}

/// The runtime registry of an application's integrity constraints.
///
/// Supports the full explicit-runtime-management surface of §2.1.4:
/// register, remove, enable and disable during runtime, plus queries by
/// affected method and by context class.
#[derive(Debug, Clone)]
pub struct ConstraintRepository {
    constraints: Vec<Arc<RegisteredConstraint>>,
    mode: LookupMode,
    cache: HashMap<(MethodSignature, LookupKind), Vec<usize>>,
    /// Class-sharded trigger index: a lookup for `Class::method` only
    /// scans the constraints with a trigger point on `Class`, instead
    /// of the whole registry. Rebuilt on every mutation.
    shards: HashMap<ClassName, Vec<usize>>,
    stats: RepositoryStats,
}

impl Default for ConstraintRepository {
    fn default() -> Self {
        Self::new(LookupMode::Cached)
    }
}

impl ConstraintRepository {
    /// Creates an empty repository with the given lookup mode.
    pub fn new(mode: LookupMode) -> Self {
        Self {
            constraints: Vec::new(),
            mode,
            cache: HashMap::new(),
            shards: HashMap::new(),
            stats: RepositoryStats::default(),
        }
    }

    /// Number of class shards in the trigger index (the batch engine
    /// reports this alongside its batch telemetry).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn rebuild_shards(&mut self) {
        self.shards.clear();
        for (i, c) in self.constraints.iter().enumerate() {
            for m in &c.affected_methods {
                let shard = self.shards.entry(m.signature.class.clone()).or_default();
                if shard.last() != Some(&i) {
                    shard.push(i);
                }
            }
        }
    }

    /// The lookup mode.
    pub fn mode(&self) -> LookupMode {
        self.mode
    }

    /// Accumulated counters.
    pub fn stats(&self) -> RepositoryStats {
        self.stats
    }

    /// Number of registered constraints (enabled or not).
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether the repository is empty.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Registers a constraint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the name is already registered
    /// (names are unique per application, §4.2.2).
    pub fn register(&mut self, constraint: RegisteredConstraint) -> Result<()> {
        if self.get(constraint.name()).is_some() {
            return Err(Error::Config(format!(
                "constraint '{}' already registered",
                constraint.name()
            )));
        }
        self.constraints.push(Arc::new(constraint));
        self.cache.clear();
        self.rebuild_shards();
        Ok(())
    }

    /// Removes a constraint by name, returning it.
    pub fn remove(&mut self, name: &ConstraintName) -> Option<Arc<RegisteredConstraint>> {
        let idx = self.constraints.iter().position(|c| c.name() == name)?;
        self.cache.clear();
        let removed = self.constraints.remove(idx);
        self.rebuild_shards();
        Some(removed)
    }

    /// Enables or disables a constraint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the name is unknown.
    pub fn set_enabled(&mut self, name: &ConstraintName, enabled: bool) -> Result<()> {
        let c = self
            .constraints
            .iter_mut()
            .find(|c| c.name() == name)
            .ok_or_else(|| Error::Config(format!("constraint '{name}' not registered")))?;
        Arc::make_mut(c).enabled = enabled;
        self.cache.clear();
        Ok(())
    }

    /// Looks up a constraint by name.
    pub fn get(&self, name: &ConstraintName) -> Option<&Arc<RegisteredConstraint>> {
        self.constraints.iter().find(|c| c.name() == name)
    }

    /// Enabled constraints of `kind` affected by `sig`.
    pub fn lookup(
        &mut self,
        sig: &MethodSignature,
        kind: LookupKind,
    ) -> Vec<Arc<RegisteredConstraint>> {
        self.stats.lookups += 1;
        match self.mode {
            LookupMode::Cached => {
                let key = (sig.clone(), kind);
                if let Some(indices) = self.cache.get(&key) {
                    self.stats.cache_hits += 1;
                    return indices
                        .iter()
                        .map(|&i| Arc::clone(&self.constraints[i]))
                        .collect();
                }
                let indices = self.scan_indices(sig, kind);
                let result = indices
                    .iter()
                    .map(|&i| Arc::clone(&self.constraints[i]))
                    .collect();
                self.cache.insert(key, indices);
                result
            }
            LookupMode::Scan => {
                let indices = self.scan_indices(sig, kind);
                indices
                    .into_iter()
                    .map(|i| Arc::clone(&self.constraints[i]))
                    .collect()
            }
        }
    }

    /// Enabled invariants whose context class is `class` (used when a
    /// constraint is (re-)enabled and must be checked for all context
    /// objects, §3.3).
    pub fn invariants_of_context_class(&self, class: &ClassName) -> Vec<Arc<RegisteredConstraint>> {
        self.constraints
            .iter()
            .filter(|c| {
                c.enabled && c.meta.kind.is_invariant() && c.context_class.as_ref() == Some(class)
            })
            .cloned()
            .collect()
    }

    /// All enabled constraints.
    pub fn enabled(&self) -> impl Iterator<Item = &Arc<RegisteredConstraint>> {
        self.constraints.iter().filter(|c| c.enabled)
    }

    fn scan_indices(&mut self, sig: &MethodSignature, kind: LookupKind) -> Vec<usize> {
        // Criteria matching mirrors the original implementation: the
        // search builds a criteria key and compares it against a
        // string representation of every candidate's trigger points
        // (the reflective `equals`-based filtering whose cost §2.3.2
        // quantifies — 1412–3390× on the per-invocation repository).
        // The optimized repository only pays this on a cache miss, and
        // the class-sharded trigger index bounds it to the candidates
        // with a trigger point on the signature's class.
        let needle = sig.to_string();
        let mut out = Vec::new();
        let Some(shard) = self.shards.get(&sig.class) else {
            return out;
        };
        for &i in shard {
            let c = &self.constraints[i];
            self.stats.scanned += 1;
            if c.enabled
                && kind.matches(c.meta.kind)
                && c.affected_methods
                    .iter()
                    .any(|m| m.signature.to_string() == needle)
            {
                out.push(i);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstraintMeta, ContextPreparation, ValidationContext};
    use std::sync::Arc as StdArc;

    fn dummy(name: &str, kind: ConstraintKind, method: &str) -> RegisteredConstraint {
        RegisteredConstraint::new(
            ConstraintMeta::new(name).kind(kind),
            StdArc::new(|_: &mut ValidationContext<'_>| Ok(true)),
        )
        .context_class("Flight")
        .affects("Flight", method, ContextPreparation::CalledObject)
    }

    fn sig(method: &str) -> MethodSignature {
        MethodSignature::new("Flight", method)
    }

    #[test]
    fn register_rejects_duplicate_names() {
        let mut repo = ConstraintRepository::default();
        repo.register(dummy("C1", ConstraintKind::HardInvariant, "setSeats"))
            .unwrap();
        assert!(repo
            .register(dummy("C1", ConstraintKind::HardInvariant, "setSeats"))
            .is_err());
    }

    #[test]
    fn lookup_filters_by_kind_and_method() {
        let mut repo = ConstraintRepository::default();
        repo.register(dummy("Inv", ConstraintKind::HardInvariant, "setSeats"))
            .unwrap();
        repo.register(dummy("Pre", ConstraintKind::Precondition, "setSeats"))
            .unwrap();
        repo.register(dummy("Other", ConstraintKind::HardInvariant, "setName"))
            .unwrap();

        let invariants = repo.lookup(&sig("setSeats"), LookupKind::Invariant);
        assert_eq!(invariants.len(), 1);
        assert_eq!(invariants[0].name().as_str(), "Inv");
        let pres = repo.lookup(&sig("setSeats"), LookupKind::Precondition);
        assert_eq!(pres.len(), 1);
        assert!(repo
            .lookup(&sig("setSeats"), LookupKind::Postcondition)
            .is_empty());
    }

    #[test]
    fn soft_and_async_count_as_invariants() {
        let mut repo = ConstraintRepository::default();
        repo.register(dummy("S", ConstraintKind::SoftInvariant, "m"))
            .unwrap();
        repo.register(dummy("A", ConstraintKind::AsyncInvariant, "m"))
            .unwrap();
        assert_eq!(repo.lookup(&sig("m"), LookupKind::Invariant).len(), 2);
    }

    #[test]
    fn cached_mode_hits_cache_on_repeat() {
        let mut repo = ConstraintRepository::new(LookupMode::Cached);
        repo.register(dummy("C", ConstraintKind::HardInvariant, "m"))
            .unwrap();
        repo.lookup(&sig("m"), LookupKind::Invariant);
        repo.lookup(&sig("m"), LookupKind::Invariant);
        let stats = repo.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.scanned, 1, "only the initial miss scanned");
    }

    #[test]
    fn scan_mode_rescans_every_time() {
        let mut repo = ConstraintRepository::new(LookupMode::Scan);
        repo.register(dummy("C", ConstraintKind::HardInvariant, "m"))
            .unwrap();
        repo.lookup(&sig("m"), LookupKind::Invariant);
        repo.lookup(&sig("m"), LookupKind::Invariant);
        let stats = repo.stats();
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.scanned, 2);
    }

    #[test]
    fn disable_hides_from_lookup_and_invalidates_cache() {
        let mut repo = ConstraintRepository::new(LookupMode::Cached);
        repo.register(dummy("C", ConstraintKind::HardInvariant, "m"))
            .unwrap();
        assert_eq!(repo.lookup(&sig("m"), LookupKind::Invariant).len(), 1);
        repo.set_enabled(&ConstraintName::from("C"), false).unwrap();
        assert!(repo.lookup(&sig("m"), LookupKind::Invariant).is_empty());
        repo.set_enabled(&ConstraintName::from("C"), true).unwrap();
        assert_eq!(repo.lookup(&sig("m"), LookupKind::Invariant).len(), 1);
    }

    #[test]
    fn remove_unregisters() {
        let mut repo = ConstraintRepository::default();
        repo.register(dummy("C", ConstraintKind::HardInvariant, "m"))
            .unwrap();
        assert!(repo.remove(&ConstraintName::from("C")).is_some());
        assert!(repo.is_empty());
        assert!(repo.remove(&ConstraintName::from("C")).is_none());
    }

    #[test]
    fn invariants_by_context_class() {
        let mut repo = ConstraintRepository::default();
        repo.register(dummy("C", ConstraintKind::HardInvariant, "m"))
            .unwrap();
        assert_eq!(
            repo.invariants_of_context_class(&ClassName::from("Flight"))
                .len(),
            1
        );
        assert!(repo
            .invariants_of_context_class(&ClassName::from("Person"))
            .is_empty());
    }
}
