//! Link latency and loss modelling.

use dedisys_types::{NodeId, SimDuration};
use std::collections::HashMap;

/// Latency (and optional deterministic loss) model for node-to-node
/// links.
///
/// The default link latency applies to every pair unless overridden.
/// Loss is expressed per mille and injected deterministically from an
/// internal xorshift sequence, keeping simulations reproducible without
/// an external RNG dependency.
///
/// ```
/// use dedisys_net::LatencyModel;
/// use dedisys_types::{NodeId, SimDuration};
///
/// let mut model = LatencyModel::uniform_micros(500);
/// model.set_link(NodeId(0), NodeId(1), SimDuration::from_millis(5));
/// assert_eq!(model.latency(NodeId(0), NodeId(1)), SimDuration::from_millis(5));
/// assert_eq!(model.latency(NodeId(1), NodeId(0)), SimDuration::from_millis(5));
/// assert_eq!(model.latency(NodeId(0), NodeId(2)), SimDuration::from_micros(500));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    default: SimDuration,
    overrides: HashMap<(NodeId, NodeId), SimDuration>,
    loss_per_mille: u16,
    rng_state: u64,
}

impl LatencyModel {
    /// A model where every link has the same latency.
    pub fn uniform(latency: SimDuration) -> Self {
        Self {
            default: latency,
            overrides: HashMap::new(),
            loss_per_mille: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// A uniform model with latency in microseconds.
    pub fn uniform_micros(micros: u64) -> Self {
        Self::uniform(SimDuration::from_micros(micros))
    }

    /// A uniform model with latency in milliseconds.
    pub fn uniform_millis(millis: u64) -> Self {
        Self::uniform(SimDuration::from_millis(millis))
    }

    /// A zero-latency model (useful in logic-only tests).
    pub fn instant() -> Self {
        Self::uniform(SimDuration::ZERO)
    }

    /// Overrides the latency of an (undirected) link.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, latency: SimDuration) -> &mut Self {
        self.overrides.insert(Self::key(a, b), latency);
        self
    }

    /// Sets a deterministic message-loss rate in per mille (0–1000).
    ///
    /// # Panics
    ///
    /// Panics if `per_mille > 1000`.
    pub fn set_loss_per_mille(&mut self, per_mille: u16) -> &mut Self {
        assert!(per_mille <= 1000, "loss rate must be at most 1000‰");
        self.loss_per_mille = per_mille;
        self
    }

    /// The configured loss rate in per mille.
    pub fn loss_per_mille(&self) -> u16 {
        self.loss_per_mille
    }

    /// Latency of the link between `a` and `b` (zero for `a == b`).
    pub fn latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        if a == b {
            return SimDuration::ZERO;
        }
        self.overrides
            .get(&Self::key(a, b))
            .copied()
            .unwrap_or(self.default)
    }

    /// Draws the next loss decision from the deterministic sequence.
    /// Returns `true` if the message should be dropped.
    pub fn next_loss(&mut self) -> bool {
        if self.loss_per_mille == 0 {
            return false;
        }
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        let sample = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 54) % 1000;
        (sample as u16) < self.loss_per_mille
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }
}

impl Default for LatencyModel {
    /// 500 µs per hop — the order of magnitude of the paper's 100 Mbit
    /// LAN round trips.
    fn default() -> Self {
        Self::uniform_micros(500)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_latency_is_zero() {
        let model = LatencyModel::uniform_millis(3);
        assert_eq!(model.latency(NodeId(1), NodeId(1)), SimDuration::ZERO);
    }

    #[test]
    fn overrides_are_undirected() {
        let mut model = LatencyModel::instant();
        model.set_link(NodeId(2), NodeId(0), SimDuration::from_millis(7));
        assert_eq!(
            model.latency(NodeId(0), NodeId(2)),
            SimDuration::from_millis(7)
        );
    }

    #[test]
    fn loss_sequence_is_deterministic_and_roughly_calibrated() {
        let mut a = LatencyModel::instant();
        a.set_loss_per_mille(100);
        let mut b = LatencyModel::instant();
        b.set_loss_per_mille(100);
        let seq_a: Vec<bool> = (0..1000).map(|_| a.next_loss()).collect();
        let seq_b: Vec<bool> = (0..1000).map(|_| b.next_loss()).collect();
        assert_eq!(seq_a, seq_b);
        let drops = seq_a.iter().filter(|&&d| d).count();
        // ~10% with generous tolerance
        assert!((50..200).contains(&drops), "drops = {drops}");
    }

    #[test]
    fn zero_loss_never_drops() {
        let mut model = LatencyModel::instant();
        assert!((0..100).all(|_| !model.next_loss()));
    }

    #[test]
    #[should_panic(expected = "at most 1000")]
    fn loss_rate_validated() {
        LatencyModel::instant().set_loss_per_mille(1001);
    }
}
