//! The shared virtual clock.

use dedisys_types::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A shared, monotonically advancing virtual clock.
///
/// All components of a simulated cluster hold clones of the same clock;
/// advancing it models the passage of time caused by network hops,
/// database accesses and CPU work (see the cost model in
/// `dedisys-core`).
///
/// The clock is cheap to clone and thread-safe (`Send + Sync`), although
/// the simulation itself is single-threaded.
///
/// ```
/// use dedisys_net::SimClock;
/// use dedisys_types::SimDuration;
///
/// let clock = SimClock::new();
/// let alias = clock.clone();
/// clock.advance(SimDuration::from_millis(5));
/// assert_eq!(alias.now().as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// Creates a clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let new = self.nanos.fetch_add(d.as_nanos(), Ordering::Relaxed) + d.as_nanos();
        SimTime::from_nanos(new)
    }

    /// Moves the clock forward to `t` if `t` is in the future; a clock
    /// never moves backwards.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        self.nanos.fetch_max(t.as_nanos(), Ordering::Relaxed);
        self.now()
    }

    /// Resets the clock to zero (for reuse between benchmark runs).
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_and_alias() {
        let clock = SimClock::new();
        let alias = clock.clone();
        clock.advance(SimDuration::from_micros(3));
        assert_eq!(alias.now(), SimTime::from_nanos(3_000));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_millis(10));
        clock.advance_to(SimTime::from_nanos(1));
        assert_eq!(clock.now(), SimTime::from_nanos(10_000_000));
        clock.advance_to(SimTime::from_nanos(20_000_000));
        assert_eq!(clock.now(), SimTime::from_nanos(20_000_000));
    }

    #[test]
    fn reset_returns_to_zero() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        clock.reset();
        assert_eq!(clock.now(), SimTime::ZERO);
    }
}
