//! Message envelopes.

use dedisys_types::{NodeId, SimTime};

/// A message in flight (or delivered) between two nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender node.
    pub from: NodeId,
    /// Receiver node.
    pub to: NodeId,
    /// Virtual time at which the message was sent.
    pub sent_at: SimTime,
    /// Virtual time at which the message is (to be) delivered.
    pub deliver_at: SimTime,
    /// Router-assigned sequence number (global send order).
    pub seq: u64,
    /// The payload.
    pub payload: M,
}

impl<M> Envelope<M> {
    /// One-way latency experienced by this message.
    pub fn latency(&self) -> dedisys_types::SimDuration {
        self.deliver_at.since(self.sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::SimDuration;

    #[test]
    fn latency_is_delivery_minus_send() {
        let env = Envelope {
            from: NodeId(0),
            to: NodeId(1),
            sent_at: SimTime::from_nanos(100),
            deliver_at: SimTime::from_nanos(1_100),
            seq: 0,
            payload: (),
        };
        assert_eq!(env.latency(), SimDuration::from_nanos(1_000));
    }
}
