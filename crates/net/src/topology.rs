//! Node topology and network partitions.

use dedisys_types::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// The set of nodes in the system and their current partitioning.
///
/// A healthy topology has a single partition containing every node.
/// [`Topology::split`] installs an arbitrary partitioning (link
/// failures); [`Topology::heal`] re-unifies everything. A crashed node
/// is initially indistinguishable from a partition containing only that
/// node (§1.1), so node failures are modelled as singleton partitions
/// via [`Topology::isolate`].
///
/// ```
/// use dedisys_net::Topology;
/// use dedisys_types::NodeId;
///
/// let mut topo = Topology::fully_connected(4);
/// assert!(topo.reachable(NodeId(0), NodeId(3)));
///
/// topo.split(&[&[0, 1], &[2, 3]]);
/// assert!(!topo.reachable(NodeId(0), NodeId(3)));
/// assert!(topo.reachable(NodeId(2), NodeId(3)));
///
/// topo.heal();
/// assert!(topo.reachable(NodeId(0), NodeId(3)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    node_count: u32,
    partitions: Vec<BTreeSet<NodeId>>,
    /// Incremented on every split/heal; observers use it to detect
    /// membership changes cheaply.
    epoch: u64,
}

impl Topology {
    /// Creates a healthy topology of `n` nodes (ids `0..n`).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn fully_connected(n: u32) -> Self {
        assert!(n > 0, "a topology needs at least one node");
        let all: BTreeSet<NodeId> = (0..n).map(NodeId).collect();
        Self {
            node_count: n,
            partitions: vec![all],
            epoch: 0,
        }
    }

    /// Number of nodes in the system (reachable or not).
    pub fn node_count(&self) -> u32 {
        self.node_count
    }

    /// All node ids in the system.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Current partitions (each a set of mutually reachable nodes).
    pub fn partitions(&self) -> &[BTreeSet<NodeId>] {
        &self.partitions
    }

    /// The epoch, incremented on every topology change.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the system currently has a single partition.
    pub fn is_healthy(&self) -> bool {
        self.partitions.len() == 1
    }

    /// Whether `a` can communicate with `b` in the current partitioning.
    ///
    /// A node can always reach itself.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.partitions
            .iter()
            .any(|p| p.contains(&a) && p.contains(&b))
    }

    /// The partition containing `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not part of the topology.
    pub fn partition_of(&self, node: NodeId) -> &BTreeSet<NodeId> {
        self.partitions
            .iter()
            .find(|p| p.contains(&node))
            .unwrap_or_else(|| panic!("node {node} is not part of the topology"))
    }

    /// Nodes reachable from `node` (including itself).
    pub fn reachable_from(&self, node: NodeId) -> BTreeSet<NodeId> {
        self.partition_of(node).clone()
    }

    /// Installs a partitioning given as groups of raw node indices.
    /// Nodes not mentioned in any group each form a singleton partition.
    ///
    /// # Panics
    ///
    /// Panics if a node appears in more than one group or a group names
    /// a node outside the topology.
    pub fn split(&mut self, groups: &[&[u32]]) {
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        let mut partitions: Vec<BTreeSet<NodeId>> = Vec::with_capacity(groups.len());
        for group in groups {
            let mut set = BTreeSet::new();
            for &raw in *group {
                let node = NodeId(raw);
                assert!(raw < self.node_count, "node {node} outside topology");
                assert!(seen.insert(node), "node {node} appears in two groups");
                set.insert(node);
            }
            if !set.is_empty() {
                partitions.push(set);
            }
        }
        for node in (0..self.node_count).map(NodeId) {
            if !seen.contains(&node) {
                partitions.push(BTreeSet::from([node]));
            }
        }
        self.partitions = partitions;
        self.epoch += 1;
    }

    /// Isolates a single node into its own partition, leaving the other
    /// groups intact — models a node crash (pause-crash, §1.1).
    pub fn isolate(&mut self, node: NodeId) {
        let mut partitions = Vec::new();
        for p in &self.partitions {
            if p.contains(&node) {
                let mut rest = p.clone();
                rest.remove(&node);
                if !rest.is_empty() {
                    partitions.push(rest);
                }
                partitions.push(BTreeSet::from([node]));
            } else {
                partitions.push(p.clone());
            }
        }
        self.partitions = partitions;
        self.epoch += 1;
    }

    /// Merges two partitions (a repaired link between any member pair).
    ///
    /// # Panics
    ///
    /// Panics if the nodes are already in the same partition.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        assert!(
            !self.reachable(a, b),
            "{a} and {b} are already in the same partition"
        );
        let pa = self.partition_of(a).clone();
        let pb = self.partition_of(b).clone();
        self.partitions.retain(|p| *p != pa && *p != pb);
        self.partitions.push(pa.union(&pb).cloned().collect());
        self.epoch += 1;
    }

    /// Re-unifies the whole system into a single healthy partition.
    pub fn heal(&mut self) {
        self.partitions = vec![(0..self.node_count).map(NodeId).collect()];
        self.epoch += 1;
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "topology[")?;
        for (i, p) in self.partitions.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            for (j, n) in p.iter().enumerate() {
                if j > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{n}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_topology_is_one_partition() {
        let topo = Topology::fully_connected(3);
        assert!(topo.is_healthy());
        assert_eq!(topo.partitions().len(), 1);
        assert!(topo.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn split_and_reachability() {
        let mut topo = Topology::fully_connected(5);
        topo.split(&[&[0, 1], &[2, 3]]);
        // node 4 unmentioned -> singleton
        assert_eq!(topo.partitions().len(), 3);
        assert!(topo.reachable(NodeId(0), NodeId(1)));
        assert!(!topo.reachable(NodeId(1), NodeId(2)));
        assert!(!topo.reachable(NodeId(4), NodeId(0)));
        assert!(topo.reachable(NodeId(4), NodeId(4)));
    }

    #[test]
    fn isolate_models_node_crash() {
        let mut topo = Topology::fully_connected(3);
        topo.isolate(NodeId(1));
        assert_eq!(topo.partitions().len(), 2);
        assert!(!topo.reachable(NodeId(0), NodeId(1)));
        assert!(topo.reachable(NodeId(0), NodeId(2)));
    }

    #[test]
    fn merge_reunifies_two_partitions() {
        let mut topo = Topology::fully_connected(4);
        topo.split(&[&[0], &[1], &[2, 3]]);
        topo.merge(NodeId(0), NodeId(1));
        assert!(topo.reachable(NodeId(0), NodeId(1)));
        assert!(!topo.reachable(NodeId(0), NodeId(2)));
        topo.merge(NodeId(1), NodeId(3));
        assert!(topo.is_healthy());
    }

    #[test]
    fn heal_restores_full_connectivity() {
        let mut topo = Topology::fully_connected(4);
        topo.split(&[&[0, 1], &[2, 3]]);
        let epoch_before = topo.epoch();
        topo.heal();
        assert!(topo.is_healthy());
        assert!(topo.epoch() > epoch_before);
    }

    #[test]
    #[should_panic(expected = "appears in two groups")]
    fn split_rejects_duplicate_membership() {
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0, 1], &[1, 2]]);
    }

    #[test]
    fn display_shows_partitions() {
        let mut topo = Topology::fully_connected(3);
        topo.split(&[&[0, 1], &[2]]);
        assert_eq!(topo.to_string(), "topology[n0,n1 | n2]");
    }
}
