//! A small discrete-event kernel.
//!
//! Used by the heartbeat failure detector in `dedisys-gms` and the
//! ordered-multicast algorithms in `dedisys-gc` to simulate genuinely
//! asynchronous behaviour (timers firing, messages racing) under the
//! shared virtual clock.

use crate::SimClock;
use dedisys_types::{SimDuration, SimTime};
use std::collections::BinaryHeap;

/// An event scheduled for a point in virtual time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Tie-break sequence (schedule order).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E: Eq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap inversion: earliest (time, seq) pops first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A discrete-event scheduler bound to a [`SimClock`].
///
/// Popping an event advances the clock to the event's time, so handlers
/// always observe a consistent "now".
///
/// ```
/// use dedisys_net::{Scheduler, SimClock};
/// use dedisys_types::SimDuration;
///
/// let clock = SimClock::new();
/// let mut sched: Scheduler<&str> = Scheduler::new(clock.clone());
/// sched.schedule_in(SimDuration::from_millis(10), "b");
/// sched.schedule_in(SimDuration::from_millis(5), "a");
///
/// assert_eq!(sched.pop().unwrap().event, "a");
/// assert_eq!(clock.now().as_nanos(), 5_000_000);
/// assert_eq!(sched.pop().unwrap().event, "b");
/// assert!(sched.pop().is_none());
/// ```
#[derive(Debug)]
pub struct Scheduler<E> {
    clock: SimClock,
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
}

impl<E: Eq> Scheduler<E> {
    /// Creates a scheduler using the shared `clock`.
    pub fn new(clock: SimClock) -> Self {
        Self {
            clock,
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.clock.now(), "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.clock.now() + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let ev = self.heap.pop()?;
        self.clock.advance_to(ev.at);
        Some(ev)
    }

    /// Pops the earliest event only if it fires no later than `until`.
    pub fn pop_until(&mut self, until: SimTime) -> Option<ScheduledEvent<E>> {
        if self.heap.peek().is_some_and(|ev| ev.at <= until) {
            self.pop()
        } else {
            None
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the scheduler has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order_with_fifo_ties() {
        let mut sched: Scheduler<u32> = Scheduler::new(SimClock::new());
        sched.schedule_in(SimDuration::from_millis(5), 1);
        sched.schedule_in(SimDuration::from_millis(5), 2);
        sched.schedule_in(SimDuration::from_millis(1), 0);
        let order: Vec<u32> = std::iter::from_fn(|| sched.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn pop_advances_clock() {
        let clock = SimClock::new();
        let mut sched: Scheduler<()> = Scheduler::new(clock.clone());
        sched.schedule_in(SimDuration::from_millis(3), ());
        sched.pop();
        assert_eq!(clock.now(), SimTime::from_nanos(3_000_000));
    }

    #[test]
    fn pop_until_respects_horizon() {
        let mut sched: Scheduler<u8> = Scheduler::new(SimClock::new());
        sched.schedule_in(SimDuration::from_millis(10), 1);
        assert!(sched.pop_until(SimTime::from_nanos(1_000_000)).is_none());
        assert!(sched.pop_until(SimTime::from_nanos(10_000_000)).is_some());
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let clock = SimClock::new();
        clock.advance(SimDuration::from_millis(5));
        let mut sched: Scheduler<()> = Scheduler::new(clock);
        sched.schedule_at(SimTime::from_nanos(1), ());
    }
}
