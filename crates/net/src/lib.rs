//! # dedisys-net
//!
//! The simulated network substrate of DeDiSys-RS.
//!
//! The original system ran on a 100 Mbit LAN with the Spread group
//! communication toolkit; this crate replaces the physical network with a
//! deterministic simulation:
//!
//! * [`SimClock`] — a shared virtual clock; every network hop and
//!   modelled I/O advances it, so throughput figures are reproducible.
//! * [`Topology`] — which nodes exist and how they are partitioned;
//!   reachability queries drive everything from replica staleness to
//!   view changes.
//! * [`LatencyModel`] — per-link latency (plus an optional deterministic
//!   loss rate for exercising "links lose messages" behaviour, §1.1).
//! * [`Router`] — point-to-point send and multicast of typed payloads
//!   with delivery scheduling, loss injection and statistics.
//! * [`Scheduler`] — a small discrete-event kernel used by the failure
//!   detector (`dedisys-gms`) and the ordered-multicast algorithms
//!   (`dedisys-gc`).
//!
//! ## Example
//!
//! ```
//! use dedisys_net::{LatencyModel, Router, SimClock, Topology};
//! use dedisys_types::NodeId;
//!
//! let clock = SimClock::new();
//! let topo = Topology::fully_connected(3);
//! let mut router: Router<&'static str> =
//!     Router::new(topo, LatencyModel::uniform_millis(1), clock.clone());
//!
//! router.send(NodeId(0), NodeId(1), "hello").unwrap();
//! let delivered = router.deliver_all();
//! assert_eq!(delivered.len(), 1);
//! assert_eq!(delivered[0].payload, "hello");
//! ```

mod clock;
mod event;
mod latency;
mod message;
mod router;
mod stats;
mod topology;

pub use clock::SimClock;
pub use event::{ScheduledEvent, Scheduler};
pub use latency::LatencyModel;
pub use message::Envelope;
pub use router::Router;
pub use stats::NetStats;
pub use topology::Topology;
