//! Network statistics.

use std::fmt;

/// Counters accumulated by a [`crate::Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages accepted for sending.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped (lossy link or partition while in flight).
    pub dropped: u64,
    /// Send attempts rejected because the destination was unreachable.
    pub unreachable: u64,
}

impl NetStats {
    /// Messages still unaccounted for (in flight).
    pub fn in_flight(&self) -> u64 {
        self.sent - self.delivered - self.dropped
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} unreachable={}",
            self.sent, self.delivered, self.dropped, self.unreachable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_accounting() {
        let stats = NetStats {
            sent: 10,
            delivered: 6,
            dropped: 1,
            unreachable: 2,
        };
        assert_eq!(stats.in_flight(), 3);
        assert!(!stats.to_string().is_empty());
    }
}
