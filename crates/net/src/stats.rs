//! Network statistics.

use std::fmt;

/// Counters accumulated by a [`crate::Router`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Messages accepted for sending.
    pub sent: u64,
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped (lossy link or partition while in flight).
    pub dropped: u64,
    /// Send attempts rejected because the destination was unreachable.
    pub unreachable: u64,
}

impl NetStats {
    /// Messages still unaccounted for (in flight).
    ///
    /// Every send *attempt* is counted in [`NetStats::sent`], including
    /// attempts rejected because the destination was unreachable. Those
    /// rejected sends are never delivered and never dropped in flight,
    /// so they must be excluded here or `in_flight` would never drain
    /// back to zero after a partition. The subtraction saturates so a
    /// torn-down counter set can never underflow.
    pub fn in_flight(&self) -> u64 {
        self.sent
            .saturating_sub(self.delivered + self.dropped + self.unreachable)
    }

    /// True when every accepted message has been accounted for
    /// (delivered, dropped or rejected) — the quiescent state.
    pub fn is_quiescent(&self) -> bool {
        self.in_flight() == 0
    }

    /// Conservation check: `sent >= delivered + dropped + unreachable`.
    ///
    /// A violation means a counter was incremented out of order (e.g. a
    /// delivery recorded for a message that was never sent).
    pub fn is_conserved(&self) -> bool {
        self.sent >= self.delivered + self.dropped + self.unreachable
    }
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sent={} delivered={} dropped={} unreachable={}",
            self.sent, self.delivered, self.dropped, self.unreachable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_flight_accounting() {
        let stats = NetStats {
            sent: 10,
            delivered: 6,
            dropped: 1,
            unreachable: 2,
        };
        // Unreachable attempts are counted in `sent` but will never be
        // delivered or dropped; they must not be treated as in flight.
        assert_eq!(stats.in_flight(), 1);
        assert!(stats.is_conserved());
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn in_flight_saturates_instead_of_underflowing() {
        let stats = NetStats {
            sent: 1,
            delivered: 1,
            dropped: 0,
            unreachable: 1,
        };
        assert_eq!(stats.in_flight(), 0);
        assert!(!stats.is_conserved());
    }

    #[test]
    fn quiesce_drains_to_zero_with_unreachable_rejections() {
        // Regression: before the fix, rejected-unreachable sends were
        // counted in `sent` but never delivered nor dropped, so
        // `in_flight` never drained back to zero.
        let stats = NetStats {
            sent: 5,
            delivered: 3,
            dropped: 1,
            unreachable: 1,
        };
        assert!(stats.is_quiescent());
        assert_eq!(stats.in_flight(), 0);
    }
}
