//! Point-to-point and multicast message routing with delivery
//! scheduling, partition enforcement, loss injection and statistics.

use crate::{Envelope, LatencyModel, NetStats, SimClock, Topology};
use dedisys_types::{Error, NodeId, Result, SimTime};
use std::collections::BinaryHeap;

/// A message whose delivery is pending, ordered by delivery time.
#[derive(Debug)]
struct Pending<M> {
    deliver_at: SimTime,
    seq: u64,
    envelope: Envelope<M>,
}

impl<M> PartialEq for Pending<M> {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}

impl<M> Eq for Pending<M> {}

impl<M> PartialOrd for Pending<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Pending<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert to pop the earliest first.
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Routes typed messages between simulated nodes.
///
/// Sending checks reachability against the [`Topology`]; unreachable
/// destinations fail with [`Error::NodeUnreachable`]. Delivery is
/// scheduled after the link latency; [`Router::deliver_due`] releases
/// messages whose delivery time has come, [`Router::deliver_all`]
/// fast-forwards the clock to drain everything.
#[derive(Debug)]
pub struct Router<M> {
    topology: Topology,
    latency: LatencyModel,
    clock: SimClock,
    queue: BinaryHeap<Pending<M>>,
    next_seq: u64,
    stats: NetStats,
}

impl<M: Clone> Router<M> {
    /// Creates a router over `topology` with the given latency model and
    /// shared clock.
    pub fn new(topology: Topology, latency: LatencyModel, clock: SimClock) -> Self {
        Self {
            topology,
            latency,
            clock,
            queue: BinaryHeap::new(),
            next_seq: 0,
            stats: NetStats::default(),
        }
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the topology (partition/heal during tests).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Replaces the topology (on partition/heal the owning cluster
    /// pushes the updated topology down to the router).
    pub fn set_topology(&mut self, topology: Topology) {
        self.topology = topology;
    }

    /// Network statistics accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Mutable access to the latency model — fault injectors use this
    /// to open loss windows or spike link latencies mid-run.
    pub fn latency_mut(&mut self) -> &mut LatencyModel {
        &mut self.latency
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Sends `payload` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::NodeUnreachable`] if the destination is in
    /// another partition. A lossy link may silently drop the message
    /// (counted in [`NetStats::dropped`]); this mirrors real message
    /// loss, which the sender does not observe either.
    pub fn send(&mut self, from: NodeId, to: NodeId, payload: M) -> Result<()> {
        // Every attempt is counted in `sent`; rejected-unreachable
        // attempts additionally bump `unreachable` so
        // [`NetStats::in_flight`] still drains to zero at quiescence.
        self.stats.sent += 1;
        if !self.topology.reachable(from, to) {
            self.stats.unreachable += 1;
            return Err(Error::NodeUnreachable(to));
        }
        if self.latency.next_loss() {
            self.stats.dropped += 1;
            return Ok(());
        }
        let now = self.clock.now();
        let deliver_at = now + self.latency.latency(from, to);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Pending {
            deliver_at,
            seq,
            envelope: Envelope {
                from,
                to,
                sent_at: now,
                deliver_at,
                seq,
                payload,
            },
        });
        Ok(())
    }

    /// Multicasts `payload` from `from` to every *reachable* member of
    /// `group` other than the sender; returns the recipients actually
    /// addressed.
    pub fn multicast<'a>(
        &mut self,
        from: NodeId,
        group: impl IntoIterator<Item = &'a NodeId>,
        payload: M,
    ) -> Vec<NodeId> {
        let mut reached = Vec::new();
        for &to in group {
            if to == from {
                continue;
            }
            if self.send(from, to, payload.clone()).is_ok() {
                reached.push(to);
            }
        }
        reached
    }

    /// Delivers every message whose delivery time is `<= now`, in
    /// delivery-time order.
    pub fn deliver_due(&mut self) -> Vec<Envelope<M>> {
        let now = self.clock.now();
        let mut out = Vec::new();
        while let Some(head) = self.queue.peek() {
            if head.deliver_at > now {
                break;
            }
            let pending = self.queue.pop().expect("peeked");
            // Messages in flight when a partition occurs are lost if the
            // destination became unreachable (link failed mid-flight).
            if self
                .topology
                .reachable(pending.envelope.from, pending.envelope.to)
            {
                self.stats.delivered += 1;
                out.push(pending.envelope);
            } else {
                self.stats.dropped += 1;
            }
        }
        out
    }

    /// Fast-forwards the clock to drain and deliver every pending
    /// message, in delivery order.
    pub fn deliver_all(&mut self) -> Vec<Envelope<M>> {
        if let Some(latest) = self.queue.iter().map(|p| p.deliver_at).max() {
            self.clock.advance_to(latest);
        }
        self.deliver_due()
    }

    /// Number of messages currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::SimDuration;

    fn router(n: u32, micros: u64) -> Router<u32> {
        Router::new(
            Topology::fully_connected(n),
            LatencyModel::uniform_micros(micros),
            SimClock::new(),
        )
    }

    #[test]
    fn send_schedules_delivery_after_latency() {
        let mut r = router(2, 500);
        r.send(NodeId(0), NodeId(1), 42).unwrap();
        assert!(r.deliver_due().is_empty(), "not yet due");
        r.clock().advance(SimDuration::from_micros(500));
        let delivered = r.deliver_due();
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].payload, 42);
        assert_eq!(delivered[0].latency(), SimDuration::from_micros(500));
    }

    #[test]
    fn unreachable_destination_errors() {
        let mut r = router(3, 1);
        r.topology_mut().split(&[&[0], &[1, 2]]);
        assert_eq!(
            r.send(NodeId(0), NodeId(1), 1),
            Err(Error::NodeUnreachable(NodeId(1)))
        );
        assert_eq!(r.stats().unreachable, 1);
    }

    #[test]
    fn multicast_skips_sender_and_unreachable() {
        let mut r = router(4, 1);
        r.topology_mut().split(&[&[0, 1, 2], &[3]]);
        let group: Vec<NodeId> = (0..4).map(NodeId).collect();
        let reached = r.multicast(NodeId(0), &group, 7);
        assert_eq!(reached, vec![NodeId(1), NodeId(2)]);
        let delivered = r.deliver_all();
        assert_eq!(delivered.len(), 2);
    }

    #[test]
    fn deliveries_come_out_in_delivery_time_order() {
        let mut r = Router::new(
            Topology::fully_connected(3),
            LatencyModel::instant(),
            SimClock::new(),
        );
        let mut model = LatencyModel::instant();
        model.set_link(NodeId(0), NodeId(1), SimDuration::from_millis(10));
        model.set_link(NodeId(0), NodeId(2), SimDuration::from_millis(1));
        r.latency = model;
        r.send(NodeId(0), NodeId(1), 1).unwrap();
        r.send(NodeId(0), NodeId(2), 2).unwrap();
        let delivered = r.deliver_all();
        assert_eq!(
            delivered.iter().map(|e| e.payload).collect::<Vec<_>>(),
            vec![2, 1]
        );
    }

    #[test]
    fn partition_drops_in_flight_messages() {
        let mut r = router(2, 500);
        r.send(NodeId(0), NodeId(1), 9).unwrap();
        r.topology_mut().split(&[&[0], &[1]]);
        let delivered = r.deliver_all();
        assert!(delivered.is_empty());
        assert_eq!(r.stats().dropped, 1);
    }

    #[test]
    fn quiesce_drains_in_flight_to_zero_despite_unreachable() {
        let mut r = router(3, 100);
        r.send(NodeId(0), NodeId(1), 1).unwrap();
        r.send(NodeId(0), NodeId(2), 2).unwrap();
        r.topology_mut().split(&[&[0], &[1, 2]]);
        // Rejected at send time: counted as sent + unreachable.
        assert!(r.send(NodeId(0), NodeId(1), 3).is_err());
        let _ = r.deliver_all(); // drops the two in-flight messages
        let stats = *r.stats();
        assert_eq!(stats.sent, 3);
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped, 2);
        assert_eq!(stats.unreachable, 1);
        assert_eq!(stats.in_flight(), 0, "quiesce must drain to zero");
        assert!(stats.is_quiescent());
        assert!(stats.is_conserved());
    }

    #[test]
    fn lossy_link_drops_silently() {
        let mut model = LatencyModel::instant();
        model.set_loss_per_mille(1000); // drop everything
        let mut r = Router::new(Topology::fully_connected(2), model, SimClock::new());
        r.send(NodeId(0), NodeId(1), 5).unwrap();
        assert_eq!(r.in_flight(), 0);
        assert_eq!(r.stats().dropped, 1);
        assert_eq!(r.stats().sent, 1);
    }
}
