//! The in-memory multi-table store.

use std::collections::BTreeMap;

/// An in-memory, multi-table key/value store of serialized records.
///
/// Tables and keys are strings; records are serialized blobs (the
/// layers above serialize with `serde_json`). Iteration order is
/// deterministic (sorted by key) so simulations are reproducible.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableStore {
    tables: BTreeMap<String, BTreeMap<String, String>>,
}

impl TableStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the record at `(table, key)`, returning the
    /// previous record if any.
    pub fn put(
        &mut self,
        table: impl Into<String>,
        key: impl Into<String>,
        record: String,
    ) -> Option<String> {
        self.tables
            .entry(table.into())
            .or_default()
            .insert(key.into(), record)
    }

    /// Reads the record at `(table, key)`.
    pub fn get(&self, table: &str, key: &str) -> Option<&str> {
        self.tables.get(table)?.get(key).map(String::as_str)
    }

    /// Deletes the record at `(table, key)`, returning it if present.
    pub fn delete(&mut self, table: &str, key: &str) -> Option<String> {
        self.tables.get_mut(table)?.remove(key)
    }

    /// Whether `(table, key)` holds a record.
    pub fn contains(&self, table: &str, key: &str) -> bool {
        self.get(table, key).is_some()
    }

    /// Iterates over `(key, record)` pairs of `table` in key order.
    pub fn scan<'a>(&'a self, table: &str) -> impl Iterator<Item = (&'a str, &'a str)> + 'a {
        self.tables
            .get(table)
            .into_iter()
            .flat_map(|t| t.iter().map(|(k, v)| (k.as_str(), v.as_str())))
    }

    /// Number of records in `table` (zero if absent).
    pub fn table_len(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, BTreeMap::len)
    }

    /// Names of all (possibly empty) tables, in order.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Removes every record of `table`.
    pub fn clear_table(&mut self, table: &str) {
        if let Some(t) = self.tables.get_mut(table) {
            t.clear();
        }
    }

    /// Total number of records across all tables.
    pub fn len(&self) -> usize {
        self.tables.values().map(BTreeMap::len).sum()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_roundtrip() {
        let mut s = TableStore::new();
        assert!(s.put("t", "k", "v1".into()).is_none());
        assert_eq!(s.put("t", "k", "v2".into()), Some("v1".into()));
        assert_eq!(s.get("t", "k"), Some("v2"));
        assert_eq!(s.delete("t", "k"), Some("v2".into()));
        assert!(!s.contains("t", "k"));
    }

    #[test]
    fn scan_is_sorted_by_key() {
        let mut s = TableStore::new();
        s.put("t", "b", "2".into());
        s.put("t", "a", "1".into());
        let keys: Vec<&str> = s.scan("t").map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "b"]);
    }

    #[test]
    fn missing_table_behaves_as_empty() {
        let s = TableStore::new();
        assert_eq!(s.get("none", "k"), None);
        assert_eq!(s.table_len("none"), 0);
        assert_eq!(s.scan("none").count(), 0);
    }

    #[test]
    fn clear_and_len() {
        let mut s = TableStore::new();
        s.put("a", "1", "x".into());
        s.put("b", "1", "y".into());
        assert_eq!(s.len(), 2);
        s.clear_table("a");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
