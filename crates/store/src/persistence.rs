//! A cost-accounted persistence service.

use crate::{ReplayReport, TableStore, WriteAheadLog};
use dedisys_net::SimClock;
use dedisys_types::SimDuration;
use std::fmt;

/// Virtual-time costs of database accesses.
///
/// Defaults are calibrated to a commodity 2007-era MySQL over a local
/// connection: writes dominated by fsync/commit, reads mostly cached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreCosts {
    /// Cost of a write (put/delete).
    pub write: SimDuration,
    /// Cost of a point read.
    pub read: SimDuration,
    /// Cost per row of a scan.
    pub scan_per_row: SimDuration,
}

impl Default for StoreCosts {
    fn default() -> Self {
        Self {
            write: SimDuration::from_millis(3),
            read: SimDuration::from_micros(150),
            scan_per_row: SimDuration::from_micros(30),
        }
    }
}

impl StoreCosts {
    /// Zero-cost configuration for logic-only tests.
    pub fn free() -> Self {
        Self {
            write: SimDuration::ZERO,
            read: SimDuration::ZERO,
            scan_per_row: SimDuration::ZERO,
        }
    }
}

/// Operation counters of a [`Persistence`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Number of writes (puts + deletes).
    pub writes: u64,
    /// Number of point reads.
    pub reads: u64,
    /// Number of scans.
    pub scans: u64,
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "writes={} reads={} scans={}",
            self.writes, self.reads, self.scans
        )
    }
}

/// A [`TableStore`] + [`WriteAheadLog`] bound to the simulation clock:
/// every access advances virtual time per [`StoreCosts`], mirroring the
/// database round trips that dominated several of the paper's
/// measurements (e.g. threat persistence in Fig 5.2).
#[derive(Debug, Clone)]
pub struct Persistence {
    store: TableStore,
    wal: WriteAheadLog,
    clock: SimClock,
    costs: StoreCosts,
    stats: StoreStats,
}

impl Persistence {
    /// Creates a persistence service on `clock` with `costs`.
    pub fn new(clock: SimClock, costs: StoreCosts) -> Self {
        Self {
            store: TableStore::new(),
            wal: WriteAheadLog::new(),
            clock,
            costs,
            stats: StoreStats::default(),
        }
    }

    /// The accumulated operation counters.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// Read-only access to the underlying store.
    pub fn store(&self) -> &TableStore {
        &self.store
    }

    /// The write-ahead log.
    pub fn wal(&self) -> &WriteAheadLog {
        &self.wal
    }

    /// Writes a record (WAL append + store put).
    pub fn put(&mut self, table: &str, key: &str, record: String) {
        self.stats.writes += 1;
        self.clock.advance(self.costs.write);
        self.wal.append_put(table, key, record.clone());
        self.store.put(table, key, record);
    }

    /// Deletes a record.
    pub fn delete(&mut self, table: &str, key: &str) -> Option<String> {
        self.stats.writes += 1;
        self.clock.advance(self.costs.write);
        self.wal.append_delete(table, key);
        self.store.delete(table, key)
    }

    /// Point read.
    pub fn get(&mut self, table: &str, key: &str) -> Option<String> {
        self.stats.reads += 1;
        self.clock.advance(self.costs.read);
        self.store.get(table, key).map(str::to_owned)
    }

    /// Whether a record exists (costs a read).
    pub fn contains(&mut self, table: &str, key: &str) -> bool {
        self.stats.reads += 1;
        self.clock.advance(self.costs.read);
        self.store.contains(table, key)
    }

    /// Scans a table, paying per-row cost; returns owned pairs.
    pub fn scan(&mut self, table: &str) -> Vec<(String, String)> {
        self.stats.scans += 1;
        let rows: Vec<(String, String)> = self
            .store
            .scan(table)
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        self.clock
            .advance(self.costs.scan_per_row * rows.len() as u64);
        rows
    }

    /// Simulates a crash: drops in-memory state, truncates any torn
    /// tail off the WAL (entries whose per-entry checksum fails, e.g.
    /// a write interrupted by the crash), and replays the intact
    /// prefix. Returns what was replayed and what was dropped.
    pub fn recover_from_wal(&mut self) -> ReplayReport {
        let truncated = self.wal.truncate_torn_tail();
        self.store = TableStore::new();
        self.wal.replay_into(&mut self.store);
        ReplayReport {
            replayed: self.wal.len() as u64,
            truncated,
        }
    }

    /// Fault injection: corrupts the checksum of the last `entries`
    /// WAL entries (a torn write). Returns the number corrupted.
    pub fn corrupt_wal_tail(&mut self, entries: usize) -> usize {
        self.wal.corrupt_tail(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accesses_advance_the_clock() {
        let clock = SimClock::new();
        let mut p = Persistence::new(clock.clone(), StoreCosts::default());
        p.put("t", "k", "v".into());
        let after_write = clock.now();
        assert_eq!(after_write.as_nanos(), 3_000_000);
        p.get("t", "k");
        assert_eq!(clock.now().as_nanos(), 3_150_000);
    }

    #[test]
    fn stats_count_operations() {
        let mut p = Persistence::new(SimClock::new(), StoreCosts::free());
        p.put("t", "a", "1".into());
        p.get("t", "a");
        p.scan("t");
        p.delete("t", "a");
        let stats = p.stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(stats.reads, 1);
        assert_eq!(stats.scans, 1);
    }

    #[test]
    fn crash_recovery_replays_wal() {
        let mut p = Persistence::new(SimClock::new(), StoreCosts::free());
        p.put("t", "a", "1".into());
        p.put("t", "b", "2".into());
        p.delete("t", "a");
        let report = p.recover_from_wal();
        assert_eq!(report.replayed, 3);
        assert_eq!(report.truncated, 0);
        assert_eq!(p.store().get("t", "b"), Some("2"));
        assert_eq!(p.store().get("t", "a"), None);
    }

    #[test]
    fn torn_tail_is_dropped_on_recovery() {
        let mut p = Persistence::new(SimClock::new(), StoreCosts::free());
        p.put("t", "a", "1".into());
        p.put("t", "b", "2".into());
        assert_eq!(p.corrupt_wal_tail(1), 1);
        let report = p.recover_from_wal();
        assert_eq!(report.replayed, 1);
        assert_eq!(report.truncated, 1);
        assert_eq!(p.store().get("t", "a"), Some("1"));
        assert_eq!(p.store().get("t", "b"), None, "torn write must not survive");
    }

    #[test]
    fn scan_returns_sorted_rows() {
        let mut p = Persistence::new(SimClock::new(), StoreCosts::free());
        p.put("t", "b", "2".into());
        p.put("t", "a", "1".into());
        let rows = p.scan("t");
        assert_eq!(rows[0].0, "a");
        assert_eq!(rows[1].0, "b");
    }
}
