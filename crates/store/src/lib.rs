//! # dedisys-store
//!
//! Persistence substrate — the MySQL replacement.
//!
//! The original prototype persisted entity-bean state, replica metadata,
//! intermediate replica states (the degraded-mode history enabling
//! rollback during reconciliation) and accepted consistency threats in
//! MySQL. This crate provides the equivalent building blocks:
//!
//! * [`TableStore`] — an in-memory multi-table key/value store holding
//!   serialized records.
//! * [`WriteAheadLog`] — an append-only log that can be replayed into a
//!   fresh store (durability realism + crash-recovery tests).
//! * [`VersionHistory`] — per-key version chains recording the
//!   intermediate states applied during degraded mode (§4.3).
//! * [`Persistence`] — a store bound to a [`SimClock`](dedisys_net::SimClock) and
//!   [`StoreCosts`], so every database access advances virtual time the
//!   way MySQL round trips consumed wall-clock time in the paper's
//!   measurements.
//!
//! ## Example
//!
//! ```
//! use dedisys_store::TableStore;
//!
//! let mut store = TableStore::new();
//! store.put("flights", "LH-441", r#"{"seats":80}"#.to_owned());
//! assert_eq!(store.get("flights", "LH-441").unwrap(), r#"{"seats":80}"#);
//! assert_eq!(store.table_len("flights"), 1);
//! ```

mod history;
mod kv;
mod log;
mod persistence;

pub use history::{HistoryEntry, VersionHistory};
pub use kv::TableStore;
pub use log::{LogEntry, LogOp, ReplayReport, WriteAheadLog};
pub use persistence::{Persistence, StoreCosts, StoreStats};
