//! Write-ahead log with replay and per-entry integrity checksums.

use crate::TableStore;
use serde::{Deserialize, Serialize};

/// The operation recorded by a log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogOp {
    /// Insert or replace a record.
    Put {
        /// Serialized record.
        record: String,
    },
    /// Delete a record.
    Delete,
}

/// One entry of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Monotonically increasing log sequence number.
    pub seq: u64,
    /// Target table.
    pub table: String,
    /// Target key.
    pub key: String,
    /// The operation.
    pub op: LogOp,
    /// FNV-1a checksum over `seq`/`table`/`key`/`op`, written with the
    /// entry. A mismatch marks the entry as torn (a write interrupted
    /// by a crash) — recovery truncates the log there.
    pub checksum: u32,
}

impl LogEntry {
    /// The FNV-1a checksum the entry *should* carry given its payload.
    pub fn expected_checksum(&self) -> u32 {
        entry_checksum(self.seq, &self.table, &self.key, &self.op)
    }

    /// Whether the stored checksum matches the payload.
    pub fn is_intact(&self) -> bool {
        self.checksum == self.expected_checksum()
    }
}

/// FNV-1a over the entry payload. Field boundaries are delimited with
/// a `0xFF` byte (which cannot appear in UTF-8 strings) so
/// `("ab","c")` and `("a","bc")` hash differently.
fn entry_checksum(seq: u64, table: &str, key: &str, op: &LogOp) -> u32 {
    const OFFSET: u32 = 0x811C_9DC5;
    const PRIME: u32 = 16_777_619;
    let mut hash = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u32::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    mix(&seq.to_le_bytes());
    mix(table.as_bytes());
    mix(&[0xFF]);
    mix(key.as_bytes());
    mix(&[0xFF]);
    match op {
        LogOp::Put { record } => {
            mix(&[0x01]);
            mix(record.as_bytes());
        }
        LogOp::Delete => mix(&[0x02]),
    }
    hash
}

/// What a WAL recovery actually did: how many entries were replayed
/// and how many were discarded as a torn tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReplayReport {
    /// Intact entries replayed into the fresh store.
    pub replayed: u64,
    /// Entries dropped because a torn entry (and everything after it)
    /// cannot be trusted.
    pub truncated: u64,
}

/// An append-only write-ahead log.
///
/// The store layers append before applying; replay reconstructs a
/// [`TableStore`] after a simulated crash.
///
/// ```
/// use dedisys_store::{TableStore, WriteAheadLog};
///
/// let mut wal = WriteAheadLog::new();
/// wal.append_put("t", "k", "v".to_owned());
/// wal.append_delete("t", "missing");
///
/// let mut recovered = TableStore::new();
/// wal.replay_into(&mut recovered);
/// assert_eq!(recovered.get("t", "k"), Some("v"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteAheadLog {
    entries: Vec<LogEntry>,
    next_seq: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a put operation, returning its sequence number.
    pub fn append_put(
        &mut self,
        table: impl Into<String>,
        key: impl Into<String>,
        record: String,
    ) -> u64 {
        self.append(table.into(), key.into(), LogOp::Put { record })
    }

    /// Appends a delete operation, returning its sequence number.
    pub fn append_delete(&mut self, table: impl Into<String>, key: impl Into<String>) -> u64 {
        self.append(table.into(), key.into(), LogOp::Delete)
    }

    fn append(&mut self, table: String, key: String, op: LogOp) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let checksum = entry_checksum(seq, &table, &key, &op);
        self.entries.push(LogEntry {
            seq,
            table,
            key,
            op,
            checksum,
        });
        seq
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the whole log into `store`.
    pub fn replay_into(&self, store: &mut TableStore) {
        for entry in &self.entries {
            match &entry.op {
                LogOp::Put { record } => {
                    store.put(entry.table.clone(), entry.key.clone(), record.clone());
                }
                LogOp::Delete => {
                    store.delete(&entry.table, &entry.key);
                }
            }
        }
    }

    /// Discards entries with `seq < up_to` (after a checkpoint).
    pub fn truncate_before(&mut self, up_to: u64) {
        self.entries.retain(|e| e.seq >= up_to);
    }

    /// Drops the torn tail: everything from the first entry whose
    /// checksum fails onwards (an interrupted write means nothing after
    /// it reached disk in order). Returns the number of entries
    /// dropped. A fully intact log is untouched.
    pub fn truncate_torn_tail(&mut self) -> u64 {
        let intact_prefix = self
            .entries
            .iter()
            .position(|e| !e.is_intact())
            .unwrap_or(self.entries.len());
        let dropped = self.entries.len() - intact_prefix;
        self.entries.truncate(intact_prefix);
        dropped as u64
    }

    /// Fault injection: corrupts the checksum of the last `entries`
    /// entries, simulating a torn write caught mid-crash. Returns the
    /// number of entries actually corrupted (bounded by the log
    /// length).
    pub fn corrupt_tail(&mut self, entries: usize) -> usize {
        let len = self.entries.len();
        let from = len.saturating_sub(entries);
        for entry in &mut self.entries[from..] {
            entry.checksum = !entry.checksum;
        }
        len - from
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_reconstructs_store() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        wal.append_put("t", "b", "2".into());
        wal.append_put("t", "a", "3".into());
        wal.append_delete("t", "b");

        let mut store = TableStore::new();
        wal.replay_into(&mut store);
        assert_eq!(store.get("t", "a"), Some("3"));
        assert_eq!(store.get("t", "b"), None);
    }

    #[test]
    fn sequence_numbers_are_gap_free() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.append_put("t", "k", "v".into()), 0);
        assert_eq!(wal.append_delete("t", "k"), 1);
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn truncate_before_checkpoint() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        wal.append_put("t", "b", "2".into());
        wal.truncate_before(1);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.entries()[0].key, "b");
    }

    #[test]
    fn entries_serialize() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "k", "v".into());
        let json = serde_json::to_string(wal.entries()).unwrap();
        let back: Vec<LogEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wal.entries());
    }

    #[test]
    fn appended_entries_carry_valid_checksums() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "k", "v".into());
        wal.append_delete("t", "k");
        assert!(wal.entries().iter().all(LogEntry::is_intact));
        // Field boundaries matter: moving a byte between table and key
        // changes the checksum.
        let a = entry_checksum(0, "ab", "c", &LogOp::Delete);
        let b = entry_checksum(0, "a", "bc", &LogOp::Delete);
        assert_ne!(a, b);
    }

    #[test]
    fn torn_tail_is_truncated_intact_log_untouched() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        wal.append_put("t", "b", "2".into());
        wal.append_put("t", "c", "3".into());
        assert_eq!(wal.truncate_torn_tail(), 0);
        assert_eq!(wal.len(), 3);

        assert_eq!(wal.corrupt_tail(2), 2);
        assert_eq!(wal.truncate_torn_tail(), 2);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.entries()[0].key, "a");

        let mut store = TableStore::new();
        wal.replay_into(&mut store);
        assert_eq!(store.get("t", "a"), Some("1"));
        assert_eq!(store.get("t", "b"), None);
    }

    #[test]
    fn corrupt_tail_is_bounded_by_length() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        assert_eq!(wal.corrupt_tail(10), 1);
        assert_eq!(wal.truncate_torn_tail(), 1);
        assert!(wal.is_empty());
        assert_eq!(wal.corrupt_tail(1), 0);
    }
}
