//! Write-ahead log with replay.

use crate::TableStore;
use serde::{Deserialize, Serialize};

/// The operation recorded by a log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogOp {
    /// Insert or replace a record.
    Put {
        /// Serialized record.
        record: String,
    },
    /// Delete a record.
    Delete,
}

/// One entry of the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry {
    /// Monotonically increasing log sequence number.
    pub seq: u64,
    /// Target table.
    pub table: String,
    /// Target key.
    pub key: String,
    /// The operation.
    pub op: LogOp,
}

/// An append-only write-ahead log.
///
/// The store layers append before applying; replay reconstructs a
/// [`TableStore`] after a simulated crash.
///
/// ```
/// use dedisys_store::{TableStore, WriteAheadLog};
///
/// let mut wal = WriteAheadLog::new();
/// wal.append_put("t", "k", "v".to_owned());
/// wal.append_delete("t", "missing");
///
/// let mut recovered = TableStore::new();
/// wal.replay_into(&mut recovered);
/// assert_eq!(recovered.get("t", "k"), Some("v"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteAheadLog {
    entries: Vec<LogEntry>,
    next_seq: u64,
}

impl WriteAheadLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a put operation, returning its sequence number.
    pub fn append_put(
        &mut self,
        table: impl Into<String>,
        key: impl Into<String>,
        record: String,
    ) -> u64 {
        self.append(table.into(), key.into(), LogOp::Put { record })
    }

    /// Appends a delete operation, returning its sequence number.
    pub fn append_delete(&mut self, table: impl Into<String>, key: impl Into<String>) -> u64 {
        self.append(table.into(), key.into(), LogOp::Delete)
    }

    fn append(&mut self, table: String, key: String, op: LogOp) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push(LogEntry {
            seq,
            table,
            key,
            op,
        });
        seq
    }

    /// All entries in append order.
    pub fn entries(&self) -> &[LogEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Replays the whole log into `store`.
    pub fn replay_into(&self, store: &mut TableStore) {
        for entry in &self.entries {
            match &entry.op {
                LogOp::Put { record } => {
                    store.put(entry.table.clone(), entry.key.clone(), record.clone());
                }
                LogOp::Delete => {
                    store.delete(&entry.table, &entry.key);
                }
            }
        }
    }

    /// Discards entries with `seq < up_to` (after a checkpoint).
    pub fn truncate_before(&mut self, up_to: u64) {
        self.entries.retain(|e| e.seq >= up_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_reconstructs_store() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        wal.append_put("t", "b", "2".into());
        wal.append_put("t", "a", "3".into());
        wal.append_delete("t", "b");

        let mut store = TableStore::new();
        wal.replay_into(&mut store);
        assert_eq!(store.get("t", "a"), Some("3"));
        assert_eq!(store.get("t", "b"), None);
    }

    #[test]
    fn sequence_numbers_are_gap_free() {
        let mut wal = WriteAheadLog::new();
        assert_eq!(wal.append_put("t", "k", "v".into()), 0);
        assert_eq!(wal.append_delete("t", "k"), 1);
        assert_eq!(wal.len(), 2);
    }

    #[test]
    fn truncate_before_checkpoint() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "a", "1".into());
        wal.append_put("t", "b", "2".into());
        wal.truncate_before(1);
        assert_eq!(wal.len(), 1);
        assert_eq!(wal.entries()[0].key, "b");
    }

    #[test]
    fn entries_serialize() {
        let mut wal = WriteAheadLog::new();
        wal.append_put("t", "k", "v".into());
        let json = serde_json::to_string(wal.entries()).unwrap();
        let back: Vec<LogEntry> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, wal.entries());
    }
}
