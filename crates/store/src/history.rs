//! Per-key version histories — the degraded-mode state history.
//!
//! The P4 replication protocol stores intermediate states applied
//! during degraded mode so reconciliation can roll back to a previous
//! consistent state (§4.3). The history also powers the fig5-8
//! "reduced history" ablation: with history disabled, only the latest
//! state is retained.

use dedisys_types::{SimTime, Version};
use std::collections::HashMap;

/// One recorded state of a key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryEntry {
    /// Version of the state.
    pub version: Version,
    /// Serialized state.
    pub state: String,
    /// Virtual time at which the state was applied.
    pub at: SimTime,
}

/// Version chains for a set of keys.
#[derive(Debug, Clone, Default)]
pub struct VersionHistory {
    chains: HashMap<String, Vec<HistoryEntry>>,
    enabled: bool,
}

impl VersionHistory {
    /// Creates an enabled history.
    pub fn new() -> Self {
        Self {
            chains: HashMap::new(),
            enabled: true,
        }
    }

    /// Creates a disabled history (the "reduced history" configuration):
    /// only the most recent entry per key is retained.
    pub fn reduced() -> Self {
        Self {
            chains: HashMap::new(),
            enabled: false,
        }
    }

    /// Whether full chains are being kept.
    pub fn is_full_history(&self) -> bool {
        self.enabled
    }

    /// Records a state for `key`.
    ///
    /// # Panics
    ///
    /// Panics if `version` is not strictly newer than the last recorded
    /// version for the key.
    pub fn record(&mut self, key: impl Into<String>, version: Version, state: String, at: SimTime) {
        let chain = self.chains.entry(key.into()).or_default();
        if let Some(last) = chain.last() {
            assert!(
                version > last.version,
                "history must advance: {version} after {}",
                last.version
            );
        }
        if !self.enabled {
            chain.clear();
        }
        chain.push(HistoryEntry { version, state, at });
    }

    /// The most recent entry for `key`.
    pub fn latest(&self, key: &str) -> Option<&HistoryEntry> {
        self.chains.get(key)?.last()
    }

    /// The full chain for `key`, oldest first.
    pub fn chain(&self, key: &str) -> &[HistoryEntry] {
        self.chains.get(key).map_or(&[], Vec::as_slice)
    }

    /// The state recorded at exactly `version`, if retained.
    pub fn state_at(&self, key: &str, version: Version) -> Option<&HistoryEntry> {
        self.chains.get(key)?.iter().find(|e| e.version == version)
    }

    /// Discards entries newer than `version` for `key` (a rollback),
    /// returning the new latest entry.
    pub fn rollback_to(&mut self, key: &str, version: Version) -> Option<&HistoryEntry> {
        let chain = self.chains.get_mut(key)?;
        chain.retain(|e| e.version <= version);
        chain.last()
    }

    /// Total number of retained entries across all keys (the memory the
    /// fig5-8 ablation trades away).
    pub fn total_entries(&self) -> usize {
        self.chains.values().map(Vec::len).sum()
    }

    /// Drops every chain (after successful reconciliation).
    pub fn clear(&mut self) {
        self.chains.clear();
    }

    /// Keys with at least one retained entry, sorted.
    pub fn keys(&self) -> Vec<&str> {
        let mut keys: Vec<&str> = self.chains.keys().map(String::as_str).collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn full_history_keeps_chains() {
        let mut h = VersionHistory::new();
        h.record("k", Version(1), "s1".into(), t(1));
        h.record("k", Version(2), "s2".into(), t(2));
        assert_eq!(h.chain("k").len(), 2);
        assert_eq!(h.latest("k").unwrap().state, "s2");
        assert_eq!(h.state_at("k", Version(1)).unwrap().state, "s1");
        assert_eq!(h.total_entries(), 2);
    }

    #[test]
    fn reduced_history_keeps_only_latest() {
        let mut h = VersionHistory::reduced();
        h.record("k", Version(1), "s1".into(), t(1));
        h.record("k", Version(2), "s2".into(), t(2));
        assert_eq!(h.chain("k").len(), 1);
        assert_eq!(h.latest("k").unwrap().state, "s2");
        assert!(h.state_at("k", Version(1)).is_none());
    }

    #[test]
    fn rollback_discards_newer_states() {
        let mut h = VersionHistory::new();
        for v in 1..=4 {
            h.record("k", Version(v), format!("s{v}"), t(v));
        }
        let latest = h.rollback_to("k", Version(2)).unwrap();
        assert_eq!(latest.state, "s2");
        assert_eq!(h.chain("k").len(), 2);
    }

    #[test]
    #[should_panic(expected = "history must advance")]
    fn non_monotonic_versions_rejected() {
        let mut h = VersionHistory::new();
        h.record("k", Version(2), "a".into(), t(1));
        h.record("k", Version(2), "b".into(), t(2));
    }

    #[test]
    fn clear_and_keys() {
        let mut h = VersionHistory::new();
        h.record("b", Version(1), "x".into(), t(1));
        h.record("a", Version(1), "y".into(), t(1));
        assert_eq!(h.keys(), vec!["a", "b"]);
        h.clear();
        assert_eq!(h.total_entries(), 0);
    }
}
