//! Sequencer-based total-order multicast.
//!
//! The view coordinator (lowest member id, see
//! `dedisys_gms::View::coordinator`) acts as the sequencer: senders
//! submit messages to it, it assigns a gap-free global sequence number
//! and multicasts; receivers deliver strictly in global order.

use dedisys_types::NodeId;
use std::collections::BTreeMap;

/// A message carrying a global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqMessage<M> {
    /// Global order position (0-based, gap-free).
    pub global_seq: u64,
    /// The original sender (not the sequencer).
    pub sender: NodeId,
    /// The payload.
    pub payload: M,
}

/// Assigns global sequence numbers.
#[derive(Debug, Clone, Default)]
pub struct Sequencer {
    next_seq: u64,
}

impl Sequencer {
    /// Creates a sequencer starting at sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Orders a submitted message.
    pub fn order<M>(&mut self, sender: NodeId, payload: M) -> SeqMessage<M> {
        let global_seq = self.next_seq;
        self.next_seq += 1;
        SeqMessage {
            global_seq,
            sender,
            payload,
        }
    }

    /// Number of messages ordered so far.
    pub fn ordered(&self) -> u64 {
        self.next_seq
    }
}

/// Delivers sequenced messages strictly in global order.
#[derive(Debug, Clone, Default)]
pub struct TotalOrderReceiver<M> {
    next_expected: u64,
    holdback: BTreeMap<u64, SeqMessage<M>>,
}

impl<M> TotalOrderReceiver<M> {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        Self {
            next_expected: 0,
            holdback: BTreeMap::new(),
        }
    }

    /// Accepts an arriving sequenced message; returns messages that
    /// became deliverable, in global order. Duplicates are discarded.
    pub fn receive(&mut self, msg: SeqMessage<M>) -> Vec<SeqMessage<M>> {
        if msg.global_seq < self.next_expected {
            return Vec::new();
        }
        self.holdback.entry(msg.global_seq).or_insert(msg);
        let mut out = Vec::new();
        while let Some(next) = self.holdback.remove(&self.next_expected) {
            self.next_expected += 1;
            out.push(next);
        }
        out
    }

    /// The next global sequence number this receiver expects.
    pub fn next_expected(&self) -> u64 {
        self.next_expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencer_assigns_gap_free_order() {
        let mut seq = Sequencer::new();
        let a = seq.order(NodeId(1), "a");
        let b = seq.order(NodeId(2), "b");
        assert_eq!((a.global_seq, b.global_seq), (0, 1));
        assert_eq!(seq.ordered(), 2);
    }

    #[test]
    fn receivers_deliver_in_identical_order() {
        let mut seq = Sequencer::new();
        let msgs: Vec<_> = (0..4).map(|i| seq.order(NodeId(i % 2), i)).collect();

        // Two receivers see different arrival orders.
        let mut r1 = TotalOrderReceiver::new();
        let mut r2 = TotalOrderReceiver::new();
        let mut d1 = Vec::new();
        let mut d2 = Vec::new();
        for m in [&msgs[0], &msgs[2], &msgs[1], &msgs[3]] {
            d1.extend(r1.receive((*m).clone()).into_iter().map(|m| m.payload));
        }
        for m in [&msgs[3], &msgs[2], &msgs[1], &msgs[0]] {
            d2.extend(r2.receive((*m).clone()).into_iter().map(|m| m.payload));
        }
        assert_eq!(d1, d2);
        assert_eq!(d1, vec![0, 1, 2, 3]);
    }

    #[test]
    fn duplicate_sequenced_messages_discarded() {
        let mut seq = Sequencer::new();
        let m = seq.order(NodeId(0), 1);
        let mut r = TotalOrderReceiver::new();
        assert_eq!(r.receive(m.clone()).len(), 1);
        assert!(r.receive(m).is_empty());
        assert_eq!(r.next_expected(), 1);
    }
}
