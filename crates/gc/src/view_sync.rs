//! View-synchronous delivery.
//!
//! Messages are tagged with the view they were sent in; a receiver only
//! delivers messages belonging to its current view. When a new view is
//! installed, messages from older views are flushed (reported
//! separately so the replication layer can hand them to reconciliation
//! rather than applying them out of view).

use dedisys_types::ViewId;

/// Buffers messages per view and enforces same-view delivery.
#[derive(Debug, Clone)]
pub struct ViewSyncBuffer<M> {
    current_view: ViewId,
    flushed: Vec<(ViewId, M)>,
}

impl<M> ViewSyncBuffer<M> {
    /// Creates a buffer for a node currently in `view`.
    pub fn new(view: ViewId) -> Self {
        Self {
            current_view: view,
            flushed: Vec::new(),
        }
    }

    /// The view this buffer currently delivers for.
    pub fn current_view(&self) -> ViewId {
        self.current_view
    }

    /// Offers a message tagged with its send view. Returns `Some` if the
    /// message is deliverable in the current view; stale messages are
    /// retained in the flush list, messages from future views are also
    /// deferred to the flush list (they become relevant after the next
    /// installation).
    pub fn offer(&mut self, view: ViewId, msg: M) -> Option<M> {
        if view == self.current_view {
            Some(msg)
        } else {
            self.flushed.push((view, msg));
            None
        }
    }

    /// Installs a new view, returning the messages that were set aside
    /// (for the reconciliation machinery to inspect).
    pub fn install_view(&mut self, view: ViewId) -> Vec<(ViewId, M)> {
        self.current_view = view;
        std::mem::take(&mut self.flushed)
    }

    /// Number of set-aside messages.
    pub fn flushed_len(&self) -> usize {
        self.flushed.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_view_messages_deliver() {
        let mut buf = ViewSyncBuffer::new(ViewId(1));
        assert_eq!(buf.offer(ViewId(1), "m"), Some("m"));
    }

    #[test]
    fn cross_view_messages_are_set_aside() {
        let mut buf = ViewSyncBuffer::new(ViewId(1));
        assert_eq!(buf.offer(ViewId(0), "old"), None);
        assert_eq!(buf.offer(ViewId(2), "future"), None);
        assert_eq!(buf.flushed_len(), 2);
        let flushed = buf.install_view(ViewId(2));
        assert_eq!(flushed, vec![(ViewId(0), "old"), (ViewId(2), "future")]);
        assert_eq!(buf.flushed_len(), 0);
        assert_eq!(buf.current_view(), ViewId(2));
    }
}
