//! # dedisys-gc
//!
//! Group communication substrate — the Spread-toolkit replacement.
//!
//! The replication service (§4.3) propagates updates from primary to
//! backup replicas via group multicast. This crate provides the
//! ordering and reliability building blocks:
//!
//! * [`FifoSender`] / [`FifoReceiver`] — per-sender FIFO ordering with a
//!   hold-back queue.
//! * [`Sequencer`] / [`TotalOrderReceiver`] — sequencer-based total
//!   order (the view coordinator assigns global sequence numbers).
//! * [`ReliableSender`] — positive-ack tracking with timeout-driven
//!   retransmission.
//! * [`ViewSyncBuffer`] — view-synchronous delivery: messages are
//!   delivered only to members of the view they were sent in.
//! * [`GroupSim`] — an end-to-end simulation wiring the pieces over a
//!   lossy [`dedisys_net::Router`], proving reliable FIFO delivery.
//!
//! ## Example
//!
//! ```
//! use dedisys_gc::{FifoReceiver, FifoSender};
//! use dedisys_types::NodeId;
//!
//! let mut sender = FifoSender::new(NodeId(0));
//! let m1 = sender.stamp("a");
//! let m2 = sender.stamp("b");
//!
//! let mut receiver = FifoReceiver::default();
//! // Arrival out of order — delivery still in FIFO order.
//! assert!(receiver.receive(m2.clone()).is_empty());
//! let delivered = receiver.receive(m1);
//! assert_eq!(delivered.len(), 2);
//! assert_eq!(delivered[0].payload, "a");
//! assert_eq!(delivered[1].payload, "b");
//! ```

mod fifo;
mod group;
mod reliable;
mod total;
mod view_sync;

pub use fifo::{FifoMessage, FifoReceiver, FifoSender};
pub use group::GroupSim;
pub use reliable::{Outstanding, ReliableSender};
pub use total::{SeqMessage, Sequencer, TotalOrderReceiver};
pub use view_sync::ViewSyncBuffer;
