//! Positive-acknowledgement reliability with retransmission.

use dedisys_types::{NodeId, SimDuration, SimTime};
use std::collections::HashMap;

/// A message awaiting acknowledgement from one destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outstanding<M> {
    /// Destination that has not acknowledged yet.
    pub to: NodeId,
    /// Message id (sender-local).
    pub msg_id: u64,
    /// Last (re)transmission time.
    pub last_sent: SimTime,
    /// Number of transmissions so far.
    pub attempts: u32,
    /// The payload (kept for retransmission).
    pub payload: M,
}

/// Tracks unacknowledged messages and decides when to retransmit.
///
/// ```
/// use dedisys_gc::ReliableSender;
/// use dedisys_types::{NodeId, SimDuration, SimTime};
///
/// let mut sender: ReliableSender<&str> = ReliableSender::new(SimDuration::from_millis(5));
/// let id = sender.track(NodeId(1), "update", SimTime::ZERO);
/// assert_eq!(sender.unacked(), 1);
///
/// // Timeout passes without an ack: the message is due for retransmission.
/// let due = sender.due_for_retransmit(SimTime::from_nanos(6_000_000));
/// assert_eq!(due, vec![(NodeId(1), id)]);
///
/// sender.ack(NodeId(1), id);
/// assert_eq!(sender.unacked(), 0);
/// ```
#[derive(Debug, Clone)]
pub struct ReliableSender<M> {
    timeout: SimDuration,
    next_id: u64,
    outstanding: HashMap<(NodeId, u64), Outstanding<M>>,
}

impl<M: Clone> ReliableSender<M> {
    /// Creates a sender with the given retransmission timeout.
    pub fn new(timeout: SimDuration) -> Self {
        Self {
            timeout,
            next_id: 0,
            outstanding: HashMap::new(),
        }
    }

    /// Starts tracking a transmission to `to`; returns the message id.
    pub fn track(&mut self, to: NodeId, payload: M, now: SimTime) -> u64 {
        let msg_id = self.next_id;
        self.next_id += 1;
        self.outstanding.insert(
            (to, msg_id),
            Outstanding {
                to,
                msg_id,
                last_sent: now,
                attempts: 1,
                payload,
            },
        );
        msg_id
    }

    /// Tracks the same logical message to several destinations
    /// (multicast); all copies share one message id.
    pub fn track_multicast<'a>(
        &mut self,
        to: impl IntoIterator<Item = &'a NodeId>,
        payload: M,
        now: SimTime,
    ) -> u64 {
        let msg_id = self.next_id;
        self.next_id += 1;
        for &dest in to {
            self.outstanding.insert(
                (dest, msg_id),
                Outstanding {
                    to: dest,
                    msg_id,
                    last_sent: now,
                    attempts: 1,
                    payload: payload.clone(),
                },
            );
        }
        msg_id
    }

    /// Records an acknowledgement. Unknown acks (duplicates) are
    /// ignored.
    pub fn ack(&mut self, from: NodeId, msg_id: u64) {
        self.outstanding.remove(&(from, msg_id));
    }

    /// Drops every outstanding copy addressed to `node` — used when the
    /// GMS reports the node as unreachable (it will be brought up to
    /// date by reconciliation instead, §4.4).
    pub fn abandon_destination(&mut self, node: NodeId) {
        self.outstanding.retain(|(to, _), _| *to != node);
    }

    /// `(destination, msg_id)` pairs whose timeout expired, ordered
    /// deterministically. Callers retransmit via
    /// [`ReliableSender::payload_of`] and then
    /// [`ReliableSender::mark_retransmitted`].
    pub fn due_for_retransmit(&self, now: SimTime) -> Vec<(NodeId, u64)> {
        let mut due: Vec<(NodeId, u64)> = self
            .outstanding
            .values()
            .filter(|o| now >= o.last_sent + self.timeout)
            .map(|o| (o.to, o.msg_id))
            .collect();
        due.sort();
        due
    }

    /// The payload of an outstanding message, if still tracked.
    pub fn payload_of(&self, to: NodeId, msg_id: u64) -> Option<&M> {
        self.outstanding.get(&(to, msg_id)).map(|o| &o.payload)
    }

    /// Records a retransmission at `now`.
    pub fn mark_retransmitted(&mut self, to: NodeId, msg_id: u64, now: SimTime) {
        if let Some(o) = self.outstanding.get_mut(&(to, msg_id)) {
            o.last_sent = now;
            o.attempts += 1;
        }
    }

    /// Number of unacknowledged (destination, message) copies.
    pub fn unacked(&self) -> usize {
        self.outstanding.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimTime {
        SimTime::from_nanos(n * 1_000_000)
    }

    #[test]
    fn ack_clears_outstanding() {
        let mut s: ReliableSender<u8> = ReliableSender::new(SimDuration::from_millis(10));
        let id = s.track(NodeId(1), 7, ms(0));
        s.ack(NodeId(1), id);
        assert_eq!(s.unacked(), 0);
        s.ack(NodeId(1), id); // duplicate ack ignored
    }

    #[test]
    fn multicast_tracks_each_destination() {
        let mut s: ReliableSender<u8> = ReliableSender::new(SimDuration::from_millis(10));
        let dests = [NodeId(1), NodeId(2)];
        let id = s.track_multicast(&dests, 9, ms(0));
        assert_eq!(s.unacked(), 2);
        s.ack(NodeId(1), id);
        assert_eq!(s.unacked(), 1);
        assert_eq!(s.payload_of(NodeId(2), id), Some(&9));
    }

    #[test]
    fn retransmission_cycle() {
        let mut s: ReliableSender<&str> = ReliableSender::new(SimDuration::from_millis(10));
        let id = s.track(NodeId(1), "m", ms(0));
        assert!(s.due_for_retransmit(ms(5)).is_empty());
        assert_eq!(s.due_for_retransmit(ms(10)), vec![(NodeId(1), id)]);
        s.mark_retransmitted(NodeId(1), id, ms(10));
        assert!(s.due_for_retransmit(ms(15)).is_empty());
        assert_eq!(s.due_for_retransmit(ms(20)), vec![(NodeId(1), id)]);
    }

    #[test]
    fn abandon_destination_drops_copies() {
        let mut s: ReliableSender<u8> = ReliableSender::new(SimDuration::from_millis(10));
        s.track(NodeId(1), 1, ms(0));
        s.track(NodeId(2), 2, ms(0));
        s.abandon_destination(NodeId(1));
        assert_eq!(s.unacked(), 1);
    }
}
