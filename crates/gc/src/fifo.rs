//! Per-sender FIFO ordering.

use dedisys_types::NodeId;
use std::collections::{BTreeMap, HashMap};

/// A message stamped with its sender and per-sender sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FifoMessage<M> {
    /// Originating node.
    pub sender: NodeId,
    /// Per-sender sequence number (0-based, gap-free).
    pub seq: u64,
    /// The payload.
    pub payload: M,
}

/// Stamps outgoing messages with consecutive sequence numbers.
#[derive(Debug, Clone)]
pub struct FifoSender {
    node: NodeId,
    next_seq: u64,
}

impl FifoSender {
    /// Creates a sender for `node`.
    pub fn new(node: NodeId) -> Self {
        Self { node, next_seq: 0 }
    }

    /// Stamps `payload` with the next sequence number.
    pub fn stamp<M>(&mut self, payload: M) -> FifoMessage<M> {
        let seq = self.next_seq;
        self.next_seq += 1;
        FifoMessage {
            sender: self.node,
            seq,
            payload,
        }
    }
}

/// Delivers messages of each sender in sequence order, holding back
/// messages that arrive early.
///
/// Duplicates (same sender and sequence already delivered or held) are
/// discarded — together with [`crate::ReliableSender`] retransmissions
/// this yields exactly-once delivery.
#[derive(Debug, Clone, Default)]
pub struct FifoReceiver<M> {
    next_expected: HashMap<NodeId, u64>,
    holdback: HashMap<NodeId, BTreeMap<u64, FifoMessage<M>>>,
}

impl<M> FifoReceiver<M> {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        Self {
            next_expected: HashMap::new(),
            holdback: HashMap::new(),
        }
    }

    /// Accepts an arriving message; returns every message that became
    /// deliverable (in FIFO order).
    pub fn receive(&mut self, msg: FifoMessage<M>) -> Vec<FifoMessage<M>> {
        let expected = self.next_expected.entry(msg.sender).or_insert(0);
        if msg.seq < *expected {
            return Vec::new(); // duplicate of an already delivered message
        }
        let queue = self.holdback.entry(msg.sender).or_default();
        queue.entry(msg.seq).or_insert(msg);
        let mut out = Vec::new();
        while let Some(next) = queue.remove(expected) {
            *expected += 1;
            out.push(next);
        }
        out
    }

    /// Number of messages held back (received but not yet deliverable).
    pub fn held_back(&self) -> usize {
        self.holdback.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_messages_deliver_immediately() {
        let mut s = FifoSender::new(NodeId(0));
        let mut r = FifoReceiver::new();
        for i in 0..3 {
            let out = r.receive(s.stamp(i));
            assert_eq!(out.len(), 1);
            assert_eq!(out[0].payload, i);
        }
    }

    #[test]
    fn out_of_order_messages_are_held_back() {
        let mut s = FifoSender::new(NodeId(0));
        let m0 = s.stamp("a");
        let m1 = s.stamp("b");
        let m2 = s.stamp("c");
        let mut r = FifoReceiver::new();
        assert!(r.receive(m2).is_empty());
        assert!(r.receive(m1).is_empty());
        assert_eq!(r.held_back(), 2);
        let out = r.receive(m0);
        assert_eq!(
            out.iter().map(|m| m.payload).collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
        assert_eq!(r.held_back(), 0);
    }

    #[test]
    fn duplicates_are_discarded() {
        let mut s = FifoSender::new(NodeId(0));
        let m0 = s.stamp(0);
        let mut r = FifoReceiver::new();
        assert_eq!(r.receive(m0.clone()).len(), 1);
        assert!(r.receive(m0).is_empty());
    }

    #[test]
    fn senders_are_independent() {
        let mut s0 = FifoSender::new(NodeId(0));
        let mut s1 = FifoSender::new(NodeId(1));
        let mut r = FifoReceiver::new();
        let a0 = s0.stamp("a0");
        let b0 = s1.stamp("b0");
        // Each sender's seq 0 delivers independently of the other.
        assert_eq!(r.receive(b0).len(), 1);
        assert_eq!(r.receive(a0).len(), 1);
    }
}
