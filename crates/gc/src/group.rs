//! End-to-end group multicast simulation: reliable FIFO delivery over a
//! lossy simulated network.

use crate::{FifoMessage, FifoReceiver, FifoSender, ReliableSender};
use dedisys_net::{LatencyModel, Router, SimClock, Topology};
use dedisys_types::{NodeId, SimDuration};
use std::collections::HashMap;

/// Wire format of the group simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Wire<M> {
    Data { msg_id: u64, msg: FifoMessage<M> },
    Ack { msg_id: u64 },
}

/// A group of nodes exchanging reliable FIFO multicasts over a lossy
/// router — the integration proof for the `dedisys-gc` building blocks.
///
/// ```
/// use dedisys_gc::GroupSim;
/// use dedisys_types::NodeId;
///
/// // 3 nodes, 20% deterministic message loss.
/// let mut sim: GroupSim<u32> = GroupSim::new(3, 200);
/// for i in 0..10 {
///     sim.multicast(NodeId(0), i);
/// }
/// sim.run_to_quiescence();
/// // Despite the loss, every other member delivered all 10 messages in order.
/// assert_eq!(sim.delivered(NodeId(1)), &(0..10).collect::<Vec<_>>());
/// assert_eq!(sim.delivered(NodeId(2)), &(0..10).collect::<Vec<_>>());
/// ```
#[derive(Debug)]
pub struct GroupSim<M> {
    router: Router<Wire<M>>,
    fifo_senders: HashMap<NodeId, FifoSender>,
    reliable: HashMap<NodeId, ReliableSender<FifoMessage<M>>>,
    receivers: HashMap<NodeId, FifoReceiver<M>>,
    delivered: HashMap<NodeId, Vec<M>>,
    retransmit_timeout: SimDuration,
}

impl<M: Clone + Eq + std::fmt::Debug> GroupSim<M> {
    /// Creates a group of `n` nodes with the given loss rate (per
    /// mille).
    pub fn new(n: u32, loss_per_mille: u16) -> Self {
        let mut latency = LatencyModel::uniform_micros(500);
        latency.set_loss_per_mille(loss_per_mille);
        let clock = SimClock::new();
        let router = Router::new(Topology::fully_connected(n), latency, clock);
        let nodes: Vec<NodeId> = (0..n).map(NodeId).collect();
        let retransmit_timeout = SimDuration::from_millis(5);
        Self {
            router,
            fifo_senders: nodes.iter().map(|&n| (n, FifoSender::new(n))).collect(),
            reliable: nodes
                .iter()
                .map(|&n| (n, ReliableSender::new(retransmit_timeout)))
                .collect(),
            receivers: nodes.iter().map(|&n| (n, FifoReceiver::new())).collect(),
            delivered: nodes.iter().map(|&n| (n, Vec::new())).collect(),
            retransmit_timeout,
        }
    }

    /// Multicasts `payload` from `from` to all other group members.
    pub fn multicast(&mut self, from: NodeId, payload: M) {
        let msg = self
            .fifo_senders
            .get_mut(&from)
            .expect("sender exists")
            .stamp(payload);
        let now = self.router.clock().now();
        let group: Vec<NodeId> = self
            .router
            .topology()
            .nodes()
            .filter(|&n| n != from)
            .collect();
        let msg_id = self
            .reliable
            .get_mut(&from)
            .expect("tracker exists")
            .track_multicast(&group, msg.clone(), now);
        for dest in group {
            let _ = self.router.send(
                from,
                dest,
                Wire::Data {
                    msg_id,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Messages delivered (in order) at `node`.
    pub fn delivered(&self, node: NodeId) -> &Vec<M> {
        self.delivered.get(&node).expect("node exists")
    }

    /// Runs delivery + retransmission rounds until no messages remain
    /// outstanding or in flight.
    ///
    /// # Panics
    ///
    /// Panics if the group fails to quiesce within a large bound
    /// (which would indicate a liveness bug).
    pub fn run_to_quiescence(&mut self) {
        for _round in 0..10_000 {
            // Advance time by one timeout slice and handle deliveries.
            self.router.clock().advance(self.retransmit_timeout);
            let envelopes = self.router.deliver_due();
            for env in envelopes {
                match env.payload {
                    Wire::Data { msg_id, msg } => {
                        let sender = msg.sender;
                        let deliverable = self
                            .receivers
                            .get_mut(&env.to)
                            .expect("receiver exists")
                            .receive(msg);
                        for m in deliverable {
                            self.delivered
                                .get_mut(&env.to)
                                .expect("node exists")
                                .push(m.payload);
                        }
                        // Ack even duplicates so retransmissions stop.
                        let _ = self.router.send(env.to, sender, Wire::Ack { msg_id });
                    }
                    Wire::Ack { msg_id } => {
                        self.reliable
                            .get_mut(&env.to)
                            .expect("tracker exists")
                            .ack(env.from, msg_id);
                    }
                }
            }
            // Retransmit everything that timed out.
            let now = self.router.clock().now();
            let nodes: Vec<NodeId> = self.router.topology().nodes().collect();
            for node in nodes {
                let due = self.reliable[&node].due_for_retransmit(now);
                for (dest, msg_id) in due {
                    let payload = self.reliable[&node]
                        .payload_of(dest, msg_id)
                        .expect("due message is tracked")
                        .clone();
                    let _ = self.router.send(
                        node,
                        dest,
                        Wire::Data {
                            msg_id,
                            msg: payload,
                        },
                    );
                    self.reliable
                        .get_mut(&node)
                        .expect("tracker exists")
                        .mark_retransmitted(dest, msg_id, now);
                }
            }
            let outstanding: usize = self.reliable.values().map(ReliableSender::unacked).sum();
            if outstanding == 0 && self.router.in_flight() == 0 {
                return;
            }
        }
        panic!("group failed to quiesce — liveness bug");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lossless_group_delivers_everything_in_order() {
        let mut sim: GroupSim<u32> = GroupSim::new(4, 0);
        for i in 0..20 {
            sim.multicast(NodeId(0), i);
        }
        sim.run_to_quiescence();
        for n in 1..4 {
            assert_eq!(sim.delivered(NodeId(n)), &(0..20).collect::<Vec<_>>());
        }
        // The sender does not deliver to itself in this harness.
        assert!(sim.delivered(NodeId(0)).is_empty());
    }

    #[test]
    fn heavy_loss_is_masked_by_retransmission() {
        let mut sim: GroupSim<u32> = GroupSim::new(3, 300); // 30% loss
        for i in 0..25 {
            sim.multicast(NodeId(0), i);
        }
        sim.run_to_quiescence();
        assert_eq!(sim.delivered(NodeId(1)), &(0..25).collect::<Vec<_>>());
        assert_eq!(sim.delivered(NodeId(2)), &(0..25).collect::<Vec<_>>());
    }

    #[test]
    fn concurrent_senders_preserve_per_sender_fifo() {
        let mut sim: GroupSim<(u32, u32)> = GroupSim::new(3, 100);
        for i in 0..10 {
            sim.multicast(NodeId(0), (0, i));
            sim.multicast(NodeId(1), (1, i));
        }
        sim.run_to_quiescence();
        let at2 = sim.delivered(NodeId(2)).clone();
        let from0: Vec<u32> = at2
            .iter()
            .filter(|(s, _)| *s == 0)
            .map(|(_, i)| *i)
            .collect();
        let from1: Vec<u32> = at2
            .iter()
            .filter(|(s, _)| *s == 1)
            .map(|(_, i)| *i)
            .collect();
        assert_eq!(from0, (0..10).collect::<Vec<_>>());
        assert_eq!(from1, (0..10).collect::<Vec<_>>());
    }
}
