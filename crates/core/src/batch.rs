//! The deterministic batch-validation engine.
//!
//! Constraint validation dominates the invocation hot path (Chapter 2
//! measures up to 405× for interpretive checks), and every commit or
//! reconciliation walks a *batch* of candidates — constraint ×
//! object-group pairs. This module evaluates such batches on a pool of
//! scoped worker threads while keeping every observable output —
//! `StatsSnapshot`, threat records, the JSONL telemetry trace —
//! **byte-identical** to serial execution:
//!
//! * workers run only the pure evaluation phase
//!   ([`crate::ccm::evaluate_candidate`]): no telemetry, no clock, no
//!   CCM state;
//! * the merge phase ([`Ccm::finish_validation`][crate::Ccm] +
//!   verdict processing) runs serially, in the canonical candidate
//!   order of the batch;
//! * the shard/lane layout recorded in `validation_batch` trace events
//!   is a function of the batch size alone — the physical thread count
//!   never enters the trace.
//!
//! Determinism is the contract the chaos engine and the `repro`
//! reproducibility harness both depend on; `repro fig-par` diffs a
//! serial against a parallel same-seed trace to enforce it.

use crate::ccm::{evaluate_candidate, CallInfo, PartitionEnv, RawEvaluation, ReplicaAccess};
use dedisys_constraints::{ConstraintEngine, RegisteredConstraint};
use dedisys_net::Topology;
use dedisys_object::EntityContainer;
use dedisys_replication::ReplicationManager;
use dedisys_types::{NodeId, ObjectId, TxId, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// How validation batches are evaluated
/// ([`crate::ClusterBuilder::validation_parallelism`]).
///
/// The setting changes wall-clock time only: virtual time, statistics
/// and the telemetry trace are identical across all variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationParallelism {
    /// Evaluate candidates one after another on the calling thread.
    #[default]
    Serial,
    /// Evaluate the canonical shards of a batch on up to `n` scoped
    /// worker threads (`Threads(0)` and `Threads(1)` behave like
    /// [`ValidationParallelism::Serial`]).
    Threads(usize),
}

impl ValidationParallelism {
    /// Upper bound on concurrently evaluating worker threads.
    pub(crate) fn workers(self) -> usize {
        match self {
            Self::Serial => 1,
            Self::Threads(n) => n.max(1),
        }
    }
}

/// Canonical candidates per work unit. Small enough to spread a
/// commit-sized batch over a pool, large enough to amortize the
/// per-shard bookkeeping.
pub(crate) const SHARD_SIZE: usize = 8;

/// Canonical work-unit count of a batch — a pure function of the
/// batch size, deliberately independent of the configured thread
/// count, so `validation_batch` trace events are identical across
/// [`ValidationParallelism`] settings.
pub(crate) fn shard_count(candidates: usize) -> u32 {
    candidates.div_ceil(SHARD_SIZE) as u32
}

/// One constraint × object-group validation candidate of a batch.
#[derive(Clone)]
pub(crate) struct BatchCandidate {
    /// The constraint to validate.
    pub constraint: Arc<RegisteredConstraint>,
    /// The resolved context object (`None` for query-based checks).
    pub context_object: Option<ObjectId>,
    /// Call information for pre-/postconditions.
    pub call: Option<CallInfo>,
    /// The `@pre` snapshot for postconditions.
    pub pre_state: BTreeMap<String, Value>,
}

/// Evaluates `candidates` and returns one [`RawEvaluation`] per
/// candidate, in candidate order.
///
/// Under [`ValidationParallelism::Threads`] the canonical shards are
/// assigned round-robin to scoped worker threads; each worker builds
/// its own [`ReplicaAccess`] over the shared containers and runs the
/// pure evaluation phase only. Results are stitched back by index, so
/// the output is identical to the serial path by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_batch(
    candidates: &[BatchCandidate],
    containers: &[EntityContainer],
    replication: &ReplicationManager,
    topology: &Topology,
    node: NodeId,
    tx: TxId,
    env: PartitionEnv,
    engine: ConstraintEngine,
    parallelism: ValidationParallelism,
) -> Vec<RawEvaluation> {
    let eval_one = |candidate: &BatchCandidate| {
        let mut access = ReplicaAccess::new(containers, replication, topology, node, tx);
        evaluate_candidate(
            &candidate.constraint,
            candidate.context_object.as_ref(),
            candidate.call.as_ref(),
            candidate.pre_state.clone(),
            &mut access,
            env,
            engine,
        )
    };
    let shards = shard_count(candidates.len()) as usize;
    let workers = parallelism.workers().min(shards);
    if workers <= 1 {
        return candidates.iter().map(eval_one).collect();
    }
    let mut results: Vec<Option<RawEvaluation>> = Vec::new();
    results.resize_with(candidates.len(), || None);
    // Static round-robin shard assignment: worker `w` takes shards
    // `w`, `w + workers`, `w + 2·workers`, … — no work stealing, no
    // scheduler-dependent behavior.
    let mut lanes: Vec<Vec<(&[BatchCandidate], &mut [Option<RawEvaluation>])>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (i, shard) in candidates
        .chunks(SHARD_SIZE)
        .zip(results.chunks_mut(SHARD_SIZE))
        .enumerate()
    {
        lanes[i % workers].push(shard);
    }
    std::thread::scope(|scope| {
        let eval_one = &eval_one;
        for lane in lanes {
            scope.spawn(move || {
                for (shard, out) in lane {
                    for (candidate, slot) in shard.iter().zip(out.iter_mut()) {
                        *slot = Some(eval_one(candidate));
                    }
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every shard slot is filled by exactly one worker"))
        .collect()
}

// The scoped workers share the evaluation environment by reference
// and send evaluations back by slot; pin those bounds here so a
// regression surfaces at the definition, not inside `thread::scope`.
const _: () = {
    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}
    fn _batch_engine_bounds() {
        assert_send_sync::<BatchCandidate>();
        assert_send_sync::<EntityContainer>();
        assert_send_sync::<ReplicationManager>();
        assert_send_sync::<Topology>();
        assert_send::<RawEvaluation>();
    }
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_layout_is_a_function_of_size_alone() {
        assert_eq!(shard_count(0), 0);
        assert_eq!(shard_count(1), 1);
        assert_eq!(shard_count(SHARD_SIZE), 1);
        assert_eq!(shard_count(SHARD_SIZE + 1), 2);
        assert_eq!(shard_count(10 * SHARD_SIZE), 10);
    }

    #[test]
    fn worker_counts_clamp_to_serial() {
        assert_eq!(ValidationParallelism::Serial.workers(), 1);
        assert_eq!(ValidationParallelism::Threads(0).workers(), 1);
        assert_eq!(ValidationParallelism::Threads(8).workers(), 8);
    }
}
