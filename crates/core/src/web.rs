//! Negotiation callbacks for Web (request/response) clients (§4.5,
//! Figure 4.8).
//!
//! HTTP cannot call back into the browser. The solution the
//! dissertation implemented for its Struts front-end maps the callback
//! onto the request/response stream:
//!
//! 1. the business request is submitted; when a consistency threat
//!    needs negotiation, the server *parks the working thread* and
//!    ships the negotiation request as the HTTP **response** to the
//!    business request;
//! 2. the user's decision arrives as a **new HTTP request**, which
//!    resumes the parked thread;
//! 3. the business result (or the next negotiation request) is
//!    returned as the response to the decision request.
//!
//! [`WebGateway`] reproduces exactly that: business operations run on a
//! worker thread holding the cluster; its negotiation handler blocks on
//! a channel that [`WebGateway::decide`] feeds. A configurable timeout
//! rejects the threat if the user never answers (the paper's guard
//! against indefinitely blocked negotiation threads).

use crate::negotiation::{NegotiationHandler, ThreatDecision};
use crate::threat::ConsistencyThreat;
use crate::Cluster;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use dedisys_types::{NodeId, Result, TxId, Value};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What the "browser" receives in answer to a request.
#[derive(Debug)]
pub enum WebResponse {
    /// The business operation finished.
    BusinessResult(Result<Value>),
    /// A consistency threat must be negotiated; answer via
    /// [`WebGateway::decide`] with the given id.
    NegotiationRequired {
        /// Session id for the pending negotiation.
        negotiation_id: u64,
        /// The threat to decide on.
        threat: ConsistencyThreat,
    },
}

/// A user's answer to a negotiation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WebDecision {
    /// Accept the threat and continue the business operation.
    pub accept: bool,
}

enum WorkerMsg {
    Threat(ConsistencyThreat),
    Done(Result<Value>),
}

/// Negotiation handler bridging into the request/response world: sends
/// the threat to the gateway and blocks until the decision request
/// arrives (or the timeout rejects).
struct ChannelNegotiationHandler {
    threat_tx: Sender<WorkerMsg>,
    decision_rx: Receiver<WebDecision>,
    timeout: Duration,
}

impl NegotiationHandler for ChannelNegotiationHandler {
    fn negotiate(&mut self, threat: &mut ConsistencyThreat) -> ThreatDecision {
        if self
            .threat_tx
            .send(WorkerMsg::Threat(threat.clone()))
            .is_err()
        {
            return ThreatDecision::Reject;
        }
        match self.decision_rx.recv_timeout(self.timeout) {
            Ok(decision) if decision.accept => ThreatDecision::Accept,
            // Timeout or explicit rejection: do not block forever
            // (§4.5) — the threat is rejected.
            _ => ThreatDecision::Reject,
        }
    }
}

struct PendingSession {
    decision_tx: Sender<WebDecision>,
    inbox: Receiver<WorkerMsg>,
}

/// The server-side gateway of Figure 4.8.
pub struct WebGateway {
    cluster: Arc<Mutex<Cluster>>,
    node: NodeId,
    timeout: Duration,
    next_id: u64,
    pending: HashMap<u64, PendingSession>,
}

impl std::fmt::Debug for WebGateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WebGateway")
            .field("node", &self.node)
            .field("pending", &self.pending.len())
            .finish()
    }
}

impl WebGateway {
    /// Creates a gateway submitting requests through `node`.
    pub fn new(cluster: Arc<Mutex<Cluster>>, node: NodeId) -> Self {
        Self {
            cluster,
            node,
            timeout: Duration::from_secs(5),
            next_id: 0,
            pending: HashMap::new(),
        }
    }

    /// Sets the negotiation timeout (default 5 s of real time).
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// Shared access to the cluster (for request handlers and tests).
    pub fn cluster(&self) -> Arc<Mutex<Cluster>> {
        Arc::clone(&self.cluster)
    }

    /// Submits a business request. `op` runs in a fresh transaction on
    /// a worker thread; the call returns either the business result or
    /// the first negotiation request.
    pub fn submit(
        &mut self,
        op: impl FnOnce(&mut Cluster, TxId) -> Result<Value> + Send + 'static,
    ) -> WebResponse {
        let (inbox_tx, inbox_rx) = bounded::<WorkerMsg>(1);
        let (decision_tx, decision_rx) = bounded::<WebDecision>(1);
        let cluster = Arc::clone(&self.cluster);
        let node = self.node;
        let timeout = self.timeout;
        let worker_inbox = inbox_tx.clone();
        std::thread::spawn(move || {
            let mut cluster = cluster.lock().expect("cluster mutex poisoned");
            let tx = cluster.begin_tx(node);
            cluster.register_negotiation_handler(
                tx,
                Box::new(ChannelNegotiationHandler {
                    threat_tx: worker_inbox,
                    decision_rx,
                    timeout,
                }),
            );
            let result = match op(&mut cluster, tx) {
                Ok(value) => cluster.commit(tx).map(|()| value),
                Err(e) => {
                    let _ = cluster.rollback(tx);
                    Err(e)
                }
            };
            let _ = inbox_tx.send(WorkerMsg::Done(result));
        });
        self.wait_for_next(inbox_rx, decision_tx)
    }

    /// Delivers the user's decision for a pending negotiation; returns
    /// the business result or the next negotiation request.
    ///
    /// # Panics
    ///
    /// Panics if `negotiation_id` is unknown (stale/duplicate decision
    /// requests are an application error in this simulation).
    pub fn decide(&mut self, negotiation_id: u64, decision: WebDecision) -> WebResponse {
        let session = self
            .pending
            .remove(&negotiation_id)
            .unwrap_or_else(|| panic!("unknown negotiation id {negotiation_id}"));
        // The decision request resumes the parked worker…
        let _ = session.decision_tx.send(decision);
        // …and its response carries the business result (or the next
        // negotiation request).
        let (decision_tx, _unused_rx) = bounded::<WebDecision>(1);
        drop(_unused_rx);
        let PendingSession { inbox, .. } = session;
        self.wait_for_worker(inbox, decision_tx)
    }

    /// Abandons a pending negotiation without ever delivering a
    /// decision — the request/response analogue of the user closing
    /// the browser. Dropping the decision channel resumes the parked
    /// worker deterministically (its receive fails with a disconnect
    /// instead of expiring a wall-clock timeout), the threat is
    /// rejected, and the returned response carries the failed
    /// business result.
    ///
    /// # Panics
    ///
    /// Panics if `negotiation_id` is unknown, as [`WebGateway::decide`].
    pub fn abandon(&mut self, negotiation_id: u64) -> WebResponse {
        let session = self
            .pending
            .remove(&negotiation_id)
            .unwrap_or_else(|| panic!("unknown negotiation id {negotiation_id}"));
        let PendingSession { decision_tx, inbox } = session;
        drop(decision_tx);
        let (next_decision_tx, _unused_rx) = bounded::<WebDecision>(1);
        drop(_unused_rx);
        self.wait_for_worker(inbox, next_decision_tx)
    }

    fn wait_for_next(
        &mut self,
        inbox: Receiver<WorkerMsg>,
        decision_tx: Sender<WebDecision>,
    ) -> WebResponse {
        self.wait_for_worker(inbox, decision_tx)
    }

    fn wait_for_worker(
        &mut self,
        inbox: Receiver<WorkerMsg>,
        decision_tx: Sender<WebDecision>,
    ) -> WebResponse {
        match inbox.recv_timeout(self.timeout.saturating_mul(4)) {
            Ok(WorkerMsg::Done(result)) => WebResponse::BusinessResult(result),
            Ok(WorkerMsg::Threat(threat)) => {
                let id = self.next_id;
                self.next_id += 1;
                self.pending
                    .insert(id, PendingSession { decision_tx, inbox });
                WebResponse::NegotiationRequired {
                    negotiation_id: id,
                    threat,
                }
            }
            Err(RecvTimeoutError::Timeout | RecvTimeoutError::Disconnected) => {
                WebResponse::BusinessResult(Err(dedisys_types::Error::Config(
                    "web worker did not respond".into(),
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nodes, ClusterBuilder};
    use dedisys_constraints::{
        expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
    };
    use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
    use dedisys_types::{ObjectId, SatisfactionDegree};
    use std::sync::Arc as StdArc;

    fn gateway() -> (WebGateway, ObjectId) {
        let app = AppDescriptor::new("booking").with_class(
            ClassDescriptor::new("Flight")
                .with_field("seats", Value::Int(0))
                .with_field("sold", Value::Int(0)),
        );
        let ticket = RegisteredConstraint::new(
            ConstraintMeta::new("Ticket").tradeable(SatisfactionDegree::PossiblySatisfied),
            StdArc::new(ExprConstraint::parse("self.sold <= self.seats").unwrap()),
        )
        .context_class("Flight")
        .affects("Flight", "setSold", ContextPreparation::CalledObject);
        let mut cluster = ClusterBuilder::new(2, app)
            .constraint(ticket)
            .build()
            .unwrap();
        let flight = ObjectId::new("Flight", "F1");
        let node = NodeId(0);
        cluster
            .run_tx(node, |c, tx| {
                c.create(node, tx, EntityState::for_class(c.app(), &flight)?)?;
                c.set_field(node, tx, &flight, "seats", Value::Int(80))?;
                c.set_field(node, tx, &flight, "sold", Value::Int(70))
            })
            .unwrap();
        let mut gw = WebGateway::new(Arc::new(Mutex::new(cluster)), node);
        gw.set_timeout(Duration::from_secs(2));
        (gw, flight)
    }

    #[test]
    fn healthy_request_returns_business_result_directly() {
        let (mut gw, flight) = gateway();
        let f = flight.clone();
        let response = gw.submit(move |c, tx| c.get_field(NodeId(0), tx, &f, "sold"));
        match response {
            WebResponse::BusinessResult(Ok(v)) => assert_eq!(v, Value::Int(70)),
            other => panic!("unexpected response: {other:?}"),
        }
    }

    #[test]
    fn degraded_write_ships_negotiation_over_the_response() {
        let (mut gw, flight) = gateway();
        gw.cluster()
            .lock()
            .unwrap()
            .partition(&[nodes![0], nodes![1]])
            .unwrap();
        let f = flight.clone();
        let response = gw.submit(move |c, tx| {
            c.set_field(NodeId(0), tx, &f, "sold", Value::Int(71))
                .map(|()| Value::Null)
        });
        let (id, threat) = match response {
            WebResponse::NegotiationRequired {
                negotiation_id,
                threat,
            } => (negotiation_id, threat),
            other => panic!("expected negotiation, got {other:?}"),
        };
        assert_eq!(threat.constraint.as_str(), "Ticket");
        // The decision request's response carries the business result.
        let response = gw.decide(id, WebDecision { accept: true });
        match response {
            WebResponse::BusinessResult(Ok(_)) => {}
            other => panic!("expected business result, got {other:?}"),
        }
        let cluster = gw.cluster();
        let cluster = cluster.lock().unwrap();
        assert_eq!(cluster.threats().len(), 1, "accepted threat persisted");
    }

    #[test]
    fn rejected_decision_aborts_the_business_operation() {
        let (mut gw, flight) = gateway();
        gw.cluster()
            .lock()
            .unwrap()
            .partition(&[nodes![0], nodes![1]])
            .unwrap();
        let f = flight.clone();
        let response = gw.submit(move |c, tx| {
            c.set_field(NodeId(0), tx, &f, "sold", Value::Int(71))
                .map(|()| Value::Null)
        });
        let id = match response {
            WebResponse::NegotiationRequired { negotiation_id, .. } => negotiation_id,
            other => panic!("expected negotiation, got {other:?}"),
        };
        let response = gw.decide(id, WebDecision { accept: false });
        match response {
            WebResponse::BusinessResult(Err(e)) => {
                assert!(matches!(e, dedisys_types::Error::ThreatRejected { .. }));
            }
            other => panic!("expected rejected result, got {other:?}"),
        }
        let cluster = gw.cluster();
        let cluster = cluster.lock().unwrap();
        assert_eq!(
            cluster.entity_on(NodeId(0), &flight).unwrap().field("sold"),
            &Value::Int(70),
            "write rolled back"
        );
    }

    #[test]
    fn abandoned_negotiation_rejects_without_wall_clock_waits() {
        let (mut gw, flight) = gateway();
        gw.cluster()
            .lock()
            .unwrap()
            .partition(&[nodes![0], nodes![1]])
            .unwrap();
        let f = flight.clone();
        let response = gw.submit(move |c, tx| {
            c.set_field(NodeId(0), tx, &f, "sold", Value::Int(71))
                .map(|()| Value::Null)
        });
        let id = match response {
            WebResponse::NegotiationRequired { negotiation_id, .. } => negotiation_id,
            other => panic!("expected negotiation, got {other:?}"),
        };
        // Never answer: dropping the decision channel resumes the
        // parked worker via a channel disconnect — deterministic, no
        // wall-clock sleep racing the worker's timeout.
        let response = gw.abandon(id);
        match response {
            WebResponse::BusinessResult(Err(e)) => {
                assert!(matches!(e, dedisys_types::Error::ThreatRejected { .. }));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }
}
