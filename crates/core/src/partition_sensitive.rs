//! Partition-sensitive integrity constraints (§5.5.2).
//!
//! With Gifford-style node weights, the GMS exposes the weight of the
//! current partition relative to the whole system (the middleware sets
//! the `"partitionWeight"` fraction and the exact
//! `"partitionWeightUnits"`/`"totalWeightUnits"` integers on every
//! validation context). Data can then be partitioned at runtime: the
//! ticket constraint saves the number of tickets sold in healthy mode
//! and, in degraded mode, grants each partition a share `tₓ` of the
//! remaining tickets proportional to its weight (`t = Σ tₓ`) — so
//! overbooking is (almost) never introduced even though every
//! partition keeps selling.

use dedisys_constraints::{Constraint, ValidationContext};
use dedisys_types::{Error, Result, Value};
use parking_lot::Mutex;

/// Share of a quantity granted to a partition holding `weight` of
/// `total_weight` integer weight units (rounded down — conservative).
///
/// Computed in exact integer arithmetic (`⌊remaining · weight /
/// total_weight⌋`), matching the integer weights the GMS counts: over
/// any disjoint weighting of the cluster the shares never sum above
/// `remaining`, and the full partition (`weight == total_weight`)
/// receives exactly `remaining` — guarantees a float fraction cannot
/// make (e.g. `10 · (1/3 + 1/3 + 1/3)` truncates to 9 units or, with
/// an unlucky rounding of the fraction, hands out one unit too many).
pub fn partition_share_weighted(remaining: i64, weight: u32, total_weight: u32) -> i64 {
    if remaining <= 0 || total_weight == 0 {
        return 0;
    }
    let exact = i128::from(remaining) * i128::from(weight) / i128::from(total_weight);
    i64::try_from(exact).unwrap_or(i64::MAX)
}

fn int_field(ctx: &mut ValidationContext<'_>, name: &str) -> Result<i64> {
    ctx.self_field(name)?
        .as_int()
        .ok_or_else(|| Error::IllTypedField {
            name: name.into(),
            expected: "int".into(),
        })
}

fn weight_units(ctx: &ValidationContext<'_>, key: &str) -> Result<u32> {
    ctx.env(key)
        .and_then(Value::as_int)
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| Error::IllTypedField {
            name: key.into(),
            expected: "non-negative int".into(),
        })
}

/// The partition-sensitive variant of the ticket constraint.
///
/// * Healthy mode: plain `sold ≤ seats`, additionally snapshotting the
///   healthy sales level when — and only when — the check passes.
/// * Degraded mode: `sold − sold_healthy ≤ ⌊(seats − sold_healthy) ·
///   w / W⌋` where `w`/`W` are the partition's and the cluster's
///   integer weight units — each partition sells only its share.
///
/// Missing or mis-typed fields and environment values surface as
/// [`Error::IllTypedField`] instead of validating against a default —
/// a misconfigured deployment must not pass (or fail) spuriously.
#[derive(Debug)]
pub struct PartitionSensitiveTicketConstraint {
    seats_field: String,
    sold_field: String,
    healthy_sold: Mutex<i64>,
}

impl PartitionSensitiveTicketConstraint {
    /// Creates the constraint over the given fields.
    pub fn new(seats_field: impl Into<String>, sold_field: impl Into<String>) -> Self {
        Self {
            seats_field: seats_field.into(),
            sold_field: sold_field.into(),
            healthy_sold: Mutex::new(0),
        }
    }

    /// The last healthy-mode sales snapshot.
    pub fn healthy_sold(&self) -> i64 {
        *self.healthy_sold.lock()
    }
}

impl Constraint for PartitionSensitiveTicketConstraint {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        let seats = int_field(ctx, &self.seats_field)?;
        let sold = int_field(ctx, &self.sold_field)?;
        let healthy = match ctx.env("healthy") {
            None => true,
            Some(v) => v.as_bool().ok_or_else(|| Error::IllTypedField {
                name: "healthy".into(),
                expected: "bool".into(),
            })?,
        };
        if healthy {
            let ok = sold <= seats;
            // Snapshot only a state the constraint accepts: an
            // overbooked healthy state must not become the
            // degraded-mode baseline, or the shares of every later
            // partition would be computed from the very state this
            // check just rejected.
            if ok {
                *self.healthy_sold.lock() = sold;
            }
            return Ok(ok);
        }
        let weight = weight_units(ctx, "partitionWeightUnits")?;
        let total = weight_units(ctx, "totalWeightUnits")?;
        let baseline = *self.healthy_sold.lock();
        let remaining = seats - baseline;
        let share = partition_share_weighted(remaining, weight, total);
        Ok(sold - baseline <= share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_constraints::MapAccess;
    use dedisys_types::ObjectId;

    fn world(sold: i64, seats: i64) -> (MapAccess, ObjectId) {
        let id = ObjectId::new("Flight", "F1");
        let mut w = MapAccess::new();
        w.put_field(&id, "seats", Value::Int(seats));
        w.put_field(&id, "sold", Value::Int(sold));
        (w, id)
    }

    #[test]
    fn weighted_shares_are_exact() {
        assert_eq!(partition_share_weighted(10, 1, 3), 3);
        assert_eq!(partition_share_weighted(10, 2, 3), 6);
        assert_eq!(partition_share_weighted(10, 3, 3), 10);
        assert_eq!(partition_share_weighted(0, 1, 2), 0);
        assert_eq!(partition_share_weighted(-5, 1, 2), 0);
        assert_eq!(partition_share_weighted(10, 1, 0), 0);
        // Disjoint weightings never sum above the remainder.
        let shares: i64 = [5, 4, 3]
            .iter()
            .map(|&w| partition_share_weighted(100, w, 12))
            .sum();
        assert!(shares <= 100);
    }

    #[test]
    fn healthy_mode_checks_plain_capacity_and_snapshots() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        let (mut w, id) = world(70, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("healthy", Value::Bool(true));
        assert_eq!(c.validate(&mut ctx), Ok(true));
        assert_eq!(c.healthy_sold(), 70);
    }

    #[test]
    fn violating_healthy_check_keeps_the_previous_snapshot() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        // Establish a consistent baseline of 70.
        {
            let (mut w, id) = world(70, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(true));
            assert_eq!(c.validate(&mut ctx), Ok(true));
        }
        // An overbooked healthy state is rejected — and must not move
        // the baseline the degraded-mode shares are computed from.
        {
            let (mut w, id) = world(90, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(true));
            assert_eq!(c.validate(&mut ctx), Ok(false));
        }
        assert_eq!(c.healthy_sold(), 70);
        // Degraded-mode shares still start from the consistent 70.
        let (mut w, id) = world(75, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("healthy", Value::Bool(false));
        ctx.set_env("partitionWeightUnits", Value::Int(1));
        ctx.set_env("totalWeightUnits", Value::Int(2));
        assert_eq!(c.validate(&mut ctx), Ok(true), "75 ≤ 70 + 5");
    }

    #[test]
    fn degraded_partition_limited_to_its_share() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        // Healthy snapshot at 70 of 80 → 10 remaining.
        {
            let (mut w, id) = world(70, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(true));
            c.validate(&mut ctx).unwrap();
        }
        // Partition with 1 of 2 weight units may sell 5 more.
        let (mut w, id) = world(75, 80);
        let mut ctx = ValidationContext::for_invariant(id.clone(), &mut w);
        ctx.set_env("healthy", Value::Bool(false));
        ctx.set_env("partitionWeightUnits", Value::Int(1));
        ctx.set_env("totalWeightUnits", Value::Int(2));
        assert_eq!(c.validate(&mut ctx), Ok(true), "75 ≤ 70 + 5");

        let (mut w, id) = world(76, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("healthy", Value::Bool(false));
        ctx.set_env("partitionWeightUnits", Value::Int(1));
        ctx.set_env("totalWeightUnits", Value::Int(2));
        assert_eq!(c.validate(&mut ctx), Ok(false), "76 > 70 + 5");
    }

    #[test]
    fn missing_or_mistyped_inputs_error_instead_of_defaulting() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        // Mis-typed field.
        {
            let id = ObjectId::new("Flight", "F1");
            let mut w = MapAccess::new();
            w.put_field(&id, "seats", Value::Str("eighty".into()));
            w.put_field(&id, "sold", Value::Int(70));
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(true));
            assert_eq!(
                c.validate(&mut ctx),
                Err(Error::IllTypedField {
                    name: "seats".into(),
                    expected: "int".into(),
                })
            );
        }
        // Degraded mode without the integer weight units.
        {
            let (mut w, id) = world(75, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(false));
            assert_eq!(
                c.validate(&mut ctx),
                Err(Error::IllTypedField {
                    name: "partitionWeightUnits".into(),
                    expected: "non-negative int".into(),
                })
            );
        }
        // Mis-typed healthy flag.
        {
            let (mut w, id) = world(75, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Int(1));
            assert_eq!(
                c.validate(&mut ctx),
                Err(Error::IllTypedField {
                    name: "healthy".into(),
                    expected: "bool".into(),
                })
            );
        }
    }
}
