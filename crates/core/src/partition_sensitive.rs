//! Partition-sensitive integrity constraints (§5.5.2).
//!
//! With Gifford-style node weights, the GMS exposes the weight of the
//! current partition relative to the whole system (the middleware sets
//! the `"partitionWeight"` environment value on every validation
//! context). Data can then be partitioned at runtime: the ticket
//! constraint saves the number of tickets sold in healthy mode and, in
//! degraded mode, grants each partition a share `tₓ` of the remaining
//! tickets proportional to its weight (`t = Σ tₓ`) — so overbooking is
//! (almost) never introduced even though every partition keeps
//! selling.

use dedisys_constraints::{Constraint, ValidationContext};
use dedisys_types::{Result, Value};
use parking_lot::Mutex;

/// Share of a quantity granted to a partition with the given weight
/// fraction (rounded down — conservative).
pub fn partition_share(remaining: i64, fraction: f64) -> i64 {
    if remaining <= 0 {
        return 0;
    }
    ((remaining as f64) * fraction).floor() as i64
}

/// The partition-sensitive variant of the ticket constraint.
///
/// * Healthy mode: plain `sold ≤ seats`, additionally snapshotting the
///   healthy sales level.
/// * Degraded mode: `sold − sold_healthy ≤ ⌊(seats − sold_healthy) ·
///   w⌋` where `w` is the partition's weight fraction — each partition
///   sells only its share.
#[derive(Debug)]
pub struct PartitionSensitiveTicketConstraint {
    seats_field: String,
    sold_field: String,
    healthy_sold: Mutex<i64>,
}

impl PartitionSensitiveTicketConstraint {
    /// Creates the constraint over the given fields.
    pub fn new(seats_field: impl Into<String>, sold_field: impl Into<String>) -> Self {
        Self {
            seats_field: seats_field.into(),
            sold_field: sold_field.into(),
            healthy_sold: Mutex::new(0),
        }
    }

    /// The last healthy-mode sales snapshot.
    pub fn healthy_sold(&self) -> i64 {
        *self.healthy_sold.lock()
    }
}

impl Constraint for PartitionSensitiveTicketConstraint {
    fn validate(&self, ctx: &mut ValidationContext<'_>) -> Result<bool> {
        let seats = ctx.self_field(&self.seats_field)?.as_int().unwrap_or(0);
        let sold = ctx.self_field(&self.sold_field)?.as_int().unwrap_or(0);
        let healthy = ctx.env("healthy").and_then(Value::as_bool).unwrap_or(true);
        if healthy {
            *self.healthy_sold.lock() = sold;
            return Ok(sold <= seats);
        }
        let fraction = ctx
            .env("partitionWeight")
            .and_then(Value::as_float)
            .unwrap_or(1.0);
        let baseline = *self.healthy_sold.lock();
        let remaining = seats - baseline;
        let share = partition_share(remaining, fraction);
        Ok(sold - baseline <= share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_constraints::MapAccess;
    use dedisys_types::ObjectId;

    fn world(sold: i64, seats: i64) -> (MapAccess, ObjectId) {
        let id = ObjectId::new("Flight", "F1");
        let mut w = MapAccess::new();
        w.put_field(&id, "seats", Value::Int(seats));
        w.put_field(&id, "sold", Value::Int(sold));
        (w, id)
    }

    #[test]
    fn shares_round_down() {
        assert_eq!(partition_share(10, 1.0 / 3.0), 3);
        assert_eq!(partition_share(10, 2.0 / 3.0), 6);
        assert_eq!(partition_share(0, 0.5), 0);
        assert_eq!(partition_share(-5, 0.5), 0);
    }

    #[test]
    fn healthy_mode_checks_plain_capacity_and_snapshots() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        let (mut w, id) = world(70, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("healthy", Value::Bool(true));
        assert_eq!(c.validate(&mut ctx), Ok(true));
        assert_eq!(c.healthy_sold(), 70);
    }

    #[test]
    fn degraded_partition_limited_to_its_share() {
        let c = PartitionSensitiveTicketConstraint::new("seats", "sold");
        // Healthy snapshot at 70 of 80 → 10 remaining.
        {
            let (mut w, id) = world(70, 80);
            let mut ctx = ValidationContext::for_invariant(id, &mut w);
            ctx.set_env("healthy", Value::Bool(true));
            c.validate(&mut ctx).unwrap();
        }
        // Partition with 1/2 weight may sell 5 more.
        let (mut w, id) = world(75, 80);
        let mut ctx = ValidationContext::for_invariant(id.clone(), &mut w);
        ctx.set_env("healthy", Value::Bool(false));
        ctx.set_env("partitionWeight", Value::Float(0.5));
        assert_eq!(c.validate(&mut ctx), Ok(true), "75 ≤ 70 + 5");

        let (mut w, id) = world(76, 80);
        let mut ctx = ValidationContext::for_invariant(id, &mut w);
        ctx.set_env("healthy", Value::Bool(false));
        ctx.set_env("partitionWeight", Value::Float(0.5));
        assert_eq!(c.validate(&mut ctx), Ok(false), "76 > 70 + 5");
    }
}
