//! # dedisys-core
//!
//! Middleware support for adaptive dependability through explicit
//! runtime integrity constraints — the primary contribution of the
//! reproduced dissertation.
//!
//! Integrity and availability are competing dependability attributes:
//! strong consistency impairs availability under network partitions,
//! while high availability risks improper alterations. This crate
//! balances the two *explicitly*, at runtime, per constraint:
//!
//! * the [`Ccm`] (Constraint Consistency Manager) triggers validation
//!   around intercepted invocations, detects **consistency threats**
//!   (validations that could only use possibly stale objects — LCC — or
//!   no objects at all — NCC, §3.1) and negotiates them;
//! * accepted threats are persisted ([`ThreatStore`]) and re-evaluated
//!   during the **reconciliation phase** after failures are repaired,
//!   with rollback search and application callbacks for actual
//!   violations;
//! * a [`Cluster`] assembles the full middleware stack (Figure 4.1) —
//!   containers, transactions, replication, GMS — over a deterministic
//!   virtual clock so the Chapter 5 evaluations are reproducible;
//! * [`web`] reproduces the §4.5 solution for negotiation callbacks in
//!   HTTP request/response clients;
//! * [`partition_sensitive`] implements the §5.5.2 partition-sensitive
//!   constraint improvement.
//!
//! ## Quickstart
//!
//! ```
//! use dedisys_constraints::{expr::ExprConstraint, ConstraintMeta, ContextPreparation,
//!     RegisteredConstraint};
//! use dedisys_core::ClusterBuilder;
//! use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
//! use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, Value};
//! use std::sync::Arc;
//!
//! # fn main() -> dedisys_types::Result<()> {
//! let app = AppDescriptor::new("booking").with_class(
//!     ClassDescriptor::new("Flight")
//!         .with_field("seats", Value::Int(0))
//!         .with_field("sold", Value::Int(0)),
//! );
//! let ticket = RegisteredConstraint::new(
//!     ConstraintMeta::new("Ticket").tradeable(SatisfactionDegree::PossiblySatisfied),
//!     Arc::new(ExprConstraint::parse("self.sold <= self.seats")?),
//! )
//! .context_class("Flight")
//! .affects("Flight", "setSold", ContextPreparation::CalledObject);
//!
//! let mut cluster = ClusterBuilder::new(3, app).constraint(ticket).build()?;
//! let flight = ObjectId::new("Flight", "LH-441");
//! let node = NodeId(0);
//! cluster.run_tx(node, |c, tx| {
//!     c.create(node, tx, EntityState::for_class(c.app(), &flight)?)?;
//!     c.set_field(node, tx, &flight, "seats", Value::Int(80))
//! })?;
//!
//! // Selling beyond capacity violates the constraint and aborts.
//! let result = cluster.run_tx(node, |c, tx| {
//!     c.set_field(node, tx, &flight, "sold", Value::Int(81))
//! });
//! assert!(result.is_err());
//! # Ok(())
//! # }
//! ```

mod batch;
mod ccm;
mod cluster;
mod config;
mod costs;
pub mod interactions;
mod negotiation;
pub mod partition_sensitive;
pub mod plane;
mod reconciliation;
mod session;
mod threat;
pub mod web;

pub use batch::ValidationParallelism;
pub use ccm::{
    evaluate_candidate, CachedVerdict, CallInfo, Ccm, CcmStats, NegotiationTiming, PartitionEnv,
    PendingCheck, RawEvaluation, ReplicaAccess, ValidationVerdict,
};
pub use cluster::{
    getter_name, setter_name, Cluster, ClusterBuilder, ClusterMetrics, HookInfo, InDoubtTx,
    StatsSnapshot,
};
pub use config::{
    ClusterConfig, DurabilityConfig, MembershipConfig, PlaneConfig, ValidationConfig,
};
pub use plane::{ClassCounters, ModeGate, PlaneReport, PlaneStats, RequestPlane};
pub use session::Session;

/// Builds a `Vec<NodeId>` from integer literals — the terse spelling
/// for [`Cluster::partition`] groups:
/// `cluster.partition(&[nodes![0, 1], nodes![2]])`.
#[macro_export]
macro_rules! nodes {
    ($($n:expr),* $(,)?) => {
        vec![$(::dedisys_types::NodeId($n)),*]
    };
}
pub use costs::CostModel;
pub use negotiation::{negotiate, NegotiationHandler, NegotiationPath, ThreatDecision};
pub use reconciliation::{
    ConstraintReconcileReport, ConstraintReconciliationHandler, DeferAll, ReconOps,
    ReconcileStrategy, ReconciliationSummary, ViolationReport,
};
pub use threat::{
    CompactionReport, ConsistencyThreat, HistoryPolicy, ReconcileInstructions, StoreOutcome,
    ThreatIdentity, ThreatStore,
};

// Re-export the pieces users need to assemble a cluster.
pub use dedisys_constraints::ConstraintEngine;
pub use dedisys_gms::{
    AdaptiveConfig, DetectorConfig, DetectorKind, LinkFault, MembershipSim, MinorityWriteHandling,
    NodeWeights, PrimaryPartitionPolicy, StabilizerConfig,
};
pub use dedisys_replication::{
    HighestVersionWins, ProtocolKind, ReplicaConflict, ReplicaConsistencyHandler,
};
pub use dedisys_telemetry::{
    JsonlExporter, MetricsSnapshot, RingRecorder, Telemetry, TraceEvent, TraceRecord, TraceSink,
    TransitionCause,
};
