//! The consolidated, typed cluster configuration.
//!
//! PRs 6–8 accreted ~15 loose knobs on [`ClusterBuilder`]; this module
//! gathers them into four cohesive sub-configs under one
//! [`ClusterConfig`] value that travels from the builder into the
//! running [`Cluster`](crate::Cluster) unchanged:
//!
//! * [`ValidationConfig`] — how constraints are looked up, evaluated
//!   and negotiated,
//! * [`MembershipConfig`] — failure detection, view stabilization and
//!   primary-partition write admission,
//! * [`DurabilityConfig`] — threat history, reconciliation strategy
//!   and replica-history depth,
//! * [`PlaneConfig`] — the request plane's admission control, queue
//!   bounds, deadlines and mode-coupled shedding.
//!
//! Build-time configuration goes through
//! [`ClusterBuilder::config`](crate::ClusterBuilder::config); runtime
//! deltas go through
//! [`Cluster::reconfigure`](crate::Cluster::reconfigure), which applies
//! every changed field atomically and emits one `reconfigure` trace
//! event naming the dotted paths that changed.

use crate::batch::ValidationParallelism;
use crate::ccm::NegotiationTiming;
use crate::reconciliation::ReconcileStrategy;
use crate::threat::HistoryPolicy;
use dedisys_constraints::{ConstraintEngine, LookupMode};
use dedisys_gms::{
    AdaptiveConfig, DetectorConfig, DetectorKind, MinorityWriteHandling, PrimaryPartitionPolicy,
    StabilizerConfig,
};
use dedisys_types::{PriorityClass, SatisfactionDegree, SimDuration};

/// How constraints are looked up, evaluated and negotiated.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ValidationConfig {
    /// How validation batches are evaluated (serial or a deterministic
    /// thread pool). Runtime-reconfigurable.
    pub parallelism: ValidationParallelism,
    /// The constraint evaluation engine (interpreted walker vs
    /// compiled stack-VM programs). Runtime-reconfigurable; switching
    /// to `Compiled` lowers and charges for every registered
    /// constraint, and any switch clears the verdict cache.
    pub engine: ConstraintEngine,
    /// Whether the version-keyed verdict cache answers cacheable
    /// invariant checks. Runtime-reconfigurable; toggling clears the
    /// cache.
    pub verdict_cache: bool,
    /// The constraint-repository lookup mode. Build-time only — the
    /// repository's index layout is fixed at construction.
    pub lookup_mode: LookupMode,
    /// Immediate or deferred threat negotiation (§5.4).
    /// Runtime-reconfigurable.
    pub negotiation_timing: NegotiationTiming,
    /// Application-wide default minimum satisfaction degree.
    /// Runtime-reconfigurable.
    pub app_default_min_degree: SatisfactionDegree,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        Self {
            parallelism: ValidationParallelism::default(),
            engine: ConstraintEngine::default(),
            verdict_cache: false,
            lookup_mode: LookupMode::Cached,
            negotiation_timing: NegotiationTiming::Immediate,
            app_default_min_degree: SatisfactionDegree::Satisfied,
        }
    }
}

/// Failure detection, view stabilization and primary-partition write
/// admission.
///
/// Everything except [`primary_policy`](Self::primary_policy) and
/// [`minority_writes`](Self::minority_writes) is build-time only: the
/// detector pipeline is wired (or not) when the cluster is built.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MembershipConfig {
    /// Whether the detector-driven membership pipeline runs at all
    /// (default: off — tests script topology changes explicitly).
    /// Build-time only.
    pub detector_enabled: bool,
    /// The failure-detector kind (fixed timeout vs φ-accrual).
    /// Build-time only.
    pub detector: DetectorKind,
    /// Heartbeat/timeout configuration of the detector. Build-time
    /// only.
    pub detector_config: DetectorConfig,
    /// φ-accrual parameters ([`DetectorKind::Adaptive`]). Build-time
    /// only.
    pub adaptive: AdaptiveConfig,
    /// Hysteresis / flap-damping parameters of the view stabilizer.
    /// Build-time only.
    pub stabilizer: StabilizerConfig,
    /// Seed of the pipeline's deterministic loss/jitter draws.
    /// Build-time only.
    pub seed: u64,
    /// How a partition classifies itself primary (§5.5.2).
    /// Runtime-reconfigurable.
    pub primary_policy: PrimaryPartitionPolicy,
    /// What happens to minority-partition writes under a quorum
    /// policy. Runtime-reconfigurable.
    pub minority_writes: MinorityWriteHandling,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        Self {
            detector_enabled: false,
            detector: DetectorKind::default(),
            detector_config: DetectorConfig::default(),
            adaptive: AdaptiveConfig::default(),
            stabilizer: StabilizerConfig::default(),
            seed: 0,
            primary_policy: PrimaryPartitionPolicy::default(),
            minority_writes: MinorityWriteHandling::default(),
        }
    }
}

/// Threat history, reconciliation strategy and replica-history depth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// The threat-history policy (§5.5.1). Build-time only — the
    /// store's record layout depends on it.
    pub threat_policy: HistoryPolicy,
    /// How constraint reconciliation picks the threats to re-evaluate.
    /// Runtime-reconfigurable.
    pub reconcile_strategy: ReconcileStrategy,
    /// Duplicate threat records tolerated before the
    /// [`HistoryPolicy::Reduced`] store folds them.
    /// Runtime-reconfigurable.
    pub compaction_threshold: usize,
    /// Whether replicas keep only the latest state (reduced history).
    /// Runtime-reconfigurable.
    pub reduced_replica_history: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        Self {
            threat_policy: HistoryPolicy::IdenticalOnce,
            reconcile_strategy: ReconcileStrategy::default(),
            compaction_threshold: 32,
            reduced_replica_history: false,
        }
    }
}

/// The request plane's admission control, queue bounds, deadlines and
/// mode-coupled shedding. All fields are runtime-reconfigurable; the
/// plane reads the cluster's live config at every admission and
/// dispatch step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlaneConfig {
    /// Per-node bound on the total queued requests across all
    /// priority classes. An arrival at the bound displaces queued
    /// lower-priority work or is rejected.
    pub queue_capacity: u32,
    /// Token-bucket refill rate, in admissions per virtual second.
    pub refill_per_second: u64,
    /// Token-bucket capacity — the largest instantaneous burst a node
    /// admits from a full bucket.
    pub burst: u32,
    /// Default virtual-time deadline for `Critical` requests submitted
    /// without one (`None`: no deadline).
    pub deadline_critical: Option<SimDuration>,
    /// Default deadline for `Normal` requests.
    pub deadline_normal: Option<SimDuration>,
    /// Default deadline for `Background` requests.
    pub deadline_background: Option<SimDuration>,
    /// Whether degraded / minority-partition backpressure sheds queued
    /// `Background` work before dispatching anything else.
    pub shed_background_when_degraded: bool,
}

impl PlaneConfig {
    /// The configured default deadline for `class`.
    pub fn default_deadline(&self, class: PriorityClass) -> Option<SimDuration> {
        match class {
            PriorityClass::Critical => self.deadline_critical,
            PriorityClass::Normal => self.deadline_normal,
            PriorityClass::Background => self.deadline_background,
        }
    }
}

impl Default for PlaneConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 16,
            refill_per_second: 2_000,
            burst: 32,
            deadline_critical: None,
            deadline_normal: Some(SimDuration::from_millis(250)),
            deadline_background: Some(SimDuration::from_millis(1_000)),
            shed_background_when_degraded: true,
        }
    }
}

/// The complete typed configuration of a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClusterConfig {
    /// Constraint lookup, evaluation and negotiation.
    pub validation: ValidationConfig,
    /// Failure detection and primary-partition write admission.
    pub membership: MembershipConfig,
    /// Threat history and reconciliation.
    pub durability: DurabilityConfig,
    /// Request-plane admission and shedding.
    pub plane: PlaneConfig,
}

impl ClusterConfig {
    /// Dotted paths of every field in which `self` and `other`
    /// differ — the payload of the `reconfigure` trace event.
    pub fn diff(&self, other: &ClusterConfig) -> Vec<String> {
        let mut changed = Vec::new();
        macro_rules! cmp {
            ($($section:ident . $field:ident),* $(,)?) => {
                $(
                    if self.$section.$field != other.$section.$field {
                        changed.push(concat!(
                            stringify!($section), ".", stringify!($field)
                        ).to_string());
                    }
                )*
            };
        }
        cmp!(
            validation.parallelism,
            validation.engine,
            validation.verdict_cache,
            validation.lookup_mode,
            validation.negotiation_timing,
            validation.app_default_min_degree,
            membership.detector_enabled,
            membership.detector,
            membership.detector_config,
            membership.adaptive,
            membership.stabilizer,
            membership.seed,
            membership.primary_policy,
            membership.minority_writes,
            durability.threat_policy,
            durability.reconcile_strategy,
            durability.compaction_threshold,
            durability.reduced_replica_history,
            plane.queue_capacity,
            plane.refill_per_second,
            plane.burst,
            plane.deadline_critical,
            plane.deadline_normal,
            plane.deadline_background,
            plane.shed_background_when_degraded,
        );
        changed
    }

    /// Dotted paths of changed fields that cannot be applied to a
    /// running cluster (their subsystems are wired at build time).
    pub fn immutable_diff(&self, other: &ClusterConfig) -> Vec<String> {
        self.diff(other)
            .into_iter()
            .filter(|path| {
                matches!(
                    path.as_str(),
                    "validation.lookup_mode"
                        | "membership.detector_enabled"
                        | "membership.detector"
                        | "membership.detector_config"
                        | "membership.adaptive"
                        | "membership.stabilizer"
                        | "membership.seed"
                        | "durability.threat_policy"
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_names_changed_fields() {
        let a = ClusterConfig::default();
        let mut b = a;
        b.validation.verdict_cache = true;
        b.plane.burst = 1;
        assert_eq!(a.diff(&b), vec!["validation.verdict_cache", "plane.burst"]);
        assert!(a.immutable_diff(&b).is_empty());
    }

    #[test]
    fn immutable_fields_are_flagged() {
        let a = ClusterConfig::default();
        let mut b = a;
        b.membership.seed = 7;
        b.durability.threat_policy = HistoryPolicy::FullHistory;
        b.durability.compaction_threshold = 4;
        assert_eq!(
            a.immutable_diff(&b),
            vec!["membership.seed", "durability.threat_policy"]
        );
    }

    #[test]
    fn identical_configs_have_empty_diff() {
        let a = ClusterConfig::default();
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn plane_deadlines_index_by_class() {
        let plane = PlaneConfig::default();
        assert_eq!(plane.default_deadline(PriorityClass::Critical), None);
        assert!(plane.default_deadline(PriorityClass::Normal).is_some());
        assert!(plane.default_deadline(PriorityClass::Background).is_some());
    }
}
