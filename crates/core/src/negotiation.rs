//! Consistency-threat negotiation (§3.2.1, Figure 3.3).

use crate::threat::ConsistencyThreat;
use dedisys_constraints::RegisteredConstraint;
use dedisys_types::{SatisfactionDegree, VersionInfo};
use std::collections::BTreeMap;

/// Outcome of negotiating one threat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreatDecision {
    /// Continue the operation; the threat is persisted for
    /// reconciliation.
    Accept,
    /// Abort the current operation/transaction.
    Reject,
}

/// Dynamic (algorithmic) negotiation callback, registered per
/// transaction (§4.2.3) — with or without user intervention.
pub trait NegotiationHandler: Send {
    /// Decides whether to accept the threat. The handler may enrich
    /// the threat with application data and reconciliation
    /// instructions before it is persisted (§3.2.2).
    fn negotiate(&mut self, threat: &mut ConsistencyThreat) -> ThreatDecision;
}

impl<F> NegotiationHandler for F
where
    F: FnMut(&mut ConsistencyThreat) -> ThreatDecision + Send,
{
    fn negotiate(&mut self, threat: &mut ConsistencyThreat) -> ThreatDecision {
        self(threat)
    }
}

/// Which mechanism produced a decision (for diagnostics/metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NegotiationPath {
    /// Non-tradeable constraint: rejected automatically.
    NonTradeable,
    /// Dynamic handler bound to the transaction.
    Dynamic,
    /// Static (descriptive) per-constraint declaration.
    Static,
    /// Application-wide default minimum satisfaction degree.
    Default,
}

/// Performs the prioritized negotiation of Figure 3.3:
/// dynamic handler ≻ static declaration ≻ application default.
///
/// `version_infos` supplies the freshness information of the threat's
/// possibly stale objects (keyed by object display name) for the static
/// path's freshness criteria.
pub fn negotiate(
    constraint: &RegisteredConstraint,
    threat: &mut ConsistencyThreat,
    dynamic: Option<&mut dyn NegotiationHandler>,
    version_infos: &BTreeMap<String, (dedisys_types::ClassName, VersionInfo)>,
    app_default_min_degree: SatisfactionDegree,
) -> (ThreatDecision, NegotiationPath) {
    // Non-tradeable constraints reject automatically (§3.2).
    if !constraint.is_tradeable() {
        return (ThreatDecision::Reject, NegotiationPath::NonTradeable);
    }
    // Dynamic negotiation has priority.
    if let Some(handler) = dynamic {
        return (handler.negotiate(threat), NegotiationPath::Dynamic);
    }
    // Static (descriptive): satisfaction degree + freshness criteria.
    let meta = &constraint.meta;
    let statically_declared =
        meta.min_satisfaction_degree != SatisfactionDegree::Satisfied || !meta.freshness.is_empty();
    if statically_declared {
        let degree_ok = threat.degree >= meta.min_satisfaction_degree;
        let freshness_ok = meta.freshness.iter().all(|criterion| {
            version_infos
                .values()
                .filter(|(class, _)| class == &criterion.class)
                .all(|(_, info)| criterion.accepts(*info))
        });
        let decision = if degree_ok && freshness_ok {
            ThreatDecision::Accept
        } else {
            ThreatDecision::Reject
        };
        return (decision, NegotiationPath::Static);
    }
    // Application-wide default.
    let decision = if threat.degree >= app_default_min_degree {
        ThreatDecision::Accept
    } else {
        ThreatDecision::Reject
    };
    (decision, NegotiationPath::Default)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_constraints::{ConstraintMeta, FreshnessCriterion, ValidationContext};
    use dedisys_types::{ClassName, ConstraintName, NodeId, ObjectId, SimTime, TxId, Version};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    fn threat(degree: SatisfactionDegree) -> ConsistencyThreat {
        ConsistencyThreat {
            constraint: ConstraintName::from("C"),
            context_object: Some(ObjectId::new("Flight", "F1")),
            degree,
            affected_objects: BTreeSet::new(),
            app_data: None,
            instructions: Default::default(),
            occurred_at: SimTime::ZERO,
            tx: TxId::new(NodeId(0), 1),
        }
    }

    fn constraint(meta: ConstraintMeta) -> RegisteredConstraint {
        RegisteredConstraint::new(meta, Arc::new(|_: &mut ValidationContext<'_>| Ok(true)))
    }

    fn no_infos() -> BTreeMap<String, (ClassName, VersionInfo)> {
        BTreeMap::new()
    }

    #[test]
    fn non_tradeable_rejects_automatically() {
        let c = constraint(ConstraintMeta::new("C"));
        let (d, path) = negotiate(
            &c,
            &mut threat(SatisfactionDegree::PossiblySatisfied),
            None,
            &no_infos(),
            SatisfactionDegree::Uncheckable,
        );
        assert_eq!(d, ThreatDecision::Reject);
        assert_eq!(path, NegotiationPath::NonTradeable);
    }

    #[test]
    fn dynamic_handler_takes_priority() {
        let c = constraint(
            ConstraintMeta::new("C").tradeable(SatisfactionDegree::Satisfied), // static would reject
        );
        let mut handler = |_: &mut ConsistencyThreat| ThreatDecision::Accept;
        let (d, path) = negotiate(
            &c,
            &mut threat(SatisfactionDegree::Uncheckable),
            Some(&mut handler),
            &no_infos(),
            SatisfactionDegree::Satisfied,
        );
        assert_eq!(d, ThreatDecision::Accept);
        assert_eq!(path, NegotiationPath::Dynamic);
    }

    #[test]
    fn static_declaration_compares_degrees() {
        let c =
            constraint(ConstraintMeta::new("C").tradeable(SatisfactionDegree::PossiblySatisfied));
        let accept = negotiate(
            &c,
            &mut threat(SatisfactionDegree::PossiblySatisfied),
            None,
            &no_infos(),
            SatisfactionDegree::Satisfied,
        );
        assert_eq!(accept.0, ThreatDecision::Accept);
        assert_eq!(accept.1, NegotiationPath::Static);
        let reject = negotiate(
            &c,
            &mut threat(SatisfactionDegree::PossiblyViolated),
            None,
            &no_infos(),
            SatisfactionDegree::Satisfied,
        );
        assert_eq!(reject.0, ThreatDecision::Reject);
    }

    #[test]
    fn static_freshness_criteria_bound_acceptance() {
        let c = constraint(
            ConstraintMeta::new("C")
                .tradeable(SatisfactionDegree::Uncheckable)
                .with_freshness(FreshnessCriterion::new("Flight", 2)),
        );
        let mut infos = no_infos();
        infos.insert(
            "Flight#F1".into(),
            (
                ClassName::from("Flight"),
                VersionInfo::new(Version(3), Version(5)),
            ),
        );
        let (d, _) = negotiate(
            &c,
            &mut threat(SatisfactionDegree::PossiblySatisfied),
            None,
            &infos,
            SatisfactionDegree::Satisfied,
        );
        assert_eq!(d, ThreatDecision::Accept, "2 missed updates ≤ 2");
        infos.insert(
            "Flight#F1".into(),
            (
                ClassName::from("Flight"),
                VersionInfo::new(Version(3), Version(8)),
            ),
        );
        let (d, _) = negotiate(
            &c,
            &mut threat(SatisfactionDegree::PossiblySatisfied),
            None,
            &infos,
            SatisfactionDegree::Satisfied,
        );
        assert_eq!(d, ThreatDecision::Reject, "5 missed updates > 2");
    }

    #[test]
    fn app_default_applies_without_declarations() {
        let mut meta = ConstraintMeta::new("C");
        meta.priority = dedisys_constraints::ConstraintPriority::Tradeable;
        // min degree stays Satisfied and no freshness: not "statically
        // declared", falls through to the app default.
        let c = constraint(meta);
        let (d, path) = negotiate(
            &c,
            &mut threat(SatisfactionDegree::Uncheckable),
            None,
            &no_infos(),
            SatisfactionDegree::Uncheckable,
        );
        assert_eq!(d, ThreatDecision::Accept);
        assert_eq!(path, NegotiationPath::Default);
    }
}
