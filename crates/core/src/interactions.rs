//! Self-description of the middleware/application interaction
//! mechanisms (Table 5.1) and the consistency-management requirements
//! coverage (Appendix A).
//!
//! The dissertation closes its evaluation with two inventories: which
//! interaction mechanisms the middleware offers the application
//! (§5.4, Table 5.1), and how the implementation satisfies the
//! consistency-management requirements abstracted from Tarr & Clarke's
//! model (Appendix A). This module reifies both so tooling (and
//! rustdoc readers) can enumerate them programmatically.

/// A middleware ⇄ application interaction mechanism (Table 5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionKind {
    /// Invocation interception — enables the middleware to provide its
    /// services transparently; AOP-style interception also reaches
    /// calls that would otherwise bypass the middleware.
    InvocationInterception,
    /// Callback — where an immediate response is required (threat
    /// negotiation, reconciliation).
    Callback,
    /// Exception — indication that something failed (violated
    /// constraint, rejected threat); breaks the flow of control, hence
    /// abort/retry semantics.
    Exception,
    /// Metadata — application-specific configuration of the middleware
    /// (constraint descriptors, affected methods, tradeability).
    Metadata,
    /// Persistence — shared-memory-style interaction: the middleware
    /// manages consistency threats durably, the application may read
    /// them.
    Persistence,
    /// Asynchronous behaviour — long-running tasks such as deferred
    /// constraint reconciliation.
    Asynchronous,
}

/// One row of Table 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    /// The mechanism.
    pub kind: InteractionKind,
    /// Its purpose, per the paper.
    pub purpose: &'static str,
    /// Where this reproduction implements it.
    pub implemented_by: &'static str,
}

/// The full Table 5.1 inventory.
pub const INTERACTIONS: &[Interaction] = &[
    Interaction {
        kind: InteractionKind::InvocationInterception,
        purpose: "enables the middleware to provide services around every invocation",
        implemented_by: "dedisys_object::InterceptorChain, Cluster::add_interceptor, the CCM/replication pipeline in Cluster::invoke",
    },
    Interaction {
        kind: InteractionKind::Callback,
        purpose: "immediate responses: threat negotiation and reconciliation",
        implemented_by: "NegotiationHandler, ReplicaConsistencyHandler, ConstraintReconciliationHandler, web::WebGateway",
    },
    Interaction {
        kind: InteractionKind::Exception,
        purpose: "signal violated constraints / rejected threats; abort-retry semantics",
        implemented_by: "Error::{ConstraintViolated, ThreatRejected} propagated from Cluster::invoke/commit",
    },
    Interaction {
        kind: InteractionKind::Metadata,
        purpose: "application-specific configuration of the middleware",
        implemented_by: "ConstraintMeta, ConstraintConfigSet (JSON descriptor), affected methods, freshness criteria",
    },
    Interaction {
        kind: InteractionKind::Persistence,
        purpose: "middleware manages threats durably; the application may inspect them",
        implemented_by: "ThreatStore (WAL-backed), Cluster::threats()",
    },
    Interaction {
        kind: InteractionKind::Asynchronous,
        purpose: "deferred reconciliation and negotiation of long-running transactions",
        implemented_by: "ConstraintReconciliationHandler returning false (deferred), NegotiationTiming::Deferred, ConstraintKind::AsyncInvariant",
    },
];

/// One requirement of the Appendix A consistency-management model and
/// how it is satisfied here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Requirement {
    /// Short requirement label (Appendix A vocabulary).
    pub requirement: &'static str,
    /// The satisfying mechanism in this reproduction.
    pub satisfied_by: &'static str,
}

/// The Appendix A requirements coverage.
pub const REQUIREMENTS: &[Requirement] = &[
    Requirement {
        requirement: "explicit definition of consistency conditions",
        satisfied_by: "Constraint trait + RegisteredConstraint metadata; declarative ExprConstraint",
    },
    Requirement {
        requirement: "automatic triggering of consistency checks",
        satisfied_by: "affected-method trigger points resolved through the constraint repository at interception time",
    },
    Requirement {
        requirement: "tolerance of (potential) inconsistencies",
        satisfied_by: "consistency threats, tradeable constraints, negotiation (§3.2)",
    },
    Requirement {
        requirement: "bounded inconsistency",
        satisfied_by: "min satisfaction degrees, freshness criteria, partition-sensitive constraints",
    },
    Requirement {
        requirement: "recording of tolerated inconsistencies",
        satisfied_by: "WAL-backed ThreatStore with identity-based deduplication",
    },
    Requirement {
        requirement: "eventual resolution / repair",
        satisfied_by: "the reconciliation phase: re-evaluation, rollback search, application handlers, deferred cleanup",
    },
    Requirement {
        requirement: "runtime adaptability of the condition set",
        satisfied_by: "repository add/remove/enable/disable; (re-)enable with full context-object check",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_5_1_mechanism_is_inventoried() {
        use InteractionKind as K;
        let kinds: Vec<K> = INTERACTIONS.iter().map(|i| i.kind).collect();
        for expected in [
            K::InvocationInterception,
            K::Callback,
            K::Exception,
            K::Metadata,
            K::Persistence,
            K::Asynchronous,
        ] {
            assert!(kinds.contains(&expected), "{expected:?} missing");
        }
        assert_eq!(kinds.len(), 6);
    }

    #[test]
    fn inventories_are_fully_described() {
        for i in INTERACTIONS {
            assert!(!i.purpose.is_empty());
            assert!(!i.implemented_by.is_empty());
        }
        assert!(REQUIREMENTS.len() >= 7);
        for r in REQUIREMENTS {
            assert!(!r.satisfied_by.is_empty());
        }
    }
}
