//! The Constraint Consistency Manager (CCMgr, §4.2.3).
//!
//! The CCMgr is notified before and after method invocations (through
//! the invocation interception of the middleware node), looks up
//! affected constraints, triggers validation, gathers accessed objects,
//! degrades the satisfaction degree when possibly stale objects were
//! involved (LCC) or objects were unreachable (NCC), and negotiates the
//! resulting consistency threats (Figure 4.4). As a transactional
//! resource it vetoes commits of transactions with violated soft
//! constraints.

use crate::negotiation::{negotiate, NegotiationHandler, NegotiationPath, ThreatDecision};
use crate::threat::{
    ConsistencyThreat, HistoryPolicy, ReconcileInstructions, StoreOutcome, ThreatStore,
};
use dedisys_constraints::{
    ConstraintEngine, ObjectAccess, ObjectScope, RegisteredConstraint, ValidationContext,
};
use dedisys_net::Topology;
use dedisys_object::EntityContainer;
use dedisys_replication::ReplicationManager;
use dedisys_telemetry::{Telemetry, ThreatStorage, TraceEvent};
use dedisys_types::{
    ClassName, ConstraintName, Error, MethodName, NodeId, ObjectId, Result, SatisfactionDegree,
    SimTime, TxId, Value, Version, VersionInfo,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// CCM counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CcmStats {
    /// Constraint validations triggered.
    pub validations: u64,
    /// Consistency threats detected.
    pub threats_detected: u64,
    /// Threats accepted (stored or tolerated).
    pub threats_accepted: u64,
    /// Threats rejected (operations aborted).
    pub threats_rejected: u64,
    /// Definite violations detected.
    pub violations: u64,
    /// Async-invariant fast-path threats recorded without validation
    /// (§5.5.3).
    pub async_shortcuts: u64,
}

/// Replica-aware object access used during validation: local
/// transactional view first, then the committed state of any reachable
/// replica; unreachable objects error (⇒ NCC).
///
/// Holds only shared references — validation never mutates middleware
/// state — so the parallel batch engine can hand every worker thread
/// its own `ReplicaAccess` over the same containers.
pub struct ReplicaAccess<'a> {
    containers: &'a [EntityContainer],
    replication: &'a ReplicationManager,
    topology: &'a Topology,
    node: NodeId,
    tx: TxId,
}

impl<'a> ReplicaAccess<'a> {
    /// Creates replica-aware access for validation on `node` in `tx`.
    pub fn new(
        containers: &'a [EntityContainer],
        replication: &'a ReplicationManager,
        topology: &'a Topology,
        node: NodeId,
        tx: TxId,
    ) -> Self {
        Self {
            containers,
            replication,
            topology,
            node,
            tx,
        }
    }

    fn find_entity(&self, id: &ObjectId) -> Option<&dedisys_object::EntityState> {
        // A distributed transaction's buffered writes live on the nodes
        // that executed them — prefer those anywhere in the partition
        // (read-your-writes across nodes).
        for n in self.topology.partition_of(self.node) {
            if let Some(e) = self.containers[n.index()].buffered_view(self.tx, id) {
                return Some(e);
            }
        }
        if let Ok(e) = self.containers[self.node.index()].view(self.tx, id) {
            return Some(e);
        }
        for n in self.topology.partition_of(self.node) {
            if let Some(e) = self.containers[n.index()].committed_entity(id) {
                return Some(e);
            }
        }
        None
    }
}

impl ObjectAccess for ReplicaAccess<'_> {
    fn field(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        if !self.replication.is_reachable(id, self.node, self.topology) {
            return Err(Error::ObjectUnreachable(id.clone()));
        }
        match self.find_entity(id) {
            Some(e) => Ok(e.field(field).clone()),
            None => Err(Error::ObjectNotFound(id.clone())),
        }
    }

    fn objects_of_class(&mut self, class: &ClassName) -> Vec<ObjectId> {
        let mut ids: BTreeSet<ObjectId> = BTreeSet::new();
        for n in self.topology.partition_of(self.node) {
            ids.extend(
                self.containers[n.index()]
                    .entities_of_class(class)
                    .map(|e| e.id().clone()),
            );
        }
        ids.into_iter().collect()
    }
}

// Worker threads of the parallel batch engine each construct a
// `ReplicaAccess` over the shared middleware state.
const _: () = {
    fn assert_send<T: Send>() {}
    fn _replica_access_is_thread_safe() {
        assert_send::<ReplicaAccess<'_>>();
    }
};

/// Outcome of the pure evaluation phase of one validation candidate —
/// everything the parallel batch engine may run on a worker thread.
/// Stats, telemetry, staleness degradation and negotiation happen
/// afterwards in [`Ccm::finish_validation`], serially in canonical
/// batch order, so traces stay byte-identical across parallelism
/// settings.
#[derive(Debug)]
pub struct RawEvaluation {
    /// Preliminary satisfaction degree before staleness adjustment, or
    /// the propagated (non-availability) validation failure.
    pub outcome: Result<SatisfactionDegree>,
    /// Objects the validation accessed.
    pub accessed: BTreeSet<ObjectId>,
}

/// The partition-environment values the middleware exposes to
/// constraints via `env(..)` (§5.5.2): the partition weight both as a
/// legacy fraction and as the exact integer units the GMS counts, so
/// partition-sensitive constraints can compute shares without float
/// rounding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionEnv {
    /// `weight / total` as a fraction (`partitionWeight`).
    pub fraction: f64,
    /// Weight units present in the observer's partition
    /// (`partitionWeightUnits`).
    pub weight: u32,
    /// Total weight units across the cluster (`totalWeightUnits`).
    pub total: u32,
}

impl PartitionEnv {
    /// The environment of an undivided cluster (tests, single node).
    pub fn full() -> Self {
        Self {
            fraction: 1.0,
            weight: 1,
            total: 1,
        }
    }
}

/// The pure evaluation phase of [`Ccm::validate_constraint`]: builds
/// the validation context, runs the constraint implementation through
/// the selected engine and maps the raw result onto a preliminary
/// satisfaction degree. Emits no telemetry, advances no clock and
/// touches no CCM state, so batch workers may call it concurrently.
pub fn evaluate_candidate(
    constraint: &RegisteredConstraint,
    context_object: Option<&ObjectId>,
    call: Option<&CallInfo>,
    pre_state: BTreeMap<String, Value>,
    access: &mut ReplicaAccess<'_>,
    env: PartitionEnv,
    engine: ConstraintEngine,
) -> RawEvaluation {
    let topology_healthy = access.topology.is_healthy();
    let mut ctx = match call {
        Some(call) => {
            let mut ctx = ValidationContext::for_method(
                call.target.clone(),
                call.method.clone(),
                call.args.clone(),
                access,
            );
            if let Some(result) = &call.result {
                ctx.set_result(result.clone());
            }
            ctx
        }
        None => match context_object {
            Some(id) => ValidationContext::for_invariant(id.clone(), access),
            None => ValidationContext::for_query(access),
        },
    };
    if let Some(id) = context_object {
        ctx.set_context_object(Some(id.clone()));
    }
    ctx.set_pre_state(pre_state);
    ctx.set_env("partitionWeight", Value::Float(env.fraction));
    ctx.set_env("partitionWeightUnits", Value::Int(env.weight as i64));
    ctx.set_env("totalWeightUnits", Value::Int(env.total as i64));
    ctx.set_env("healthy", Value::Bool(topology_healthy));

    let raw = constraint.implementation.validate_with(engine, &mut ctx);
    let accessed = ctx.accessed_objects().clone();
    drop(ctx);

    let outcome = match raw {
        Ok(true) => Ok(SatisfactionDegree::Satisfied),
        Ok(false) => Ok(SatisfactionDegree::Violated),
        Err(Error::ObjectUnreachable(_)) => Ok(SatisfactionDegree::Uncheckable),
        Err(other) => Err(other),
    };
    RawEvaluation { outcome, accessed }
}

/// The result of validating one constraint, after staleness
/// adjustment.
#[derive(Debug, Clone)]
pub struct ValidationVerdict {
    /// Final satisfaction degree.
    pub degree: SatisfactionDegree,
    /// Objects the validation accessed.
    pub accessed: BTreeSet<ObjectId>,
    /// Freshness info of accessed objects (for static negotiation).
    pub version_infos: BTreeMap<String, (ClassName, VersionInfo)>,
}

impl ValidationVerdict {
    /// The §3.1 check category this validation fell into: FCC for
    /// definite results, LCC when possibly stale copies were involved,
    /// NCC when affected objects were unreachable.
    pub fn check_category(&self) -> dedisys_types::CheckCategory {
        use dedisys_types::CheckCategory;
        match self.degree {
            SatisfactionDegree::Satisfied | SatisfactionDegree::Violated => CheckCategory::Full,
            SatisfactionDegree::PossiblySatisfied | SatisfactionDegree::PossiblyViolated => {
                CheckCategory::Limited
            }
            SatisfactionDegree::Uncheckable => CheckCategory::NoCheck,
        }
    }
}

/// Call information for pre-/postcondition validation.
#[derive(Debug, Clone)]
pub struct CallInfo {
    /// The called object.
    pub target: ObjectId,
    /// The invoked method.
    pub method: MethodName,
    /// The arguments.
    pub args: Vec<Value>,
    /// The result (postconditions only).
    pub result: Option<Value>,
}

/// A soft/async invariant registered during a transaction, validated
/// at commit time.
#[derive(Debug, Clone)]
pub struct PendingCheck {
    /// The constraint.
    pub constraint: std::sync::Arc<RegisteredConstraint>,
    /// The resolved context object.
    pub context_object: Option<ObjectId>,
}

/// When consistency threats are negotiated (§5.4): immediately when
/// they occur, or deferred until the end of the transaction — the
/// operation continues under the assumption that all threats will be
/// accepted, and the transaction blocks before commit until every
/// decision is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NegotiationTiming {
    /// Negotiate as soon as the threat arises.
    #[default]
    Immediate,
    /// Collect threats during the transaction; negotiate at commit.
    Deferred,
}

/// A threat awaiting deferred negotiation.
struct DeferredThreat {
    constraint: RegisteredConstraint,
    threat: ConsistencyThreat,
    version_infos: BTreeMap<String, (ClassName, VersionInfo)>,
}

/// One memoized verdict of the version-keyed cache: valid while the
/// committed version of the context object is unchanged. Only definite
/// raw outcomes are cached (`Satisfied`/`Violated`) — staleness
/// degradation and unreachability depend on topology and are recomputed
/// at every use.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedVerdict {
    /// Committed version of the context object at evaluation time.
    pub version: Version,
    /// The raw (pre-staleness) satisfaction degree.
    pub degree: SatisfactionDegree,
    /// Objects the original evaluation accessed.
    pub accessed: BTreeSet<ObjectId>,
}

/// The constraint consistency manager.
pub struct Ccm {
    threat_store: ThreatStore,
    pending: HashMap<TxId, Vec<PendingCheck>>,
    handlers: HashMap<TxId, Box<dyn NegotiationHandler>>,
    pre_states: HashMap<(TxId, String), BTreeMap<String, Value>>,
    deferred: HashMap<TxId, Vec<DeferredThreat>>,
    timing: NegotiationTiming,
    app_default_min_degree: SatisfactionDegree,
    default_instructions: ReconcileInstructions,
    /// Guard against middleware/application validation loops (§5.3).
    in_validation: bool,
    /// Version-keyed verdict cache: context object → (observing node,
    /// constraint) → memoized verdict. Object-first so a write
    /// invalidates every dependent entry with one range removal.
    verdict_cache: BTreeMap<ObjectId, BTreeMap<(NodeId, ConstraintName), CachedVerdict>>,
    stats: CcmStats,
    telemetry: Option<Telemetry>,
}

/// Maps a threat-store outcome onto its telemetry representation.
fn storage_kind(outcome: StoreOutcome) -> ThreatStorage {
    match outcome {
        StoreOutcome::Stored => ThreatStorage::Stored,
        StoreOutcome::LinkedOccurrence => ThreatStorage::LinkedOccurrence,
        StoreOutcome::Deduplicated => ThreatStorage::Deduplicated,
    }
}

impl std::fmt::Debug for Ccm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ccm")
            .field("threats", &self.threat_store.len())
            .field("pending_txs", &self.pending.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Ccm {
    /// Creates a CCM with the given threat-history policy.
    pub fn new(policy: HistoryPolicy) -> Self {
        Self {
            threat_store: ThreatStore::new(policy),
            pending: HashMap::new(),
            handlers: HashMap::new(),
            pre_states: HashMap::new(),
            deferred: HashMap::new(),
            timing: NegotiationTiming::Immediate,
            app_default_min_degree: SatisfactionDegree::Satisfied,
            default_instructions: ReconcileInstructions::default(),
            in_validation: false,
            verdict_cache: BTreeMap::new(),
            stats: CcmStats::default(),
            telemetry: None,
        }
    }

    /// Looks up a memoized verdict for (`object`, `node`, `constraint`)
    /// whose cached version matches `version`.
    pub fn cached_verdict(
        &self,
        object: &ObjectId,
        node: NodeId,
        constraint: &ConstraintName,
        version: Version,
    ) -> Option<&CachedVerdict> {
        self.verdict_cache
            .get(object)?
            .get(&(node, constraint.clone()))
            .filter(|c| c.version == version)
    }

    /// Memoizes a verdict. Callers only store definite raw outcomes of
    /// committed state (never buffered transactional views), so abort
    /// paths need no invalidation.
    pub fn store_verdict(
        &mut self,
        object: ObjectId,
        node: NodeId,
        constraint: ConstraintName,
        verdict: CachedVerdict,
    ) {
        debug_assert!(matches!(
            verdict.degree,
            SatisfactionDegree::Satisfied | SatisfactionDegree::Violated
        ));
        self.verdict_cache
            .entry(object)
            .or_default()
            .insert((node, constraint), verdict);
    }

    /// Drops every cached verdict that depends on `object` (as context
    /// object or as an object the evaluation accessed). Returns the
    /// number of entries removed.
    pub fn invalidate_object(&mut self, object: &ObjectId) -> usize {
        let mut removed = self
            .verdict_cache
            .remove(object)
            .map_or(0, |entries| entries.len());
        // Cacheable read-sets never navigate across objects, so the
        // accessed set normally only holds the context object itself —
        // this sweep is a backstop for constraints whose dynamic reads
        // exceeded their static read-set.
        self.verdict_cache.retain(|_, entries| {
            entries.retain(|_, v| {
                let depends = v.accessed.contains(object);
                if depends {
                    removed += 1;
                }
                !depends
            });
            !entries.is_empty()
        });
        removed
    }

    /// Drops every cached verdict of `constraint` (constraint removed
    /// or redefined at runtime). Returns the number of entries removed.
    pub fn invalidate_constraint(&mut self, constraint: &ConstraintName) -> usize {
        let mut removed = 0;
        self.verdict_cache.retain(|_, entries| {
            entries.retain(|(_, name), _| {
                let matches = name == constraint;
                if matches {
                    removed += 1;
                }
                !matches
            });
            !entries.is_empty()
        });
        removed
    }

    /// Clears the whole verdict cache (reconciliation rewrote replica
    /// state, a node restarted, or the cache was toggled off). Returns
    /// the number of entries removed.
    pub fn clear_verdict_cache(&mut self) -> usize {
        let removed = self.verdict_cache.values().map(BTreeMap::len).sum();
        self.verdict_cache.clear();
        removed
    }

    /// Number of memoized verdicts currently held.
    pub fn verdict_cache_len(&self) -> usize {
        self.verdict_cache.values().map(BTreeMap::len).sum()
    }

    /// Wires a telemetry bus; `constraint_validated`, `threat_recorded`
    /// and `threat_rejected` events are emitted from now on.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    fn emit_threat_recorded(
        &self,
        constraint: &RegisteredConstraint,
        context: Option<&ObjectId>,
        degree: SatisfactionDegree,
        outcome: StoreOutcome,
    ) {
        if let Some(t) = &self.telemetry {
            t.metrics().incr("ccm.threats_recorded");
            t.emit(|| TraceEvent::ThreatRecorded {
                constraint: constraint.name().to_string(),
                context: context.map(ToString::to_string),
                degree,
                storage: storage_kind(outcome),
            });
        }
    }

    /// Counts which §3.2 negotiation mechanism decided a threat.
    fn note_negotiation_path(&self, path: NegotiationPath) {
        if let Some(t) = &self.telemetry {
            t.metrics().incr(match path {
                NegotiationPath::NonTradeable => "negotiation.non_tradeable",
                NegotiationPath::Dynamic => "negotiation.dynamic",
                NegotiationPath::Static => "negotiation.static",
                NegotiationPath::Default => "negotiation.default",
            });
        }
    }

    /// CCM counters.
    pub fn stats(&self) -> CcmStats {
        self.stats
    }

    /// The threat store.
    pub fn threat_store(&self) -> &ThreatStore {
        &self.threat_store
    }

    /// Mutable threat store (reconciliation).
    pub fn threat_store_mut(&mut self) -> &mut ThreatStore {
        &mut self.threat_store
    }

    /// Sets the application-wide default minimum satisfaction degree
    /// (lowest-priority negotiation mechanism).
    pub fn set_app_default_min_degree(&mut self, degree: SatisfactionDegree) {
        self.app_default_min_degree = degree;
    }

    /// The application-wide default minimum satisfaction degree.
    pub fn app_default_min_degree(&self) -> SatisfactionDegree {
        self.app_default_min_degree
    }

    /// Selects immediate or deferred negotiation (§5.4).
    pub fn set_negotiation_timing(&mut self, timing: NegotiationTiming) {
        self.timing = timing;
    }

    /// The negotiation timing in force.
    pub fn negotiation_timing(&self) -> NegotiationTiming {
        self.timing
    }

    /// Sets the default reconciliation instructions attached to new
    /// threats.
    pub fn set_default_instructions(&mut self, instructions: ReconcileInstructions) {
        self.default_instructions = instructions;
    }

    /// Registers a dynamic negotiation handler for `tx` (§3.2.1).
    pub fn register_negotiation_handler(&mut self, tx: TxId, handler: Box<dyn NegotiationHandler>) {
        self.handlers.insert(tx, handler);
    }

    /// Registers a soft/async invariant for commit-time validation.
    pub fn register_pending(&mut self, tx: TxId, check: PendingCheck) {
        self.pending.entry(tx).or_default().push(check);
    }

    /// Takes the pending checks of `tx`.
    pub fn take_pending(&mut self, tx: TxId) -> Vec<PendingCheck> {
        self.pending.remove(&tx).unwrap_or_default()
    }

    /// Stores the `@pre` snapshot of a postcondition.
    pub fn store_pre_state(&mut self, tx: TxId, constraint: &str, state: BTreeMap<String, Value>) {
        self.pre_states.insert((tx, constraint.to_owned()), state);
    }

    /// Takes the `@pre` snapshot of a postcondition.
    pub fn take_pre_state(&mut self, tx: TxId, constraint: &str) -> BTreeMap<String, Value> {
        self.pre_states
            .remove(&(tx, constraint.to_owned()))
            .unwrap_or_default()
    }

    /// Clears all per-transaction state of `tx` (commit/rollback).
    pub fn clear_tx(&mut self, tx: TxId) {
        self.pending.remove(&tx);
        self.handlers.remove(&tx);
        self.deferred.remove(&tx);
        self.pre_states.retain(|(t, _), _| *t != tx);
    }

    /// Validates one constraint and adjusts the satisfaction degree for
    /// staleness per §4.2.3.
    ///
    /// # Errors
    ///
    /// Propagates non-availability validation failures (configuration
    /// or expression errors) — unreachable objects are mapped to
    /// [`SatisfactionDegree::Uncheckable`] instead.
    #[allow(clippy::too_many_arguments)]
    pub fn validate_constraint(
        &mut self,
        constraint: &RegisteredConstraint,
        context_object: Option<&ObjectId>,
        call: Option<&CallInfo>,
        pre_state: BTreeMap<String, Value>,
        access: &mut ReplicaAccess<'_>,
        env: PartitionEnv,
        engine: ConstraintEngine,
        now: SimTime,
    ) -> Result<ValidationVerdict> {
        // Re-entrance guard (§5.3): constraints are predicates and must
        // not trigger further constraint validation.
        assert!(
            !self.in_validation,
            "re-entrant constraint validation — middleware/application loop"
        );
        self.in_validation = true;
        let eval = evaluate_candidate(
            constraint,
            context_object,
            call,
            pre_state,
            access,
            env,
            engine,
        );
        self.in_validation = false;
        self.finish_validation(constraint, eval, access, now)
    }

    /// The serial merge phase of one validation: staleness adjustment
    /// (LCC), freshness gathering, stats and telemetry. The parallel
    /// batch engine calls this once per candidate, in canonical batch
    /// order, after the [`evaluate_candidate`] workers finish.
    ///
    /// # Errors
    ///
    /// Propagates the evaluation failure carried in `eval` (the
    /// validation is still counted, matching the serial path).
    pub fn finish_validation(
        &mut self,
        constraint: &RegisteredConstraint,
        eval: RawEvaluation,
        access: &ReplicaAccess<'_>,
        now: SimTime,
    ) -> Result<ValidationVerdict> {
        self.stats.validations += 1;
        let node = access.node;
        let tx = access.tx;
        let RawEvaluation { outcome, accessed } = eval;
        let mut degree = outcome?;

        // LCC: degrade definite results when possibly stale objects
        // were accessed — except intra-object constraints (§3.1).
        if degree.is_definite() && constraint.meta.scope != ObjectScope::IntraObject {
            let any_stale = accessed.iter().any(|id| {
                access
                    .replication
                    .is_possibly_stale(id, node, access.topology)
            });
            if any_stale {
                degree = degree.degrade_for_staleness();
            }
        }

        // Gather freshness info of accessed objects.
        let mut version_infos = BTreeMap::new();
        for id in &accessed {
            let entity =
                access.containers[node.index()]
                    .view(tx, id)
                    .ok()
                    .cloned()
                    .or_else(|| {
                        access.topology.partition_of(node).iter().find_map(|n| {
                            access.containers[n.index()].committed_entity(id).cloned()
                        })
                    });
            if let Some(entity) = entity {
                version_infos.insert(
                    id.to_string(),
                    (id.class().clone(), entity.version_info(now)),
                );
            }
        }

        if degree.is_threat() {
            self.stats.threats_detected += 1;
        } else if degree == SatisfactionDegree::Violated {
            self.stats.violations += 1;
        }

        if let Some(t) = &self.telemetry {
            t.metrics().incr("ccm.validations");
            t.emit(|| TraceEvent::ConstraintValidated {
                constraint: constraint.name().to_string(),
                degree,
                accessed: accessed.len() as u32,
            });
        }

        Ok(ValidationVerdict {
            degree,
            accessed,
            version_infos,
        })
    }

    /// Processes a validation verdict: satisfied → continue (and clean
    /// up matching deferred threats, §4.4); violated → abort; threat →
    /// negotiate and either store (invariants) or tolerate (pre/post,
    /// §3) or abort.
    ///
    /// Returns the store outcome when a threat was persisted (the
    /// cluster charges persistence costs accordingly).
    ///
    /// # Errors
    ///
    /// * [`Error::ConstraintViolated`] — definite violation.
    /// * [`Error::ThreatRejected`] — threat not accepted.
    pub fn process_verdict(
        &mut self,
        constraint: &RegisteredConstraint,
        context_object: Option<ObjectId>,
        verdict: ValidationVerdict,
        tx: TxId,
        now: SimTime,
    ) -> Result<Option<StoreOutcome>> {
        match verdict.degree {
            SatisfactionDegree::Satisfied => {
                // A satisfied validation cleans up deferred threats of
                // the same identity (§4.4).
                let identity = crate::threat::ThreatIdentity {
                    constraint: constraint.name().clone(),
                    context_object,
                };
                self.threat_store.remove_identity(&identity);
                Ok(None)
            }
            SatisfactionDegree::Violated => Err(Error::ConstraintViolated {
                constraint: constraint.name().clone(),
            }),
            degree => {
                let threat = ConsistencyThreat {
                    constraint: constraint.name().clone(),
                    context_object,
                    degree,
                    affected_objects: verdict.accessed,
                    app_data: None,
                    instructions: self.default_instructions,
                    occurred_at: now,
                    tx,
                };
                if self.timing == NegotiationTiming::Deferred {
                    // §5.4: continue under the assumption that the
                    // threat will be accepted; the decision is made at
                    // commit time.
                    self.deferred.entry(tx).or_default().push(DeferredThreat {
                        constraint: constraint.clone(),
                        threat,
                        version_infos: verdict.version_infos,
                    });
                    return Ok(None);
                }
                let mut threat = threat;
                let (decision, path) = {
                    let handler: Option<&mut dyn NegotiationHandler> =
                        match self.handlers.get_mut(&tx) {
                            Some(h) => Some(&mut **h),
                            None => None,
                        };
                    negotiate(
                        constraint,
                        &mut threat,
                        handler,
                        &verdict.version_infos,
                        self.app_default_min_degree,
                    )
                };
                self.note_negotiation_path(path);
                match decision {
                    ThreatDecision::Reject => {
                        self.stats.threats_rejected += 1;
                        if let Some(t) = &self.telemetry {
                            t.metrics().incr("ccm.threats_rejected");
                            t.emit(|| TraceEvent::ThreatRejected {
                                constraint: constraint.name().to_string(),
                                degree,
                            });
                        }
                        Err(Error::ThreatRejected {
                            constraint: constraint.name().clone(),
                            degree,
                        })
                    }
                    ThreatDecision::Accept => {
                        self.stats.threats_accepted += 1;
                        if constraint.meta.kind.is_invariant() {
                            // Invariant threats are persisted for
                            // reconciliation.
                            let context = threat.context_object.clone();
                            let outcome = self.threat_store.store(threat);
                            self.emit_threat_recorded(
                                constraint,
                                context.as_ref(),
                                degree,
                                outcome,
                            );
                            Ok(Some(outcome))
                        } else {
                            // Pre/postcondition threats cannot be
                            // re-evaluated later (§3); their effects
                            // must be covered by invariants.
                            Ok(None)
                        }
                    }
                }
            }
        }
    }

    /// Negotiates every threat deferred during `tx` (called by the
    /// middleware before commit). Returns the storage outcomes of the
    /// accepted invariant threats so the caller can charge persistence
    /// costs.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ThreatRejected`] for the first rejected threat;
    /// the transaction must then be rolled back.
    pub fn negotiate_deferred(&mut self, tx: TxId) -> Result<Vec<StoreOutcome>> {
        let deferred = self.deferred.remove(&tx).unwrap_or_default();
        let mut outcomes = Vec::new();
        for DeferredThreat {
            constraint,
            mut threat,
            version_infos,
        } in deferred
        {
            let (decision, path) = {
                let handler: Option<&mut dyn crate::negotiation::NegotiationHandler> =
                    match self.handlers.get_mut(&tx) {
                        Some(h) => Some(&mut **h),
                        None => None,
                    };
                negotiate(
                    &constraint,
                    &mut threat,
                    handler,
                    &version_infos,
                    self.app_default_min_degree,
                )
            };
            self.note_negotiation_path(path);
            match decision {
                ThreatDecision::Reject => {
                    self.stats.threats_rejected += 1;
                    if let Some(t) = &self.telemetry {
                        t.metrics().incr("ccm.threats_rejected");
                        let degree = threat.degree;
                        t.emit(|| TraceEvent::ThreatRejected {
                            constraint: constraint.name().to_string(),
                            degree,
                        });
                    }
                    return Err(Error::ThreatRejected {
                        constraint: constraint.name().clone(),
                        degree: threat.degree,
                    });
                }
                ThreatDecision::Accept => {
                    self.stats.threats_accepted += 1;
                    if constraint.meta.kind.is_invariant() {
                        let degree = threat.degree;
                        let context = threat.context_object.clone();
                        let outcome = self.threat_store.store(threat);
                        self.emit_threat_recorded(&constraint, context.as_ref(), degree, outcome);
                        outcomes.push(outcome);
                    }
                }
            }
        }
        Ok(outcomes)
    }

    /// Number of threats currently awaiting deferred negotiation in
    /// `tx`.
    pub fn deferred_len(&self, tx: TxId) -> usize {
        self.deferred.get(&tx).map_or(0, Vec::len)
    }

    /// The §5.5.3 asynchronous-constraint fast path: in degraded mode
    /// the constraint is not validated and not negotiated; a threat is
    /// recorded directly for reconciliation-time evaluation.
    pub fn record_async_threat(
        &mut self,
        constraint: &RegisteredConstraint,
        context_object: Option<ObjectId>,
        tx: TxId,
        now: SimTime,
    ) -> StoreOutcome {
        self.stats.async_shortcuts += 1;
        self.stats.threats_detected += 1;
        self.stats.threats_accepted += 1;
        let outcome = self.threat_store.store(ConsistencyThreat {
            constraint: constraint.name().clone(),
            context_object: context_object.clone(),
            degree: SatisfactionDegree::Uncheckable,
            affected_objects: BTreeSet::new(),
            app_data: None,
            instructions: self.default_instructions,
            occurred_at: now,
            tx,
        });
        if let Some(t) = &self.telemetry {
            t.metrics().incr("ccm.async_shortcuts");
        }
        self.emit_threat_recorded(
            constraint,
            context_object.as_ref(),
            SatisfactionDegree::Uncheckable,
            outcome,
        );
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_constraints::expr::ExprConstraint;
    use dedisys_constraints::{ConstraintMeta, ContextPreparation};
    use dedisys_gms::NodeWeights;
    use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
    use dedisys_replication::ProtocolKind;
    use std::sync::Arc;

    fn app() -> AppDescriptor {
        AppDescriptor::new("t").with_class(
            ClassDescriptor::new("Flight")
                .with_field("seats", Value::Int(0))
                .with_field("sold", Value::Int(0)),
        )
    }

    fn ticket_constraint(tradeable: bool) -> RegisteredConstraint {
        let mut meta = ConstraintMeta::new("Ticket");
        if tradeable {
            meta = meta.tradeable(SatisfactionDegree::PossiblySatisfied);
        }
        RegisteredConstraint::new(
            meta,
            Arc::new(ExprConstraint::parse("self.sold <= self.seats").unwrap()),
        )
        .context_class("Flight")
        .affects("Flight", "setSold", ContextPreparation::CalledObject)
    }

    struct World {
        containers: Vec<EntityContainer>,
        replication: ReplicationManager,
        topology: Topology,
        ccm: Ccm,
        id: ObjectId,
        tx: TxId,
    }

    fn setup(n: u32, sold: i64, seats: i64) -> World {
        let mut replication =
            ReplicationManager::new(ProtocolKind::PrimaryPerPartition, NodeWeights::uniform(n));
        let id = ObjectId::new("Flight", "F1");
        replication
            .register_object(id.clone(), (0..n).map(NodeId), NodeId(0))
            .unwrap();
        let mut containers: Vec<EntityContainer> =
            (0..n).map(|_| EntityContainer::new(&app())).collect();
        for c in containers.iter_mut() {
            let tx = TxId::new(NodeId(0), 99);
            let mut e = EntityState::for_class(&app(), &id).unwrap();
            e.set_field("seats", Value::Int(seats), SimTime::ZERO);
            e.set_field("sold", Value::Int(sold), SimTime::ZERO);
            c.create(tx, e).unwrap();
            c.commit(tx);
        }
        World {
            containers,
            replication,
            topology: Topology::fully_connected(n),
            ccm: Ccm::new(HistoryPolicy::IdenticalOnce),
            id,
            tx: TxId::new(NodeId(0), 1),
        }
    }

    fn validate(world: &mut World, constraint: &RegisteredConstraint) -> ValidationVerdict {
        let mut access = ReplicaAccess::new(
            &world.containers,
            &world.replication,
            &world.topology,
            NodeId(0),
            world.tx,
        );
        world
            .ccm
            .validate_constraint(
                constraint,
                Some(&world.id.clone()),
                None,
                BTreeMap::new(),
                &mut access,
                PartitionEnv::full(),
                ConstraintEngine::Interpreted,
                SimTime::ZERO,
            )
            .unwrap()
    }

    #[test]
    fn healthy_validation_is_definite() {
        let mut w = setup(2, 70, 80);
        let c = ticket_constraint(true);
        let v = validate(&mut w, &c);
        assert_eq!(v.degree, SatisfactionDegree::Satisfied);
        assert!(v.accessed.contains(&w.id));
        assert_eq!(v.version_infos.len(), 1);
    }

    #[test]
    fn degraded_validation_degrades_to_possibly() {
        let mut w = setup(2, 70, 80);
        w.topology.split(&[&[0], &[1]]);
        let c = ticket_constraint(true);
        let v = validate(&mut w, &c);
        assert_eq!(v.degree, SatisfactionDegree::PossiblySatisfied);
        // And a violated result degrades to possibly violated.
        let mut w = setup(2, 90, 80);
        w.topology.split(&[&[0], &[1]]);
        let v = validate(&mut w, &c);
        assert_eq!(v.degree, SatisfactionDegree::PossiblyViolated);
    }

    #[test]
    fn intra_object_constraints_stay_definite_under_lcc() {
        let mut w = setup(2, 70, 80);
        w.topology.split(&[&[0], &[1]]);
        let mut c = ticket_constraint(true);
        c.meta.scope = ObjectScope::IntraObject;
        let v = validate(&mut w, &c);
        assert_eq!(v.degree, SatisfactionDegree::Satisfied);
    }

    #[test]
    fn unreachable_objects_make_constraints_uncheckable() {
        let mut w = setup(3, 70, 80);
        // Bind the object to nodes {1,2} only; validate from node 0
        // after a partition.
        w.replication
            .register_object(w.id.clone(), [NodeId(1), NodeId(2)], NodeId(1))
            .unwrap();
        w.topology.split(&[&[0], &[1, 2]]);
        let c = ticket_constraint(true);
        let v = validate(&mut w, &c);
        assert_eq!(v.degree, SatisfactionDegree::Uncheckable);
    }

    #[test]
    fn process_verdict_paths() {
        let mut w = setup(2, 70, 80);
        let c = ticket_constraint(true);

        // Satisfied: no error, nothing stored.
        let v = validate(&mut w, &c);
        let outcome = w
            .ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        assert!(outcome.is_none());

        // Threat (accepted statically): stored.
        w.topology.split(&[&[0], &[1]]);
        let v = validate(&mut w, &c);
        let outcome = w
            .ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome, Some(StoreOutcome::Stored));
        assert_eq!(w.ccm.threat_store().len(), 1);

        // Identical threat: deduplicated.
        let v = validate(&mut w, &c);
        let outcome = w
            .ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        assert_eq!(outcome, Some(StoreOutcome::Deduplicated));
    }

    #[test]
    fn non_tradeable_threats_reject() {
        let mut w = setup(2, 70, 80);
        w.topology.split(&[&[0], &[1]]);
        let c = ticket_constraint(false);
        let v = validate(&mut w, &c);
        let err = w
            .ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::ThreatRejected { .. }));
        assert_eq!(w.ccm.stats().threats_rejected, 1);
    }

    #[test]
    fn violation_in_healthy_mode_errors() {
        let mut w = setup(2, 90, 80);
        let c = ticket_constraint(true);
        let v = validate(&mut w, &c);
        let err = w
            .ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap_err();
        assert!(matches!(err, Error::ConstraintViolated { .. }));
    }

    #[test]
    fn dynamic_handler_enriches_threat() {
        let mut w = setup(2, 70, 80);
        w.topology.split(&[&[0], &[1]]);
        let c = ticket_constraint(false); // would auto-reject…
                                          // …but wait: non-tradeable rejects before the handler. Use a
                                          // tradeable one and verify app data lands in the store.
        let c = {
            let _ = c;
            ticket_constraint(true)
        };
        w.ccm.register_negotiation_handler(
            w.tx,
            Box::new(|threat: &mut ConsistencyThreat| {
                threat.app_data = Some(Value::from("sold-in-partition"));
                threat.instructions.allow_rollback = true;
                ThreatDecision::Accept
            }),
        );
        let v = validate(&mut w, &c);
        w.ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        let stored = &w.ccm.threat_store().threats()[0];
        assert_eq!(stored.app_data, Some(Value::from("sold-in-partition")));
        assert!(stored.instructions.allow_rollback);
    }

    #[test]
    fn satisfied_validation_cleans_up_deferred_threats() {
        let mut w = setup(2, 70, 80);
        let c = ticket_constraint(true);
        w.topology.split(&[&[0], &[1]]);
        let v = validate(&mut w, &c);
        w.ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        assert_eq!(w.ccm.threat_store().len(), 1);
        w.topology.heal();
        let v = validate(&mut w, &c);
        w.ccm
            .process_verdict(&c, Some(w.id.clone()), v, w.tx, SimTime::ZERO)
            .unwrap();
        assert!(w.ccm.threat_store().is_empty(), "cleaned up by business op");
    }

    #[test]
    fn verdict_cache_probe_store_invalidate() {
        let mut ccm = Ccm::new(HistoryPolicy::IdenticalOnce);
        let id = ObjectId::new("Flight", "F1");
        let other = ObjectId::new("Flight", "F2");
        let name = ConstraintName::from("Ticket");
        let verdict = CachedVerdict {
            version: Version(3),
            degree: SatisfactionDegree::Satisfied,
            accessed: BTreeSet::from([id.clone()]),
        };
        ccm.store_verdict(id.clone(), NodeId(0), name.clone(), verdict.clone());
        assert_eq!(
            ccm.cached_verdict(&id, NodeId(0), &name, Version(3)),
            Some(&verdict)
        );
        // Stale version, other node, other constraint: all misses.
        assert!(ccm
            .cached_verdict(&id, NodeId(0), &name, Version(4))
            .is_none());
        assert!(ccm
            .cached_verdict(&id, NodeId(1), &name, Version(3))
            .is_none());
        assert!(ccm
            .cached_verdict(&id, NodeId(0), &ConstraintName::from("Other"), Version(3))
            .is_none());

        // Invalidating an unrelated object leaves the entry alone.
        assert_eq!(ccm.invalidate_object(&other), 0);
        assert_eq!(ccm.verdict_cache_len(), 1);
        assert_eq!(ccm.invalidate_object(&id), 1);
        assert!(ccm
            .cached_verdict(&id, NodeId(0), &name, Version(3))
            .is_none());

        // An entry whose accessed set includes another object is also
        // dropped when that object is invalidated.
        let cross = CachedVerdict {
            accessed: BTreeSet::from([id.clone(), other.clone()]),
            ..verdict.clone()
        };
        ccm.store_verdict(id.clone(), NodeId(0), name.clone(), cross);
        assert_eq!(ccm.invalidate_object(&other), 1);
        assert_eq!(ccm.verdict_cache_len(), 0);

        // Constraint-keyed and wholesale invalidation.
        ccm.store_verdict(id.clone(), NodeId(0), name.clone(), verdict.clone());
        ccm.store_verdict(
            id.clone(),
            NodeId(1),
            ConstraintName::from("Other"),
            verdict.clone(),
        );
        assert_eq!(ccm.invalidate_constraint(&name), 1);
        assert_eq!(ccm.clear_verdict_cache(), 1);
        assert_eq!(ccm.verdict_cache_len(), 0);
    }

    #[test]
    fn async_fast_path_records_without_validation() {
        let mut w = setup(2, 70, 80);
        let c = ticket_constraint(true);
        let outcome = w
            .ccm
            .record_async_threat(&c, Some(w.id.clone()), w.tx, SimTime::ZERO);
        assert_eq!(outcome, StoreOutcome::Stored);
        assert_eq!(w.ccm.stats().validations, 0);
        assert_eq!(w.ccm.stats().async_shortcuts, 1);
    }
}
