//! The cluster façade: a simulated DeDiSys deployment.
//!
//! A [`Cluster`] assembles every middleware service of Figure 4.1 for
//! `n` nodes — entity containers, transaction manager + lock table,
//! constraint repository + CCMgr, replication manager, group
//! membership (view trackers + partition weights) — over the shared
//! virtual clock and cost model. Clients drive it synchronously:
//! operations execute depth-first through the node stacks while the
//! clock advances per the cost model (see DESIGN.md §1).

use crate::batch::{self, BatchCandidate, ValidationParallelism};
use crate::ccm::{
    CallInfo, Ccm, NegotiationTiming, PartitionEnv, PendingCheck, RawEvaluation, ReplicaAccess,
    ValidationVerdict,
};
use crate::config::ClusterConfig;
use crate::negotiation::NegotiationHandler;
use crate::reconciliation::ReconcileStrategy;
use crate::session::Session;
use crate::threat::{HistoryPolicy, ReconcileInstructions, StoreOutcome, ThreatStore};
use crate::CostModel;
use dedisys_constraints::{
    ConstraintEngine, ConstraintKind, ConstraintRepository, LookupKind, RegisteredConstraint,
    ValidationContext,
};
use dedisys_gms::{
    AdaptiveConfig, DetectorConfig, DetectorKind, LinkFault,
    MembershipConfig as GmsMembershipConfig, MembershipEvent, MembershipSim, MinorityWriteHandling,
    NodeWeights, PrimaryPartitionPolicy, StabilizerConfig, ViewTracker,
};
use dedisys_net::{SimClock, Topology};
use dedisys_object::{
    AppDescriptor, EntityContainer, EntityState, InterceptorChain, Invocation, MethodKind,
    MethodTable, NamingService,
};
use dedisys_replication::{ProtocolKind, ReplicationManager};
use dedisys_telemetry::{
    CostBreakdown, InvocationOutcome, MetricsSnapshot, Telemetry, TraceEvent, TransitionCause,
    TriggerKind, TwoPcPhase,
};
use dedisys_tx::{LockTable, TransactionManager};
use dedisys_types::{
    ConstraintName, Error, MethodName, NodeId, ObjectId, Result, SatisfactionDegree, SimDuration,
    SimTime, SystemMode, TxId, Value,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Cluster-level counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Business invocations attempted.
    pub invocations: u64,
    /// Invocations that failed (constraint, threat, availability).
    pub failed_invocations: u64,
    /// Entities created.
    pub creates: u64,
    /// Entities deleted.
    pub deletes: u64,
}

/// One serializable snapshot of every cluster-level statistic — the
/// single aggregate returned by [`Cluster::stats`].
///
/// Serializes cleanly to JSON (`serde_json::to_string(&cluster.stats())`)
/// so benches and operators can dump the full state of a run in one
/// line instead of stitching four accessor calls together.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StatsSnapshot {
    /// Current system mode (Figure 1.4).
    pub mode: SystemMode,
    /// Virtual time of the snapshot, in nanoseconds.
    pub now_ns: u64,
    /// Cluster-level counters (invocations, creates, deletes).
    pub cluster: ClusterMetrics,
    /// CCM counters (validations, threats, violations).
    pub ccm: crate::ccm::CcmStats,
    /// Replication counters (propagations, messages, conflicts).
    pub replication: dedisys_replication::ReplStats,
    /// Transaction counters (begun, committed, rolled back).
    pub tx: dedisys_tx::TxStats,
    /// Telemetry metrics registry (named counters + histograms).
    pub telemetry: MetricsSnapshot,
    /// Total trace events emitted on the telemetry bus.
    pub events_emitted: u64,
}

/// Context handed to application/operator interceptors registered via
/// [`Cluster::add_interceptor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HookInfo {
    /// Node the client issued the invocation on.
    pub node: NodeId,
    /// System mode at invocation time.
    pub mode: SystemMode,
    /// Virtual time at invocation start.
    pub at: SimTime,
}

#[derive(Debug, Default, Clone)]
struct TxInfo {
    involved: BTreeSet<NodeId>,
    /// Objects created in this tx with their chosen placement.
    created: BTreeMap<ObjectId, (Vec<NodeId>, NodeId)>,
}

/// A prepared transaction whose coordinator crashed between prepare
/// and commit (§2PC in-doubt state). Locks and buffers are retained
/// until the recovery protocol resolves it by presumed abort (timeout
/// or coordinator restart).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InDoubtTx {
    /// The crashed coordinator node.
    pub coordinator: NodeId,
    /// Virtual time at which the presumed-abort timeout fires.
    pub deadline: SimTime,
}

/// How one validation candidate's answer was produced — decides the
/// virtual-time charge taken in the serial merge phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ValidationCharge {
    /// Full interpreted evaluation ([`CostModel::constraint_check`]).
    Interpreted,
    /// Compiled stack-VM evaluation
    /// ([`CostModel::compiled_constraint_check`]).
    Compiled,
    /// Version-keyed verdict-cache hit
    /// ([`CostModel::verdict_cache_probe`]).
    CacheHit,
}

/// Builder for [`Cluster`] (C-BUILDER).
///
/// Behavioural knobs live in one typed [`ClusterConfig`] reached via
/// [`ClusterBuilder::config`] / [`ClusterBuilder::configure`]; the
/// remaining builder methods cover structure that is not
/// configuration (nodes, application, methods, constraints, protocol,
/// weights, cost model).
pub struct ClusterBuilder {
    nodes: u32,
    protocol: ProtocolKind,
    weights: Option<NodeWeights>,
    clock: Option<SimClock>,
    costs: CostModel,
    config: ClusterConfig,
    ccm_enabled: bool,
    replication_enabled: bool,
    app: AppDescriptor,
    methods: MethodTable,
    constraints: Vec<RegisteredConstraint>,
    default_instructions: ReconcileInstructions,
}

impl std::fmt::Debug for ClusterBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterBuilder")
            .field("nodes", &self.nodes)
            .field("protocol", &self.protocol)
            .field("ccm", &self.ccm_enabled)
            .field("replication", &self.replication_enabled)
            .field("constraints", &self.constraints.len())
            .finish()
    }
}

impl ClusterBuilder {
    /// Starts a builder for `nodes` nodes running `app`.
    pub fn new(nodes: u32, app: AppDescriptor) -> Self {
        Self {
            nodes,
            protocol: ProtocolKind::PrimaryPerPartition,
            weights: None,
            clock: None,
            costs: CostModel::default(),
            config: ClusterConfig::default(),
            ccm_enabled: true,
            replication_enabled: true,
            app,
            methods: MethodTable::new(),
            constraints: Vec::new(),
            default_instructions: ReconcileInstructions::default(),
        }
    }

    /// Mutable access to the typed configuration — the primary way to
    /// set behavioural knobs:
    ///
    /// ```no_run
    /// # use dedisys_core::ClusterBuilder;
    /// # use dedisys_object::AppDescriptor;
    /// let mut builder = ClusterBuilder::new(3, AppDescriptor::new("app"));
    /// builder.config().validation.verdict_cache = true;
    /// builder.config().durability.compaction_threshold = 8;
    /// let cluster = builder.build()?;
    /// # Ok::<(), dedisys_types::Error>(())
    /// ```
    pub fn config(&mut self) -> &mut ClusterConfig {
        &mut self.config
    }

    /// Chainable variant of [`ClusterBuilder::config`]:
    ///
    /// ```no_run
    /// # use dedisys_core::ClusterBuilder;
    /// # use dedisys_object::AppDescriptor;
    /// let cluster = ClusterBuilder::new(3, AppDescriptor::new("app"))
    ///     .configure(|c| c.validation.verdict_cache = true)
    ///     .build()?;
    /// # Ok::<(), dedisys_types::Error>(())
    /// ```
    pub fn configure(mut self, f: impl FnOnce(&mut ClusterConfig)) -> Self {
        f(&mut self.config);
        self
    }

    /// Replaces the entire configuration (e.g. one prepared offline or
    /// taken from another cluster via [`Cluster::config`]).
    pub fn with_config(mut self, config: ClusterConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the replication protocol (default: P4).
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets explicit node weights (default: uniform).
    pub fn weights(mut self, weights: NodeWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Overrides the cost model.
    pub fn costs(mut self, costs: CostModel) -> Self {
        self.costs = costs;
        self
    }

    /// Shares an externally owned virtual clock instead of creating a
    /// fresh one — the federation layer builds every shard on one
    /// clock so cross-shard timelines (2PC deadlines, detector
    /// heartbeats, trace timestamps) stay mutually consistent.
    pub fn clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Disables the DeDiSys enhancement entirely — the "No DeDiSys"
    /// baseline of Chapter 5 (no CCM, no replication).
    pub fn without_dedisys(mut self) -> Self {
        self.ccm_enabled = false;
        self.replication_enabled = false;
        self
    }

    /// Enables only explicit constraint consistency management without
    /// the replication service — the Figure 5.1 configuration.
    pub fn ccm_only(mut self) -> Self {
        self.ccm_enabled = true;
        self.replication_enabled = false;
        self
    }

    /// Registers custom method bodies.
    pub fn methods(mut self, methods: MethodTable) -> Self {
        self.methods = methods;
        self
    }

    /// Adds a constraint.
    pub fn constraint(mut self, constraint: RegisteredConstraint) -> Self {
        self.constraints.push(constraint);
        self
    }

    /// Adds several constraints.
    pub fn constraints(
        mut self,
        constraints: impl IntoIterator<Item = RegisteredConstraint>,
    ) -> Self {
        self.constraints.extend(constraints);
        self
    }

    /// Sets the default reconciliation instructions.
    pub fn default_instructions(mut self, instructions: ReconcileInstructions) -> Self {
        self.default_instructions = instructions;
        self
    }

    /// Builds the cluster.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on invalid configuration (zero nodes,
    /// duplicate constraint names, weight/node-count mismatch).
    pub fn build(self) -> Result<Cluster> {
        if self.nodes == 0 {
            return Err(Error::Config("a cluster needs at least one node".into()));
        }
        let mut config = self.config;
        // A zero threshold would compact on every duplicate; the old
        // setter clamped, the typed field clamps at build time.
        config.durability.compaction_threshold = config.durability.compaction_threshold.max(1);
        let weights = self
            .weights
            .unwrap_or_else(|| NodeWeights::uniform(self.nodes));
        if weights.node_count() != self.nodes {
            return Err(Error::Config(format!(
                "weights cover {} nodes, cluster has {}",
                weights.node_count(),
                self.nodes
            )));
        }
        let clock = self.clock.unwrap_or_default();
        // One telemetry bus per cluster, stamped from the shared
        // virtual clock — every subsystem below observes the same
        // deterministic timeline.
        let telemetry = Telemetry::new(clock.clone());
        let topology = Topology::fully_connected(self.nodes);
        let mut repository = ConstraintRepository::new(config.validation.lookup_mode);
        for c in self.constraints {
            repository.register(c)?;
        }
        let mut ccm = Ccm::new(config.durability.threat_policy);
        ccm.set_app_default_min_degree(config.validation.app_default_min_degree);
        ccm.set_default_instructions(self.default_instructions);
        ccm.set_negotiation_timing(config.validation.negotiation_timing);
        ccm.attach_telemetry(telemetry.clone());
        let mut replication = ReplicationManager::new(self.protocol, weights.clone());
        replication.set_reduced_history(config.durability.reduced_replica_history);
        replication.attach_telemetry(telemetry.clone());
        let mut tx_manager = TransactionManager::new();
        tx_manager.attach_telemetry(telemetry.clone());
        let view_trackers = (0..self.nodes)
            .map(|n| {
                let mut tracker = ViewTracker::new(NodeId(n), &topology);
                tracker.attach_telemetry(telemetry.clone());
                tracker
            })
            .collect();
        if config.validation.engine == ConstraintEngine::Compiled {
            // Lower every registered constraint up front so the first
            // validation doesn't pay the (lazy) compile, and charge the
            // one-time lowering cost on the virtual clock.
            for c in repository.enabled() {
                if let Some(info) = c.implementation.compiled() {
                    telemetry.emit(|| TraceEvent::ConstraintCompiled {
                        constraint: c.meta.name.to_string(),
                        ops: info.ops,
                        reads: info.reads,
                    });
                    clock.advance(self.costs.constraint_compile);
                }
            }
        }
        let membership = config.membership.detector_enabled.then(|| {
            MembershipSim::new(
                self.nodes,
                GmsMembershipConfig {
                    kind: config.membership.detector,
                    detector: config.membership.detector_config,
                    adaptive: config.membership.adaptive,
                    stabilizer: config.membership.stabilizer,
                    seed: config.membership.seed,
                    ..GmsMembershipConfig::default()
                },
                clock.clone(),
            )
        });
        Ok(Cluster {
            clock,
            telemetry,
            topology,
            membership,
            config,
            primary_witness: BTreeMap::new(),
            primary_conflicts: 0,
            weights,
            containers: (0..self.nodes)
                .map(|_| EntityContainer::new(&self.app))
                .collect(),
            app: self.app,
            methods: self.methods,
            tx_manager,
            tx_infos: BTreeMap::new(),
            in_doubt: BTreeMap::new(),
            in_doubt_resolved: 0,
            crashed: BTreeSet::new(),
            locks: LockTable::new(),
            replication,
            repository,
            ccm,
            naming: NamingService::new(),
            costs: self.costs,
            mode: SystemMode::Healthy,
            view_trackers,
            metrics: ClusterMetrics::default(),
            inv_cost: CostBreakdown::default(),
            hooks: InterceptorChain::new(),
            ccm_enabled: self.ccm_enabled,
            replication_enabled: self.replication_enabled,
        })
    }
}

/// A simulated DeDiSys cluster.
pub struct Cluster {
    clock: SimClock,
    telemetry: Telemetry,
    topology: Topology,
    /// The detector-driven membership pipeline; `None` when topology
    /// changes are scripted only.
    membership: Option<MembershipSim>,
    /// The typed configuration in force ([`Cluster::config`]); runtime
    /// deltas land here through [`Cluster::reconfigure`].
    config: ClusterConfig,
    /// Per-topology-epoch witness of the one partition whose
    /// primary-mode writes were admitted — the safety invariant is that
    /// no *second*, different partition ever witnesses at the same
    /// epoch.
    primary_witness: BTreeMap<u64, BTreeSet<NodeId>>,
    /// Times a second partition was caught accepting primary-mode
    /// writes at an epoch that already had a primary (must stay 0).
    primary_conflicts: u64,
    weights: NodeWeights,
    containers: Vec<EntityContainer>,
    app: AppDescriptor,
    methods: MethodTable,
    tx_manager: TransactionManager,
    tx_infos: BTreeMap<TxId, TxInfo>,
    /// Prepared transactions whose coordinator crashed (awaiting
    /// presumed-abort recovery).
    in_doubt: BTreeMap<TxId, InDoubtTx>,
    /// Transactions resolved by the in-doubt recovery protocol so far.
    in_doubt_resolved: u64,
    /// Nodes currently crashed: volatile state torn down, persistent
    /// journal kept, topology-isolated until restarted.
    crashed: BTreeSet<NodeId>,
    locks: LockTable,
    pub(crate) replication: ReplicationManager,
    repository: ConstraintRepository,
    pub(crate) ccm: Ccm,
    naming: NamingService,
    costs: CostModel,
    pub(crate) mode: SystemMode,
    view_trackers: Vec<ViewTracker>,
    metrics: ClusterMetrics,
    /// Scratch R1–R5 breakdown of the invocation in flight.
    inv_cost: CostBreakdown,
    hooks: InterceptorChain<HookInfo>,
    ccm_enabled: bool,
    replication_enabled: bool,
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.topology.node_count())
            .field("mode", &self.mode)
            .field("topology", &self.topology.to_string())
            .field("ccm", &self.ccm_enabled)
            .field("replication", &self.replication_enabled)
            .finish()
    }
}

impl Cluster {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The current system mode (Figure 1.4).
    pub fn mode(&self) -> SystemMode {
        self.mode
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.topology.node_count()
    }

    /// The deployed application.
    pub fn app(&self) -> &AppDescriptor {
        &self.app
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The cluster's telemetry bus: attach a sink (JSONL exporter,
    /// ring recorder) to capture the typed event stream of a run.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// One serializable snapshot of every statistic the cluster keeps:
    /// cluster/CCM/replication/transaction counters plus the telemetry
    /// metrics registry, stamped with the current mode and virtual
    /// time.
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            mode: self.mode,
            now_ns: self.clock.now().as_nanos(),
            cluster: self.metrics,
            ccm: self.ccm.stats(),
            replication: self.replication.stats(),
            tx: self.tx_manager.stats(),
            telemetry: self.telemetry.metrics().snapshot(),
            events_emitted: self.telemetry.events_emitted(),
        }
    }

    /// The stored consistency threats.
    pub fn threats(&self) -> &ThreatStore {
        self.ccm.threat_store()
    }

    /// The typed configuration in force. This is the same value the
    /// builder was given (modulo clamping), updated by every
    /// [`Cluster::reconfigure`] since.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Applies a configuration delta to the running cluster.
    ///
    /// `f` receives a copy of the current config to mutate; the
    /// changed fields are then applied atomically — with their side
    /// effects (an engine switch lowers constraints and clears the
    /// verdict cache; a cache toggle clears it; negotiation timing,
    /// default degree and replica history are pushed into their
    /// subsystems) — and one `reconfigure` trace event naming the
    /// dotted paths that changed is emitted. Returns those paths
    /// (empty when `f` changed nothing; no event is emitted then).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] — without applying *any* field — if
    /// `f` touched a build-time field (`validation.lookup_mode`,
    /// `durability.threat_policy`, or anything under
    /// `membership.detector*` / `membership.adaptive` /
    /// `membership.stabilizer` / `membership.seed`).
    pub fn reconfigure(&mut self, f: impl FnOnce(&mut ClusterConfig)) -> Result<Vec<String>> {
        let mut next = self.config;
        f(&mut next);
        next.durability.compaction_threshold = next.durability.compaction_threshold.max(1);
        let immutable = self.config.immutable_diff(&next);
        if !immutable.is_empty() {
            return Err(Error::Config(format!(
                "cannot reconfigure build-time field(s): {}",
                immutable.join(", ")
            )));
        }
        let changed = self.config.diff(&next);
        if changed.is_empty() {
            return Ok(changed);
        }
        let prev = self.config;
        self.config = next;
        if prev.validation.engine != next.validation.engine {
            if next.validation.engine == ConstraintEngine::Compiled {
                let mut compiled = Vec::new();
                for c in self.repository.enabled() {
                    if let Some(info) = c.implementation.compiled() {
                        compiled.push((c.meta.name.to_string(), info));
                    }
                }
                for (name, info) in compiled {
                    self.telemetry.emit(|| TraceEvent::ConstraintCompiled {
                        constraint: name.clone(),
                        ops: info.ops,
                        reads: info.reads,
                    });
                    self.clock.advance(self.costs.constraint_compile);
                }
            }
            self.clear_verdict_cache_with_event();
        }
        if prev.validation.verdict_cache != next.validation.verdict_cache {
            self.clear_verdict_cache_with_event();
        }
        if prev.validation.negotiation_timing != next.validation.negotiation_timing {
            self.ccm
                .set_negotiation_timing(next.validation.negotiation_timing);
        }
        if prev.validation.app_default_min_degree != next.validation.app_default_min_degree {
            self.ccm
                .set_app_default_min_degree(next.validation.app_default_min_degree);
        }
        if prev.durability.reduced_replica_history != next.durability.reduced_replica_history {
            self.replication
                .set_reduced_history(next.durability.reduced_replica_history);
        }
        let paths = changed.clone();
        self.telemetry
            .emit(move || TraceEvent::Reconfigure { changed: paths });
        Ok(changed)
    }

    /// The constraint-reconciliation strategy in force.
    pub fn reconcile_strategy(&self) -> ReconcileStrategy {
        self.config.durability.reconcile_strategy
    }

    /// The validation-batch evaluation setting in force.
    pub fn validation_parallelism(&self) -> ValidationParallelism {
        self.config.validation.parallelism
    }

    /// Switches validation-batch evaluation at runtime (e.g. to
    /// compare serial and parallel wall-clock on one cluster). The
    /// observable outcome of every operation is unaffected.
    pub fn set_validation_parallelism(&mut self, parallelism: ValidationParallelism) {
        self.reconfigure(|c| c.validation.parallelism = parallelism)
            .expect("parallelism is runtime-reconfigurable");
    }

    /// The constraint evaluation engine in force.
    pub fn constraint_engine(&self) -> ConstraintEngine {
        self.config.validation.engine
    }

    /// Switches the constraint evaluation engine at runtime. Verdicts,
    /// threats and statistics counters are unaffected; only the
    /// virtual-time cost per check changes. Switching *to* the
    /// compiled engine lowers (and charges for) every registered
    /// constraint that is not compiled yet. The verdict cache is
    /// cleared on any engine change.
    pub fn set_constraint_engine(&mut self, engine: ConstraintEngine) {
        self.reconfigure(|c| c.validation.engine = engine)
            .expect("engine is runtime-reconfigurable");
    }

    /// Whether the verdict cache is enabled.
    pub fn verdict_cache_enabled(&self) -> bool {
        self.config.validation.verdict_cache
    }

    /// The threat-negotiation timing in force, read back from the CCM
    /// (not from the config copy) so tests can check the two agree.
    pub fn negotiation_timing(&self) -> NegotiationTiming {
        self.ccm.negotiation_timing()
    }

    /// The application-wide default minimum satisfaction degree in
    /// force, read back from the CCM.
    pub fn app_default_min_degree(&self) -> SatisfactionDegree {
        self.ccm.app_default_min_degree()
    }

    /// Whether replicas keep only the latest state, read back from the
    /// replication manager.
    pub fn reduced_replica_history(&self) -> bool {
        self.replication.reduced_history()
    }

    /// Enables or disables the verdict cache at runtime. Toggling in
    /// either direction clears the cache, so a re-enabled cache never
    /// serves entries from before the gap.
    pub fn set_verdict_cache(&mut self, enabled: bool) {
        self.reconfigure(|c| c.validation.verdict_cache = enabled)
            .expect("verdict cache is runtime-reconfigurable");
    }

    /// Entries currently held by the verdict cache.
    pub fn verdict_cache_len(&self) -> usize {
        self.ccm.verdict_cache_len()
    }

    pub(crate) fn clear_verdict_cache_with_event(&mut self) {
        let entries = self.ccm.clear_verdict_cache();
        if entries > 0 {
            self.telemetry
                .metrics()
                .add("ccm.verdict_cache.invalidate", entries as u64);
            self.telemetry.emit(|| TraceEvent::VerdictCacheInvalidate {
                object: "*".into(),
                entries: entries as u32,
            });
        }
    }

    /// Switches the constraint-reconciliation strategy at runtime
    /// (e.g. to compare full-scan vs incremental on one cluster).
    pub fn set_reconcile_strategy(&mut self, strategy: ReconcileStrategy) {
        self.reconfigure(|c| c.durability.reconcile_strategy = strategy)
            .expect("reconcile strategy is runtime-reconfigurable");
    }

    /// Folds duplicate threat records now, regardless of policy or
    /// threshold (the automatic path runs under
    /// [`HistoryPolicy::Reduced`] whenever the duplicate volume
    /// crosses the configured threshold). Returns the report.
    pub fn compact_threats(&mut self) -> crate::threat::CompactionReport {
        let report = self.ccm.threat_store_mut().compact();
        self.charge_compaction(report);
        report
    }

    /// Mutable CCM access for crash-recovery scenarios and tests.
    #[doc(hidden)]
    pub fn ccm_mut_for_tests(&mut self) -> &mut Ccm {
        &mut self.ccm
    }

    /// Raw mutable repository access (tests only — use
    /// [`Cluster::set_constraint_enabled`] / [`Cluster::remove_constraint`]
    /// / [`Cluster::add_constraint_with_check`] at runtime).
    #[doc(hidden)]
    pub fn repository_mut(&mut self) -> &mut ConstraintRepository {
        &mut self.repository
    }

    /// Enables or disables a registered constraint at runtime (§3.3).
    /// Disabling merely stops lookups from returning it; re-enabling
    /// *with* the mandated full re-check is
    /// [`Cluster::enable_constraint_with_check`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for unknown constraint names.
    pub fn set_constraint_enabled(&mut self, name: &ConstraintName, enabled: bool) -> Result<()> {
        self.repository.set_enabled(name, enabled)
    }

    /// Removes a constraint at runtime (§3.3). Returns whether the
    /// constraint existed. Cached verdicts of the removed constraint
    /// are dropped.
    pub fn remove_constraint(&mut self, name: &ConstraintName) -> bool {
        let existed = self.repository.remove(name).is_some();
        if existed {
            let entries = self.ccm.invalidate_constraint(name);
            if entries > 0 {
                self.telemetry
                    .metrics()
                    .add("ccm.verdict_cache.invalidate", entries as u64);
                self.telemetry.emit(|| TraceEvent::VerdictCacheInvalidate {
                    object: "*".into(),
                    entries: entries as u32,
                });
            }
        }
        existed
    }

    /// Re-activates every deactivated threat record after a CCM crash
    /// (§5.5.1 recovery). Returns the number of recovered records.
    pub fn recover_threats(&mut self) -> usize {
        self.ccm.threat_store_mut().recover()
    }

    /// Adds a new constraint at runtime and — per §3.3 — immediately
    /// validates it against *every* existing context object. Returns
    /// the context objects that currently violate it (the application
    /// decides whether to clean them up or remove the constraint
    /// again).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for duplicate names.
    pub fn add_constraint_with_check(
        &mut self,
        constraint: RegisteredConstraint,
    ) -> Result<Vec<ObjectId>> {
        let name = constraint.name().clone();
        self.repository.register(constraint)?;
        self.check_all_context_objects(&name)
    }

    /// Re-enables a previously disabled constraint and validates it
    /// against every context object (§3.3: re-enabled constraints have
    /// to be checked for all context objects). Returns the violating
    /// context objects.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] for unknown constraint names.
    pub fn enable_constraint_with_check(
        &mut self,
        name: &dedisys_types::ConstraintName,
    ) -> Result<Vec<ObjectId>> {
        self.repository.set_enabled(name, true)?;
        self.check_all_context_objects(name)
    }

    fn check_all_context_objects(
        &mut self,
        name: &dedisys_types::ConstraintName,
    ) -> Result<Vec<ObjectId>> {
        let Some(constraint) = self.repository.get(name).cloned() else {
            return Ok(Vec::new());
        };
        if !constraint.meta.kind.is_invariant() {
            return Ok(Vec::new());
        }
        // Collect the context objects: all instances of the context
        // class, or a single query-based evaluation.
        let contexts: Vec<Option<ObjectId>> = match (
            &constraint.context_class,
            constraint.meta.needs_context_object,
        ) {
            (Some(class), true) => {
                let mut ids: BTreeSet<ObjectId> = BTreeSet::new();
                for container in &self.containers {
                    ids.extend(container.entities_of_class(class).map(|e| e.id().clone()));
                }
                ids.into_iter().map(Some).collect()
            }
            _ => vec![None],
        };
        let node = NodeId(0);
        let check_tx = self.begin_tx(node);
        let candidates: Vec<BatchCandidate> = contexts
            .iter()
            .map(|context| BatchCandidate {
                constraint: Arc::clone(&constraint),
                context_object: context.clone(),
                call: None,
                pre_state: BTreeMap::new(),
            })
            .collect();
        let evals = self.evaluate_candidates(&candidates, node, check_tx);
        let mut violating = Vec::new();
        for (context, eval) in contexts.into_iter().zip(evals) {
            let verdict = self.merge_validation(&constraint, eval, node, check_tx)?;
            if verdict.degree == SatisfactionDegree::Violated {
                if let Some(ctx) = context {
                    violating.push(ctx);
                }
            }
        }
        let _ = self.rollback(check_tx);
        Ok(violating)
    }

    /// The constraint repository.
    pub fn repository(&self) -> &ConstraintRepository {
        &self.repository
    }

    /// The naming service.
    pub fn naming_mut(&mut self) -> &mut NamingService {
        &mut self.naming
    }

    /// Fraction of total system weight reachable from `node` (§5.5.2).
    pub fn partition_fraction(&self, node: NodeId) -> f64 {
        self.weights
            .partition_fraction(self.topology.partition_of(node))
    }

    /// The full partition environment observed from `node`: the weight
    /// fraction plus the exact integer weight units (§5.5.2).
    pub(crate) fn partition_env(&self, node: NodeId) -> PartitionEnv {
        let members = self.topology.partition_of(node);
        PartitionEnv {
            fraction: self.weights.partition_fraction(members),
            weight: self.weights.partition_weight(members),
            total: self.weights.total(),
        }
    }

    /// The node weights.
    pub fn weights(&self) -> &NodeWeights {
        &self.weights
    }

    /// The committed state of `id` as stored on `node` (inspection).
    pub fn entity_on(&self, node: NodeId, id: &ObjectId) -> Option<&EntityState> {
        self.containers[node.index()].committed_entity(id)
    }

    // ------------------------------------------------------------------
    // Failure injection / repair
    // ------------------------------------------------------------------

    /// Splits the network into the given groups of typed node ids
    /// (unmentioned nodes become singletons), installs the new views
    /// and returns the resulting system mode. The [`crate::nodes!`]
    /// macro keeps literal scenarios terse:
    /// `cluster.partition(&[nodes![0, 1], nodes![2]])`.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] — a group names a node outside the
    ///   cluster.
    /// * [`Error::DuplicateNode`] — a node appears in more than one
    ///   group (or twice within one group).
    /// * [`Error::NodeCrashed`] — a crashed node cannot be placed in
    ///   a group; it stays isolated until [`Cluster::restart`].
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) -> Result<SystemMode> {
        let count = self.topology.node_count();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for group in groups {
            for &node in group {
                if node.0 >= count {
                    return Err(Error::UnknownNode(node));
                }
                if !seen.insert(node) {
                    return Err(Error::DuplicateNode(node));
                }
                if self.crashed.contains(&node) {
                    return Err(Error::NodeCrashed(node));
                }
            }
        }
        let raw: Vec<Vec<u32>> = groups
            .iter()
            .map(|g| g.iter().map(|n| n.0).collect())
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        self.topology.split(&refs);
        self.install_views();
        self.sync_membership_scripted();
        let to = if self.topology.is_healthy() {
            SystemMode::Healthy
        } else {
            SystemMode::Degraded
        };
        Ok(self.set_mode(to, TransitionCause::Scripted))
    }

    /// Isolates one node (connectivity loss — the node keeps running)
    /// and returns the resulting system mode.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for node ids outside the
    /// cluster.
    pub fn isolate(&mut self, node: NodeId) -> Result<SystemMode> {
        if node.0 >= self.topology.node_count() {
            return Err(Error::UnknownNode(node));
        }
        self.topology.isolate(node);
        self.install_views();
        self.sync_membership_scripted();
        Ok(self.set_mode(SystemMode::Degraded, TransitionCause::Scripted))
    }

    /// Repairs all connectivity failures; the system enters the
    /// reconciliation phase (run [`Cluster::reconcile`] to return to
    /// healthy). Crashed nodes stay isolated — only
    /// [`Cluster::restart`] brings them back. Returns the resulting
    /// system mode.
    pub fn heal(&mut self) -> SystemMode {
        if self.crashed.is_empty() {
            self.topology.heal();
        } else {
            // Reunite only the live nodes; crashed ones remain
            // singleton partitions until they restart.
            let live: Vec<u32> = self
                .topology
                .nodes()
                .filter(|n| !self.crashed.contains(n))
                .map(|n| n.0)
                .collect();
            self.topology.split(&[&live]);
        }
        self.install_views();
        // A scripted heal repairs the physical layer too — standing
        // link faults would otherwise make detection re-partition the
        // cluster immediately.
        if let Some(membership) = self.membership.as_mut() {
            membership.clear_link_faults();
        }
        self.sync_membership_scripted();
        let to = if !self.crashed.is_empty() {
            SystemMode::Degraded
        } else if self.needs_reconciliation() {
            SystemMode::Reconciliation
        } else {
            SystemMode::Healthy
        };
        self.set_mode(to, TransitionCause::Scripted)
    }

    // ------------------------------------------------------------------
    // Node lifecycle: crash / restart
    // ------------------------------------------------------------------

    /// Crashes `node`: volatile container state is torn down (buffered
    /// writes lost, committed in-memory cache dropped), the persistent
    /// journal survives on disk, and the node leaves the topology
    /// until [`Cluster::restart`].
    ///
    /// Transactions touching the node are resolved immediately:
    ///
    /// * transactions *coordinated* by the node that had already
    ///   prepared enter the in-doubt registry — their locks are
    ///   retained until the presumed-abort timeout fires
    ///   ([`Cluster::resolve_in_doubt`]) or the coordinator restarts;
    /// * every other affected transaction is force-rolled-back and
    ///   its locks released.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] — node id outside the cluster.
    /// * [`Error::NodeCrashed`] — the node is already down.
    pub fn crash(&mut self, node: NodeId) -> Result<SystemMode> {
        if node.0 >= self.topology.node_count() {
            return Err(Error::UnknownNode(node));
        }
        if !self.crashed.insert(node) {
            return Err(Error::NodeCrashed(node));
        }
        let affected: Vec<TxId> = self
            .tx_infos
            .iter()
            .filter(|(tx, info)| tx.node == node || info.involved.contains(&node))
            .map(|(tx, _)| *tx)
            .collect();
        let mut aborted: u32 = 0;
        let mut in_doubt: u32 = 0;
        let deadline = self.clock.now() + self.costs.in_doubt_timeout;
        for tx in affected {
            if tx.node == node && self.tx_manager.is_prepared(tx) {
                // Coordinator crashed between prepare and commit: the
                // outcome is locally unknowable. Locks and remote
                // buffers are retained; the recovery protocol presumes
                // abort once the timeout expires (presumed-abort 2PC).
                self.in_doubt.insert(
                    tx,
                    InDoubtTx {
                        coordinator: node,
                        deadline,
                    },
                );
                in_doubt += 1;
                self.telemetry.emit(|| TraceEvent::TwoPcInDoubt {
                    tx,
                    coordinator: node,
                });
            } else {
                self.tx_manager.force_rollback(tx);
                self.abort_cleanup(tx);
                aborted += 1;
            }
        }
        let _lost_buffers = self.containers[node.index()].crash_volatile();
        self.topology.isolate(node);
        self.install_views();
        self.sync_membership_scripted();
        self.telemetry.emit(|| TraceEvent::NodeCrash {
            node,
            aborted_txs: aborted,
            in_doubt_txs: in_doubt,
        });
        Ok(self.set_mode(SystemMode::Degraded, TransitionCause::Scripted))
    }

    /// Restarts a crashed node: replays the persistent journal into a
    /// fresh container (charging
    /// [`CostModel::wal_replay_per_entry`][crate::CostModel] per
    /// entry), re-activates deactivated threat records (§5.5.1
    /// recovery), resolves every in-doubt transaction the node
    /// coordinated by presumed abort, and rejoins the partition of the
    /// lowest-numbered live node. Returns the resulting system mode.
    ///
    /// # Errors
    ///
    /// * [`Error::UnknownNode`] — node id outside the cluster.
    /// * [`Error::Config`] — the node is not crashed.
    /// * Journal corruption surfaces as the replay error.
    pub fn restart(&mut self, node: NodeId) -> Result<SystemMode> {
        if node.0 >= self.topology.node_count() {
            return Err(Error::UnknownNode(node));
        }
        if !self.crashed.contains(&node) {
            return Err(Error::Config(format!(
                "node {node} is not crashed; nothing to restart"
            )));
        }
        let report = self.containers[node.index()].recover_from_journal()?;
        let replayed = report.replayed;
        self.crashed.remove(&node);
        self.clock
            .advance(self.costs.wal_replay_per_entry * replayed);
        if report.truncated > 0 {
            // A journal write was torn by the crash; the checksummed
            // tail was dropped and the lost state will be resynced by
            // reconciliation like any missed update.
            self.telemetry
                .metrics()
                .add("store.wal.truncated", report.truncated);
            self.telemetry.emit(|| TraceEvent::WalTruncated {
                node,
                truncated: report.truncated,
            });
        }
        // The journal replay may have rewritten entity state wholesale;
        // memoized verdicts are no longer trustworthy.
        self.clear_verdict_cache_with_event();
        // §5.5.1: threat records deactivated by the crash come back.
        let reactivated = self.ccm.threat_store_mut().recover() as u64;
        // Coordinator recovery: no commit record survived the crash,
        // so its in-doubt transactions abort (presumed abort).
        let mine: Vec<TxId> = self
            .in_doubt
            .iter()
            .filter(|(_, info)| info.coordinator == node)
            .map(|(tx, _)| *tx)
            .collect();
        for tx in mine {
            self.presume_abort(tx);
        }
        // Rejoin the lowest-numbered live node's partition via GMS.
        let rejoin_target = self
            .topology
            .nodes()
            .find(|n| *n != node && !self.crashed.contains(n));
        if let Some(target) = rejoin_target {
            if !self.topology.reachable(node, target) {
                self.topology.merge(node, target);
            }
            if report.truncated > 0 {
                // The torn tail dropped committed state the rest of
                // the group still holds. Replica reconciliation only
                // tracks degraded-mode writes, so transfer the rejoin
                // target's committed image outright; installs go
                // through the journal, so the transfer survives a
                // further crash.
                let reference: Vec<EntityState> = {
                    let source = &self.containers[target.index()];
                    source
                        .committed_ids()
                        .filter_map(|id| source.committed_entity(id).cloned())
                        .collect()
                };
                let stale: Vec<ObjectId> = {
                    let source = &self.containers[target.index()];
                    self.containers[node.index()]
                        .committed_ids()
                        .filter(|id| source.committed_entity(id).is_none())
                        .cloned()
                        .collect()
                };
                let mut transferred = 0u64;
                let container = &mut self.containers[node.index()];
                for entity in reference {
                    if container.committed_entity(entity.id()) != Some(&entity) {
                        container.install_committed(entity);
                        transferred += 1;
                    }
                }
                for id in &stale {
                    container.remove_committed(id);
                    transferred += 1;
                }
                self.clock
                    .advance(self.costs.wal_replay_per_entry * transferred);
                self.telemetry
                    .metrics()
                    .add("store.wal.resynced", transferred);
            }
        }
        self.install_views();
        self.sync_membership_scripted();
        self.telemetry.emit(|| TraceEvent::NodeRestart {
            node,
            replayed_entries: replayed,
            reactivated_threats: reactivated,
        });
        let to = if !self.topology.is_healthy() {
            SystemMode::Degraded
        } else if self.needs_reconciliation() {
            SystemMode::Reconciliation
        } else {
            SystemMode::Healthy
        };
        Ok(self.set_mode(to, TransitionCause::Scripted))
    }

    /// Runs the in-doubt recovery protocol: every in-doubt transaction
    /// whose presumed-abort deadline has passed in virtual time is
    /// rolled back and its locks released. Returns the number of
    /// transactions resolved.
    pub fn resolve_in_doubt(&mut self) -> usize {
        let now = self.clock.now();
        let due: Vec<TxId> = self
            .in_doubt
            .iter()
            .filter(|(_, info)| info.deadline <= now)
            .map(|(tx, _)| *tx)
            .collect();
        let resolved = due.len();
        for tx in due {
            // The deadline path gets its own event before the shared
            // presumed-abort resolution: operators alerting on abandoned
            // coordinators need to tell "timed out waiting" apart from
            // "resolved at coordinator restart" (both emit
            // `two_pc_resolved`).
            if let Some(info) = self.in_doubt.get(&tx) {
                let coordinator = info.coordinator;
                let overdue_ns = now.since(info.deadline).as_nanos();
                self.telemetry.emit(|| TraceEvent::InDoubtTimeout {
                    tx,
                    coordinator,
                    overdue_ns,
                });
                self.telemetry.metrics().incr("two_pc.in_doubt_timeout");
            }
            self.presume_abort(tx);
        }
        resolved
    }

    fn presume_abort(&mut self, tx: TxId) {
        self.in_doubt.remove(&tx);
        self.tx_manager.force_rollback(tx);
        self.abort_cleanup(tx);
        self.in_doubt_resolved += 1;
        self.telemetry.emit(|| TraceEvent::TwoPcResolved {
            tx,
            presumed_abort: true,
        });
    }

    /// Installs `to` as the system mode, emitting a `mode_transition`
    /// trace event (tagged with who drove it — a scripted call or the
    /// failure-detection pipeline) on actual change. Returns the (new)
    /// current mode.
    pub(crate) fn set_mode(&mut self, to: SystemMode, cause: TransitionCause) -> SystemMode {
        let from = self.mode;
        if from != to {
            self.mode = to;
            if cause == TransitionCause::Detector {
                self.telemetry.metrics().incr("gms.detector.transitions");
            }
            self.telemetry
                .emit(|| TraceEvent::ModeTransition { from, to, cause });
        }
        to
    }

    /// Re-aligns the detector pipeline with a scripted topology change
    /// so detection does not "undo" an explicit fault-injection call
    /// while it converges on its own.
    fn sync_membership_scripted(&mut self) {
        if let Some(membership) = self.membership.as_mut() {
            for node in self.topology.nodes() {
                membership.set_crashed(node, self.crashed.contains(&node));
            }
            membership.force_partitions(self.topology.partitions());
        }
    }

    /// Whether degraded-mode residue (threats, unsynced replicas)
    /// awaits reconciliation.
    pub fn needs_reconciliation(&self) -> bool {
        !self.ccm.threat_store().is_empty() || !self.replication.degraded_write_map().is_empty()
    }

    fn install_views(&mut self) {
        for tracker in &mut self.view_trackers {
            tracker.observe(&self.topology);
        }
    }

    /// The installed view of `node`.
    pub fn view_of(&self, node: NodeId) -> &dedisys_gms::View {
        self.view_trackers[node.index()].current()
    }

    // ------------------------------------------------------------------
    // Fault injection (chaos engine hooks)
    // ------------------------------------------------------------------

    /// Makes the next `failures` replica installs on `node` fail — a
    /// store write-failure window exercising the ship path's bounded
    /// retry/backoff.
    pub fn inject_write_fault(&mut self, node: NodeId, failures: u32) {
        self.replication.inject_write_fault(node, failures);
    }

    /// Makes `node` skip (lag behind) the next `updates` propagated
    /// updates; the lagged replica is recorded for reconciliation.
    pub fn inject_replica_lag(&mut self, node: NodeId, updates: u32) {
        self.replication.inject_replica_lag(node, updates);
    }

    /// Corrupts the checksum of the last `entries` journal entries on
    /// `node` — a torn write the next [`Cluster::restart`] detects and
    /// truncates. Returns the number of entries corrupted.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownNode`] for node ids outside the cluster.
    pub fn corrupt_journal_tail(&mut self, node: NodeId, entries: usize) -> Result<usize> {
        if node.0 >= self.topology.node_count() {
            return Err(Error::UnknownNode(node));
        }
        Ok(self.containers[node.index()].corrupt_journal_tail(entries))
    }

    // ------------------------------------------------------------------
    // Detector-driven membership (φ-accrual / fixed, flap damping)
    // ------------------------------------------------------------------

    /// Whether the detector-driven membership pipeline is running
    /// ([`ClusterBuilder::detector`]).
    pub fn detector_enabled(&self) -> bool {
        self.membership.is_some()
    }

    /// The detector kind in force (meaningful only with the pipeline
    /// enabled; returns the builder default otherwise).
    pub fn detector_kind(&self) -> DetectorKind {
        self.membership
            .as_ref()
            .map(|m| m.config().kind)
            .unwrap_or_default()
    }

    /// The heartbeat/timeout configuration in force.
    pub fn detector_config(&self) -> DetectorConfig {
        self.membership
            .as_ref()
            .map(|m| m.config().detector)
            .unwrap_or_default()
    }

    /// The φ-accrual configuration in force.
    pub fn adaptive_config(&self) -> AdaptiveConfig {
        self.membership
            .as_ref()
            .map(|m| m.config().adaptive)
            .unwrap_or_default()
    }

    /// The view-stabilizer configuration in force.
    pub fn stabilizer_config(&self) -> StabilizerConfig {
        self.membership
            .as_ref()
            .map(|m| m.config().stabilizer)
            .unwrap_or_default()
    }

    /// The primary-partition policy in force (§5.5.2).
    pub fn primary_policy(&self) -> PrimaryPartitionPolicy {
        self.config.membership.primary_policy
    }

    /// How minority-partition writes are handled under a quorum policy.
    pub fn minority_writes(&self) -> MinorityWriteHandling {
        self.config.membership.minority_writes
    }

    /// Read access to the membership pipeline (inspection).
    pub fn membership(&self) -> Option<&MembershipSim> {
        self.membership.as_ref()
    }

    /// Live-observer → live-peer suspicions currently standing in the
    /// pipeline (0 when disabled). A healed, quiescent cluster must
    /// converge back to 0.
    pub fn standing_suspicions(&self) -> usize {
        self.membership
            .as_ref()
            .map_or(0, MembershipSim::standing_suspicions)
    }

    /// Times a second, different partition was caught accepting
    /// primary-mode writes at a topology epoch that already had a
    /// primary. Under any quorum policy this must stay 0 — the
    /// chaos invariant checker asserts it.
    pub fn primary_conflicts(&self) -> u64 {
        self.primary_conflicts
    }

    /// Whether `node`'s current partition classifies as primary under
    /// the configured [`PrimaryPartitionPolicy`].
    pub fn is_primary(&self, node: NodeId) -> bool {
        self.config
            .membership
            .primary_policy
            .is_primary(self.topology.partition_of(node), &self.weights)
    }

    /// Severs the physical links *between* the given groups without
    /// telling the cluster — the failure-detection pipeline has to
    /// notice on its own (contrast [`Cluster::partition`], which is
    /// authoritative and instant).
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] — the pipeline is disabled.
    /// * [`Error::UnknownNode`] / [`Error::DuplicateNode`] — malformed
    ///   groups.
    pub fn drop_links(&mut self, groups: &[Vec<NodeId>]) -> Result<()> {
        if self.membership.is_none() {
            return Err(Error::Config(
                "detector pipeline disabled; enable it via ClusterBuilder::detector".into(),
            ));
        }
        let count = self.topology.node_count();
        let mut seen: BTreeSet<NodeId> = BTreeSet::new();
        for group in groups {
            for &node in group {
                if node.0 >= count {
                    return Err(Error::UnknownNode(node));
                }
                if !seen.insert(node) {
                    return Err(Error::DuplicateNode(node));
                }
            }
        }
        let raw: Vec<Vec<u32>> = groups
            .iter()
            .map(|g| g.iter().map(|n| n.0).collect())
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        self.membership
            .as_mut()
            .expect("checked above")
            .drop_links(&refs);
        Ok(())
    }

    /// Repairs every physical link and clears standing link faults —
    /// detection then converges back to one healthy view (contrast
    /// [`Cluster::heal`], which is authoritative and instant).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the pipeline is disabled.
    pub fn heal_links(&mut self) -> Result<()> {
        let Some(membership) = self.membership.as_mut() else {
            return Err(Error::Config(
                "detector pipeline disabled; enable it via ClusterBuilder::detector".into(),
            ));
        };
        membership.clear_link_faults();
        membership.heal_links();
        Ok(())
    }

    /// Sets a directed physical link fault (down / deterministic loss
    /// rate / jitter) for the pipeline to detect.
    ///
    /// # Errors
    ///
    /// * [`Error::Config`] — the pipeline is disabled.
    /// * [`Error::UnknownNode`] — an endpoint is outside the cluster.
    pub fn set_link_fault(&mut self, from: NodeId, to: NodeId, fault: LinkFault) -> Result<()> {
        let count = self.topology.node_count();
        for node in [from, to] {
            if node.0 >= count {
                return Err(Error::UnknownNode(node));
            }
        }
        let Some(membership) = self.membership.as_mut() else {
            return Err(Error::Config(
                "detector pipeline disabled; enable it via ClusterBuilder::detector".into(),
            ));
        };
        membership.set_link_fault(from, to, fault);
        Ok(())
    }

    /// Sets the default heartbeat jitter on every physical link.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when the pipeline is disabled.
    pub fn set_default_link_jitter(&mut self, jitter_micros: u64) -> Result<()> {
        let Some(membership) = self.membership.as_mut() else {
            return Err(Error::Config(
                "detector pipeline disabled; enable it via ClusterBuilder::detector".into(),
            ));
        };
        membership.set_default_jitter(jitter_micros);
        Ok(())
    }

    /// Runs the membership pipeline up to the current virtual time,
    /// translating its observations into telemetry and installing every
    /// stabilized partitioning (topology + views + mode, with
    /// `cause: detector`). Returns the number of views installed.
    ///
    /// A no-op (returning 0) when the pipeline is disabled.
    pub fn poll_detector(&mut self) -> usize {
        let Some(membership) = self.membership.as_mut() else {
            return 0;
        };
        let events = membership.poll();
        let mut installed = 0;
        for event in events {
            match event {
                MembershipEvent::SuspicionRaised { observer, suspect } => {
                    self.telemetry
                        .metrics()
                        .incr("gms.detector.suspicions_raised");
                    self.telemetry
                        .emit(|| TraceEvent::SuspicionRaised { observer, suspect });
                }
                MembershipEvent::SuspicionCleared { observer, peer } => {
                    self.telemetry
                        .metrics()
                        .incr("gms.detector.suspicions_cleared");
                    self.telemetry
                        .emit(|| TraceEvent::SuspicionCleared { observer, peer });
                }
                MembershipEvent::FlapDamped {
                    node,
                    penalty_milli,
                } => {
                    self.telemetry.metrics().incr("gms.detector.flaps_damped");
                    self.telemetry.emit(|| TraceEvent::FlapDamped {
                        node,
                        penalty_milli,
                    });
                }
                MembershipEvent::ViewStabilized { partitions } => {
                    self.telemetry
                        .metrics()
                        .incr("gms.detector.views_stabilized");
                    let count = partitions.len() as u32;
                    let largest = partitions.iter().map(BTreeSet::len).max().unwrap_or(0) as u32;
                    self.telemetry.emit(|| TraceEvent::ViewStabilized {
                        partitions: count,
                        largest,
                    });
                    self.install_detected_partitions(&partitions);
                    installed += 1;
                }
            }
        }
        installed
    }

    /// Advances the shared clock by `duration` and then polls the
    /// detector ([`Cluster::poll_detector`]). Returns the number of
    /// stabilized views installed.
    pub fn run_detector_for(&mut self, duration: SimDuration) -> usize {
        self.clock.advance(duration);
        self.poll_detector()
    }

    /// Installs a stabilized partitioning detected by the pipeline:
    /// topology, per-node views, and the mode transition the paper's
    /// replication service would trigger (Figure 1.4), tagged
    /// `cause: detector`.
    fn install_detected_partitions(&mut self, partitions: &[BTreeSet<NodeId>]) {
        let raw: Vec<Vec<u32>> = partitions
            .iter()
            .map(|g| g.iter().map(|n| n.0).collect())
            .collect();
        let refs: Vec<&[u32]> = raw.iter().map(Vec::as_slice).collect();
        self.topology.split(&refs);
        self.install_views();
        let to = if !self.topology.is_healthy() || !self.crashed.is_empty() {
            SystemMode::Degraded
        } else if self.needs_reconciliation() {
            SystemMode::Reconciliation
        } else {
            SystemMode::Healthy
        };
        self.set_mode(to, TransitionCause::Detector);
    }

    /// Gate for write-path operations under a quorum-based primary
    /// policy: refuses (or admits as degraded) writes issued in a
    /// minority partition, and witnesses primary-classified writes per
    /// topology epoch for the exclusivity invariant.
    fn check_primary_write(&mut self, node: NodeId) -> Result<()> {
        if !self.config.membership.primary_policy.is_quorum() {
            return Ok(());
        }
        if self.is_primary(node) {
            let epoch = self.topology.epoch();
            let members = self.topology.partition_of(node);
            let unseen = match self.primary_witness.get(&epoch) {
                Some(existing) if existing != members => {
                    self.primary_conflicts += 1;
                    self.telemetry
                        .metrics()
                        .incr("gms.detector.primary_conflicts");
                    false
                }
                Some(_) => false,
                None => true,
            };
            if unseen {
                self.primary_witness.insert(epoch, members.clone());
            }
            return Ok(());
        }
        match self.config.membership.minority_writes {
            MinorityWriteHandling::Refuse => {
                self.telemetry
                    .metrics()
                    .incr("gms.detector.minority_writes_refused");
                Err(Error::NotPrimary {
                    node,
                    partition_size: self.topology.partition_of(node).len() as u32,
                })
            }
            // Admitted: the write runs under degraded-mode rules and
            // records consistency threats like any partition write.
            MinorityWriteHandling::Degrade => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Robustness / invariant inspection
    // ------------------------------------------------------------------

    /// Transactions currently open (active or prepared). Together with
    /// [`Cluster::stats`] this asserts transaction conservation:
    /// `begun == committed + rolled_back + open`.
    pub fn open_tx_count(&self) -> usize {
        self.tx_manager.open_count()
    }

    /// Every lock currently held, sorted by object id — invariant
    /// checkers assert that each holder is still an open transaction
    /// (no orphaned locks).
    pub fn held_locks(&self) -> Vec<(ObjectId, TxId)> {
        let mut held: Vec<(ObjectId, TxId)> = self
            .locks
            .holders()
            .map(|(id, tx)| (id.clone(), tx))
            .collect();
        held.sort();
        held
    }

    /// Whether `tx` is still open (active or prepared).
    pub fn tx_is_open(&self, tx: TxId) -> bool {
        self.tx_manager.is_active(tx) || self.tx_manager.is_prepared(tx)
    }

    /// In-doubt transactions awaiting presumed-abort recovery.
    pub fn in_doubt_txs(&self) -> impl Iterator<Item = (TxId, &InDoubtTx)> + '_ {
        self.in_doubt.iter().map(|(tx, info)| (*tx, info))
    }

    /// Number of in-doubt transactions.
    pub fn in_doubt_count(&self) -> usize {
        self.in_doubt.len()
    }

    /// Transactions resolved by the in-doubt recovery protocol so far.
    pub fn in_doubt_resolved(&self) -> u64 {
        self.in_doubt_resolved
    }

    /// Nodes currently crashed.
    pub fn crashed_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.crashed.iter().copied()
    }

    /// Whether `node` is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Entries in `node`'s persistent journal (survives crashes).
    pub fn journal_len_on(&self, node: NodeId) -> usize {
        self.containers[node.index()].journal_len()
    }

    /// Sorted committed object ids on `node` — replica-convergence
    /// checks compare these across a healed partition.
    pub fn committed_ids_on(&self, node: NodeId) -> Vec<ObjectId> {
        self.containers[node.index()]
            .committed_ids()
            .cloned()
            .collect()
    }

    // ------------------------------------------------------------------
    // Object migration (federation state transfer)
    // ------------------------------------------------------------------

    /// The committed state of `id` on the first live replica — the
    /// read half of a cross-cluster object migration. Returns `None`
    /// when no live node holds a committed image.
    pub fn export_object(&self, id: &ObjectId) -> Option<EntityState> {
        self.topology
            .nodes()
            .filter(|n| !self.crashed.contains(n))
            .find_map(|n| self.containers[n.index()].committed_entity(id).cloned())
    }

    /// Removes every live committed replica of `id` plus its placement
    /// metadata — the source-side cleanup of a migration. Each removal
    /// is journalled (a crashed source cannot resurrect the object),
    /// and one WAL entry is charged per touched replica. Returns the
    /// number of replicas dropped.
    pub fn evict_object(&mut self, id: &ObjectId) -> u64 {
        let nodes: Vec<NodeId> = self
            .topology
            .nodes()
            .filter(|n| !self.crashed.contains(n))
            .collect();
        let mut dropped = 0u64;
        for node in nodes {
            if self.containers[node.index()].remove_committed(id).is_some() {
                dropped += 1;
            }
        }
        self.replication.unregister_object(id);
        if dropped > 0 {
            self.clock
                .advance(self.costs.wal_replay_per_entry * dropped);
            self.telemetry
                .metrics()
                .add("store.migrate.evicted", dropped);
        }
        dropped
    }

    /// Installs `entity` as committed state on every live node — the
    /// write half of a migration, riding the same journalled install
    /// path the WAL resync uses ([`Cluster::restart`]). The object is
    /// registered with the live nodes as its replica set and the
    /// lowest-numbered one as primary; `wal_replay_per_entry` is
    /// charged per install. Returns the number of replicas written.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] when every node is crashed (nothing
    /// can accept the transfer).
    pub fn install_object(&mut self, entity: EntityState) -> Result<u64> {
        let nodes: Vec<NodeId> = self
            .topology
            .nodes()
            .filter(|n| !self.crashed.contains(n))
            .collect();
        let Some(primary) = nodes.first().copied() else {
            return Err(Error::Config(format!(
                "{}: no live node to install the migrated object on",
                entity.id()
            )));
        };
        let installed = nodes.len() as u64;
        let id = entity.id().clone();
        for node in &nodes {
            self.containers[node.index()].install_committed(entity.clone());
        }
        if self.replication_enabled {
            self.replication
                .register_object(id, nodes.iter().copied(), primary)?;
        }
        self.clock
            .advance(self.costs.wal_replay_per_entry * installed);
        self.telemetry
            .metrics()
            .add("store.migrate.installed", installed);
        Ok(installed)
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Opens a transactional [`Session`] on `node` — the RAII handle
    /// for the begin/invoke/commit lifecycle. A session that is
    /// dropped without [`Session::commit`] or [`Session::prepare`]
    /// rolls its transaction back.
    ///
    /// ```no_run
    /// # use dedisys_core::ClusterBuilder;
    /// # use dedisys_object::AppDescriptor;
    /// # use dedisys_types::NodeId;
    /// # let mut cluster = ClusterBuilder::new(3, AppDescriptor::new("app")).build()?;
    /// let mut session = cluster.session(NodeId(0));
    /// // session.invoke(&id, "reserve", vec![])?;
    /// session.commit()?;
    /// # Ok::<(), dedisys_types::Error>(())
    /// ```
    pub fn session(&mut self, node: NodeId) -> Session<'_> {
        let tx = self.begin_tx(node);
        Session::new(self, tx)
    }

    pub(crate) fn begin_tx(&mut self, node: NodeId) -> TxId {
        let tx = self.tx_manager.begin(node);
        self.tx_infos.insert(tx, TxInfo::default());
        tx
    }

    /// Registers a dynamic negotiation handler for `tx` (§4.2.3).
    pub fn register_negotiation_handler(&mut self, tx: TxId, handler: Box<dyn NegotiationHandler>) {
        self.ccm.register_negotiation_handler(tx, handler);
    }

    /// Rolls back `tx`, discarding all buffered changes.
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuchTransaction`] — unknown or terminated.
    /// * [`Error::TxInDoubt`] — only the in-doubt recovery protocol
    ///   may resolve a transaction whose coordinator crashed.
    pub fn rollback(&mut self, tx: TxId) -> Result<()> {
        if self.in_doubt.contains_key(&tx) {
            return Err(Error::TxInDoubt(tx));
        }
        self.tx_manager.rollback(tx)?;
        self.abort_cleanup(tx);
        Ok(())
    }

    fn abort_cleanup(&mut self, tx: TxId) {
        self.in_doubt.remove(&tx);
        if let Some(info) = self.tx_infos.remove(&tx) {
            for node in info.involved {
                self.containers[node.index()].rollback(tx);
            }
        }
        self.locks.release_all(tx);
        self.ccm.clear_tx(tx);
    }

    /// Phase 1 of an explicit two-phase commit: validates pending
    /// soft/async constraints (the CCMgr's prepare vote) and moves
    /// `tx` to the prepared state. A prepared transaction keeps its
    /// locks and buffers until phase 2 ([`Cluster::commit`]); if its
    /// coordinator crashes first it becomes *in-doubt* and is resolved
    /// by presumed abort ([`Cluster::resolve_in_doubt`]).
    ///
    /// # Errors
    ///
    /// * [`Error::NoSuchTransaction`] — unknown or terminated.
    /// * [`Error::RollbackOnly`] — the transaction was vetoed earlier;
    ///   it is rolled back.
    /// * Constraint errors from the prepare vote (everything rolled
    ///   back).
    pub fn prepare(&mut self, tx: TxId) -> Result<()> {
        if !self.tx_manager.is_active(tx) {
            return Err(Error::NoSuchTransaction(tx));
        }
        if self.tx_manager.is_rollback_only(tx) {
            let _ = self.tx_manager.commit(tx); // transitions to rolled back
            self.abort_cleanup(tx);
            return Err(Error::RollbackOnly(tx));
        }
        if self.ccm_enabled {
            if let Err(e) = self.prepare_constraints(tx) {
                let _ = self.tx_manager.rollback(tx);
                self.abort_cleanup(tx);
                return Err(e);
            }
        }
        self.tx_manager.mark_prepared(tx)?;
        self.telemetry.emit(|| TraceEvent::TwoPc {
            tx,
            phase: TwoPcPhase::Prepare,
            participant: None,
            prepared: Some(true),
        });
        Ok(())
    }

    /// Commits `tx`: validates pending soft/async constraints (the
    /// CCMgr's prepare vote), applies buffered writes and propagates
    /// updates to reachable backups.
    ///
    /// # Errors
    ///
    /// * [`Error::RollbackOnly`] — the transaction was vetoed earlier.
    /// * [`Error::ConstraintViolated`] / [`Error::ThreatRejected`] — a
    ///   soft constraint failed at prepare; everything is rolled back.
    /// * [`Error::TxInDoubt`] — the coordinator crashed after prepare;
    ///   only the in-doubt recovery protocol may resolve the
    ///   transaction.
    pub fn commit(&mut self, tx: TxId) -> Result<()> {
        if self.in_doubt.contains_key(&tx) {
            return Err(Error::TxInDoubt(tx));
        }
        if self.tx_manager.is_prepared(tx) {
            // Phase 2 of an explicit 2PC: constraints already voted at
            // prepare time; just apply.
            self.telemetry.emit(|| TraceEvent::TwoPc {
                tx,
                phase: TwoPcPhase::Commit,
                participant: None,
                prepared: None,
            });
            return self.apply_commit(tx);
        }
        if !self.tx_manager.is_active(tx) {
            return Err(Error::NoSuchTransaction(tx));
        }
        if self.tx_manager.is_rollback_only(tx) {
            let _ = self.tx_manager.commit(tx); // transitions to rolled back
            self.abort_cleanup(tx);
            return Err(Error::RollbackOnly(tx));
        }
        // CCM prepare: soft and async invariants (§4.2.3, soft
        // constraints checked at the end of the transaction).
        if self.ccm_enabled {
            if let Err(e) = self.prepare_constraints(tx) {
                let _ = self.tx_manager.rollback(tx);
                self.abort_cleanup(tx);
                return Err(e);
            }
        }
        self.apply_commit(tx)
    }

    /// Applies a voted transaction: flips the manager state, installs
    /// buffered writes, persists, propagates to reachable backups
    /// (charging propagation plus any ship-retry backoff) and releases
    /// locks.
    fn apply_commit(&mut self, tx: TxId) -> Result<()> {
        self.tx_manager.commit(tx)?;
        let info = self.tx_infos.remove(&tx).unwrap_or_default();
        // Apply buffers and collect written objects per node.
        let mut all_written: Vec<(NodeId, ObjectId, bool)> = Vec::new();
        let mut all_deleted: Vec<(NodeId, ObjectId)> = Vec::new();
        for node in &info.involved {
            let (written, deleted) = self.containers[node.index()].commit(tx);
            for id in written {
                let created = info.created.contains_key(&id);
                all_written.push((*node, id, created));
            }
            for id in deleted {
                all_deleted.push((*node, id));
            }
        }
        // Persist + propagate.
        for (node, id, created) in &all_written {
            self.clock.advance(self.costs.db_write);
            if *created {
                self.clock.advance(self.costs.create_extra);
                self.metrics.creates += 1;
                if self.replication_enabled {
                    // Replica metadata (JNDI name, key, creation
                    // request) is persisted too (§5.1).
                    self.clock.advance(self.costs.db_write);
                    if let Some((replicas, primary)) = info.created.get(id) {
                        self.replication.register_object(
                            id.clone(),
                            replicas.iter().copied(),
                            *primary,
                        )?;
                    }
                }
            }
            if self.replication_enabled {
                let report = self.replication.propagate_update(
                    id,
                    *node,
                    &self.topology,
                    &mut self.containers,
                    self.clock.now(),
                );
                self.clock
                    .advance(self.costs.propagation(report.recipients.len()));
                self.clock
                    .advance(self.costs.ship_retry_backoff * report.backoff_units);
            }
        }
        for (node, id) in &all_deleted {
            self.clock.advance(self.costs.db_write);
            self.metrics.deletes += 1;
            if self.replication_enabled {
                let report = self.replication.propagate_update(
                    id,
                    *node,
                    &self.topology,
                    &mut self.containers,
                    self.clock.now(),
                );
                self.clock
                    .advance(self.costs.propagation(report.recipients.len()));
                self.clock
                    .advance(self.costs.ship_retry_backoff * report.backoff_units);
                self.replication.unregister_object(id);
            }
        }
        // Committed writes advance object versions — drop every cached
        // verdict that depended on the old state.
        let mut touched: BTreeSet<ObjectId> = BTreeSet::new();
        touched.extend(all_written.iter().map(|(_, id, _)| id.clone()));
        touched.extend(all_deleted.iter().map(|(_, id)| id.clone()));
        for id in touched {
            let entries = self.ccm.invalidate_object(&id);
            if entries > 0 {
                self.telemetry
                    .metrics()
                    .add("ccm.verdict_cache.invalidate", entries as u64);
                self.telemetry.emit(|| TraceEvent::VerdictCacheInvalidate {
                    object: id.to_string(),
                    entries: entries as u32,
                });
            }
        }
        self.locks.release_all(tx);
        self.ccm.clear_tx(tx);
        Ok(())
    }

    fn prepare_constraints(&mut self, tx: TxId) -> Result<()> {
        let origin = tx.node;
        let pending = self.ccm.take_pending(tx);
        self.telemetry.emit(|| TraceEvent::TriggerPoint {
            trigger: TriggerKind::CommitPrepare,
            signature: format!("commit:{tx}"),
            matches: pending.len() as u32,
        });
        // §5.5.3: degraded-mode async invariants take the record-only
        // fast path; everything else forms the commit-time validation
        // batch, evaluated on the pool and merged in pending order.
        let degraded = |cluster: &Self| {
            cluster.topology.partition_of(origin).len() < cluster.topology.node_count() as usize
        };
        let candidates: Vec<BatchCandidate> = pending
            .iter()
            .filter(|check| {
                !(check.constraint.meta.kind == ConstraintKind::AsyncInvariant && degraded(self))
            })
            .map(|check| BatchCandidate {
                constraint: Arc::clone(&check.constraint),
                context_object: check.context_object.clone(),
                call: None,
                pre_state: BTreeMap::new(),
            })
            .collect();
        let mut evals = self
            .evaluate_candidates(&candidates, origin, tx)
            .into_iter();
        for check in pending {
            let constraint = check.constraint.as_ref();
            match constraint.meta.kind {
                ConstraintKind::AsyncInvariant if degraded(self) => {
                    // §5.5.3: degraded mode — no validation, no
                    // negotiation; record the threat directly.
                    let outcome = self.ccm.record_async_threat(
                        constraint,
                        check.context_object.clone(),
                        tx,
                        self.clock.now(),
                    );
                    self.charge_threat_storage(outcome);
                }
                _ => {
                    let eval = evals.next().expect("one evaluation per batched candidate");
                    self.merge_one_validation(
                        origin,
                        tx,
                        constraint,
                        check.context_object.clone(),
                        eval,
                    )?;
                }
            }
        }
        // §5.4: the transaction blocks before commit until all deferred
        // negotiation decisions are available.
        let deferred_count = self.ccm.deferred_len(tx) as u64;
        let outcomes = self.ccm.negotiate_deferred(tx)?;
        self.clock.advance(self.costs.negotiation * deferred_count);
        for outcome in outcomes {
            self.charge_threat_storage(outcome);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Entity operations
    // ------------------------------------------------------------------

    /// Creates `entity` within `tx`, replicated on every node with the
    /// creating node as primary.
    ///
    /// # Errors
    ///
    /// Propagates container failures (unknown class, duplicate id).
    pub fn create(&mut self, node: NodeId, tx: TxId, entity: EntityState) -> Result<()> {
        let replicas: Vec<NodeId> = self.topology.nodes().collect();
        self.create_bound(node, tx, entity, replicas, node)
    }

    /// Creates `entity` with an explicit replica set and primary — the
    /// DTMS "strong ownership" case (§1.4).
    ///
    /// # Errors
    ///
    /// Propagates container failures; [`Error::NoSuchTransaction`] for
    /// unknown transactions.
    pub fn create_bound(
        &mut self,
        node: NodeId,
        tx: TxId,
        entity: EntityState,
        replicas: Vec<NodeId>,
        primary: NodeId,
    ) -> Result<()> {
        if !self.tx_manager.is_active(tx) {
            return Err(Error::NoSuchTransaction(tx));
        }
        if self.crashed.contains(&node) {
            return Err(Error::NodeCrashed(node));
        }
        self.check_primary_write(node)?;
        self.clock.advance(self.costs.base_invocation);
        if self.replication_enabled {
            self.clock.advance(self.costs.replication_interceptor);
        }
        if self.ccm_enabled {
            self.clock.advance(self.costs.ccm_interceptor);
        }
        let id = entity.id().clone();
        // The create executes on the object's primary — a node outside
        // the replica set never materializes a copy.
        let exec = if self.replication_enabled {
            if !self.topology.reachable(node, primary) {
                return Err(Error::NodeUnreachable(primary));
            }
            primary
        } else {
            node
        };
        if exec != node {
            self.clock.advance(self.costs.net_hop * 2);
        }
        self.locks.acquire(tx, &id)?;
        self.containers[exec.index()].create(tx, entity)?;
        let info = self.tx_infos.entry(tx).or_default();
        info.involved.insert(exec);
        info.created.insert(id, (replicas, primary));
        Ok(())
    }

    /// Deletes `id` within `tx`.
    ///
    /// # Errors
    ///
    /// Propagates lock conflicts and container failures.
    pub fn delete(&mut self, node: NodeId, tx: TxId, id: &ObjectId) -> Result<()> {
        if !self.tx_manager.is_active(tx) {
            return Err(Error::NoSuchTransaction(tx));
        }
        if self.crashed.contains(&node) {
            return Err(Error::NodeCrashed(node));
        }
        self.check_primary_write(node)?;
        self.clock.advance(self.costs.base_invocation);
        if self.replication_enabled {
            self.clock.advance(self.costs.replication_interceptor);
        }
        if self.ccm_enabled {
            self.clock.advance(self.costs.ccm_interceptor);
        }
        let exec = if self.replication_enabled {
            self.replication.write_target(id, node, &self.topology)?
        } else {
            node
        };
        if exec != node {
            self.clock.advance(self.costs.net_hop * 2);
        }
        self.locks.acquire(tx, id)?;
        self.containers[exec.index()].delete(tx, id)?;
        self.tx_infos.entry(tx).or_default().involved.insert(exec);
        Ok(())
    }

    /// Invokes `method` on `target` within `tx` — the central
    /// client-facing operation, passing through interception,
    /// constraint consistency management and replication.
    ///
    /// # Errors
    ///
    /// * Availability errors (unreachable object, blocked writes, no
    ///   quorum) depending on the protocol and topology.
    /// * [`Error::ConstraintViolated`] / [`Error::ThreatRejected`] —
    ///   the transaction is marked rollback-only.
    pub fn invoke(
        &mut self,
        node: NodeId,
        tx: TxId,
        target: &ObjectId,
        method: impl Into<MethodName>,
        args: Vec<Value>,
    ) -> Result<Value> {
        let method = method.into();
        self.metrics.invocations += 1;
        self.inv_cost = CostBreakdown::default();
        self.telemetry.emit(|| TraceEvent::InvocationStart {
            node,
            tx,
            target: target.to_string(),
            method: method.to_string(),
        });
        // Pass the reified invocation through the deployed interceptor
        // chain (Figure 4.5) around the middleware pipeline. The chain
        // is configurable at runtime — the `standardjboss.xml`
        // extension point the original prototype hooked into.
        let mut chain = std::mem::take(&mut self.hooks);
        let mut info = HookInfo {
            node,
            mode: self.mode,
            at: self.clock.now(),
        };
        let mut inv = Invocation::new(tx, target.clone(), method.clone(), args);
        let result = chain.invoke(&mut info, &mut inv, |_, inv| {
            self.invoke_inner(node, tx, &inv.target, inv.method.clone(), inv.args.clone())
        });
        self.hooks = chain;
        let outcome = if result.is_err() {
            self.metrics.failed_invocations += 1;
            InvocationOutcome::Failed
        } else {
            InvocationOutcome::Ok
        };
        let cost = self.inv_cost;
        self.telemetry.metrics().incr("cluster.invocations");
        if result.is_err() {
            self.telemetry.metrics().incr("cluster.failed_invocations");
        }
        self.telemetry
            .metrics()
            .observe("invocation.total", cost.total());
        self.telemetry.emit(|| TraceEvent::InvocationEnd {
            node,
            tx,
            target: target.to_string(),
            method: method.to_string(),
            outcome,
            cost,
        });
        result
    }

    /// Appends an application/operator interceptor to the invocation
    /// chain (runs around every [`Cluster::invoke`] — auditing,
    /// security vetoes, custom payload attachment, …).
    pub fn add_interceptor(
        &mut self,
        interceptor: Box<dyn dedisys_object::Interceptor<HookInfo> + Send>,
    ) {
        self.hooks.push(interceptor);
    }

    fn invoke_inner(
        &mut self,
        node: NodeId,
        tx: TxId,
        target: &ObjectId,
        method: MethodName,
        args: Vec<Value>,
    ) -> Result<Value> {
        if !self.tx_manager.is_active(tx) {
            return Err(Error::NoSuchTransaction(tx));
        }
        if self.crashed.contains(&node) {
            return Err(Error::NodeCrashed(node));
        }
        // Deployment check + method kind.
        let class = self
            .app
            .class(target.class())
            .ok_or_else(|| Error::ClassNotDeployed(target.class().to_string()))?;
        let kind = class
            .method(&method)
            .map(dedisys_object::MethodDescriptor::kind)
            .unwrap_or(MethodKind::Write); // safe side (§5.1)

        // Base invocation + interceptor costs (R2 — interception).
        let t_r2 = self.clock.now();
        self.clock.advance(self.costs.base_invocation);
        if self.replication_enabled {
            self.clock.advance(self.costs.replication_interceptor);
        }
        if self.ccm_enabled {
            self.clock.advance(self.costs.ccm_interceptor);
        }
        self.inv_cost.r2_interception_ns += self.clock.now().since(t_r2).as_nanos();

        // Choose the executing node (R3 — target routing + locks).
        let t_r3 = self.clock.now();
        let exec = match kind {
            MethodKind::Write => {
                self.check_primary_write(node)?;
                if self.replication_enabled {
                    self.replication
                        .write_target(target, node, &self.topology)?
                } else {
                    node
                }
            }
            MethodKind::Read => self.read_target(node, tx, target)?,
        };
        if exec != node {
            self.clock.advance(self.costs.net_hop * 2);
        }
        if kind == MethodKind::Write {
            self.locks.acquire(tx, target)?;
        }
        self.tx_infos.entry(tx).or_default().involved.insert(exec);
        self.inv_cost.r3_preparation_ns += self.clock.now().since(t_r3).as_nanos();

        let inv = Invocation::new(tx, target.clone(), method.clone(), args.clone());
        let sig = inv.signature();

        // --- CCM before-invocation: preconditions + @pre snapshots ---
        if self.ccm_enabled {
            let t_r5 = self.clock.now();
            let pres = self.repository.lookup(&sig, LookupKind::Precondition);
            self.telemetry.emit(|| TraceEvent::TriggerPoint {
                trigger: TriggerKind::Precondition,
                signature: sig.to_string(),
                matches: pres.len() as u32,
            });
            let candidates: Vec<BatchCandidate> = pres
                .iter()
                .map(|constraint| BatchCandidate {
                    constraint: Arc::clone(constraint),
                    context_object: Some(target.clone()),
                    call: Some(CallInfo {
                        target: target.clone(),
                        method: method.clone(),
                        args: args.clone(),
                        result: None,
                    }),
                    pre_state: BTreeMap::new(),
                })
                .collect();
            let evals = self.evaluate_candidates(&candidates, exec, tx);
            for (constraint, eval) in pres.iter().zip(evals) {
                if let Err(e) =
                    self.merge_one_validation(exec, tx, constraint, Some(target.clone()), eval)
                {
                    self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
                    let _ = self.tx_manager.set_rollback_only(tx);
                    return Err(e);
                }
            }
            // Postconditions snapshot @pre state.
            let posts = self.repository.lookup(&sig, LookupKind::Postcondition);
            for constraint in &posts {
                let mut access = ReplicaAccess::new(
                    &self.containers,
                    &self.replication,
                    &self.topology,
                    exec,
                    tx,
                );
                let mut ctx = ValidationContext::for_method(
                    target.clone(),
                    method.clone(),
                    args.clone(),
                    &mut access,
                );
                constraint.implementation.before_method_invocation(&mut ctx);
                let pre = ctx.take_pre_state();
                drop(ctx);
                self.ccm
                    .store_pre_state(tx, constraint.name().as_str(), pre);
            }
            self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
        }

        // --- Dispatch (R1 — application/database work) ---
        let t_r1 = self.clock.now();
        let result =
            self.methods
                .dispatch(&mut self.containers[exec.index()], &inv, self.clock.now());
        if kind == MethodKind::Read {
            self.clock.advance(self.costs.db_read);
        }
        self.inv_cost.r1_application_ns += self.clock.now().since(t_r1).as_nanos();
        let value = match result {
            Ok(v) => v,
            Err(e) => {
                let _ = self.tx_manager.set_rollback_only(tx);
                return Err(e);
            }
        };

        // --- CCM after-invocation: postconditions + invariants ---
        if self.ccm_enabled {
            let t_r5 = self.clock.now();
            let posts = self.repository.lookup(&sig, LookupKind::Postcondition);
            self.telemetry.emit(|| TraceEvent::TriggerPoint {
                trigger: TriggerKind::Postcondition,
                signature: sig.to_string(),
                matches: posts.len() as u32,
            });
            let candidates: Vec<BatchCandidate> = posts
                .iter()
                .map(|constraint| BatchCandidate {
                    constraint: Arc::clone(constraint),
                    context_object: Some(target.clone()),
                    call: Some(CallInfo {
                        target: target.clone(),
                        method: method.clone(),
                        args: args.clone(),
                        result: Some(value.clone()),
                    }),
                    pre_state: self.ccm.take_pre_state(tx, constraint.name().as_str()),
                })
                .collect();
            let evals = self.evaluate_candidates(&candidates, exec, tx);
            for (constraint, eval) in posts.iter().zip(evals) {
                if let Err(e) =
                    self.merge_one_validation(exec, tx, constraint, Some(target.clone()), eval)
                {
                    self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
                    let _ = self.tx_manager.set_rollback_only(tx);
                    return Err(e);
                }
            }
            let invariants = self.repository.lookup(&sig, LookupKind::Invariant);
            self.telemetry.emit(|| TraceEvent::TriggerPoint {
                trigger: TriggerKind::Invariant,
                signature: sig.to_string(),
                matches: invariants.len() as u32,
            });
            // Resolve every context object first (§4.2.2), then batch
            // the hard invariants; soft/async invariants are only
            // registered for commit-time validation.
            let mut resolved: Vec<Option<ObjectId>> = Vec::with_capacity(invariants.len());
            for constraint in &invariants {
                let preparation = constraint
                    .preparation_for(&sig)
                    .cloned()
                    .unwrap_or(dedisys_constraints::ContextPreparation::CalledObject);
                let context_object = {
                    let mut access = ReplicaAccess::new(
                        &self.containers,
                        &self.replication,
                        &self.topology,
                        exec,
                        tx,
                    );
                    match preparation.resolve(target, &mut access) {
                        Ok(ctx_obj) => ctx_obj,
                        Err(Error::ObjectUnreachable(_)) => {
                            // Context preparation itself hit an
                            // unreachable object: treat the constraint
                            // as uncheckable via a no-context check.
                            None
                        }
                        Err(e) => {
                            self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
                            let _ = self.tx_manager.set_rollback_only(tx);
                            return Err(e);
                        }
                    }
                };
                resolved.push(context_object);
            }
            let candidates: Vec<BatchCandidate> = invariants
                .iter()
                .zip(&resolved)
                .filter(|(constraint, _)| constraint.meta.kind == ConstraintKind::HardInvariant)
                .map(|(constraint, context_object)| BatchCandidate {
                    constraint: Arc::clone(constraint),
                    context_object: context_object.clone(),
                    call: None,
                    pre_state: BTreeMap::new(),
                })
                .collect();
            let mut evals = self.evaluate_candidates(&candidates, exec, tx).into_iter();
            for (constraint, context_object) in invariants.into_iter().zip(resolved) {
                match constraint.meta.kind {
                    ConstraintKind::HardInvariant => {
                        let eval = evals.next().expect("one evaluation per batched candidate");
                        if let Err(e) =
                            self.merge_one_validation(exec, tx, &constraint, context_object, eval)
                        {
                            self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
                            let _ = self.tx_manager.set_rollback_only(tx);
                            return Err(e);
                        }
                    }
                    ConstraintKind::SoftInvariant | ConstraintKind::AsyncInvariant => {
                        self.ccm.register_pending(
                            tx,
                            PendingCheck {
                                constraint,
                                context_object,
                            },
                        );
                    }
                    _ => {}
                }
            }
            self.inv_cost.r5_checks_ns += self.clock.now().since(t_r5).as_nanos();
        }
        Ok(value)
    }

    fn read_target(&self, node: NodeId, tx: TxId, target: &ObjectId) -> Result<NodeId> {
        if self.containers[node.index()].exists(tx, target) {
            return Ok(node);
        }
        let partition = self.topology.partition_of(node);
        partition
            .iter()
            .find(|n| {
                self.containers[n.index()]
                    .committed_entity(target)
                    .is_some()
            })
            .copied()
            .ok_or_else(|| Error::ObjectUnreachable(target.clone()))
    }

    /// Probes whether `candidate` is answerable from the verdict
    /// cache: the cache is on, the candidate is an invariant check on
    /// committed state (no call info, no `@pre` snapshot, no buffered
    /// transactional write shadowing the object anywhere in the
    /// partition), the constraint's static read-set is cacheable, and
    /// the object is reachable. Returns the cache key — context object
    /// and its committed version — or `None` when the candidate must
    /// be evaluated without touching the cache.
    fn cacheable_probe(
        &self,
        candidate: &BatchCandidate,
        exec: NodeId,
        tx: TxId,
    ) -> Option<(ObjectId, dedisys_types::Version)> {
        if !self.config.validation.verdict_cache {
            return None;
        }
        if candidate.call.is_some() || !candidate.pre_state.is_empty() {
            return None;
        }
        let object = candidate.context_object.as_ref()?;
        let read_set = candidate.constraint.implementation.read_set()?;
        if !read_set.cacheable() {
            return None;
        }
        if !self.replication.is_reachable(object, exec, &self.topology) {
            return None;
        }
        let members = self.topology.partition_of(exec);
        for n in members {
            if self.containers[n.index()]
                .buffered_view(tx, object)
                .is_some()
            {
                return None;
            }
        }
        // Mirror the evaluation's entity lookup (minus the buffered
        // views excluded above) so the version keyed on is exactly the
        // state the evaluation would read.
        let version = if let Ok(e) = self.containers[exec.index()].view(tx, object) {
            e.version()
        } else {
            members
                .iter()
                .find_map(|n| self.containers[n.index()].committed_entity(object))?
                .version()
        };
        Some((object.clone(), version))
    }

    /// Runs the evaluation phase for a batch of validation candidates
    /// and returns one raw evaluation per candidate, in candidate
    /// order, each tagged with how it was answered (full evaluation or
    /// verdict-cache hit) so the serial merge phase can take the right
    /// virtual-time charge.
    ///
    /// The cache probe and any insertions happen here, serially, in
    /// candidate order — workers never touch the cache, so parallel
    /// runs stay byte-identical to serial ones. Only candidates the
    /// probe cannot answer are dispatched to the configured pool
    /// ([`ClusterBuilder::validation_parallelism`]).
    ///
    /// Multi-candidate batches are recorded as `validation_batch`
    /// trace events; the reported `shards`/`pool` figures are a pure
    /// function of the batch size, so traces stay byte-identical
    /// across parallelism settings.
    pub(crate) fn evaluate_candidates(
        &mut self,
        candidates: &[BatchCandidate],
        exec: NodeId,
        tx: TxId,
    ) -> Vec<(RawEvaluation, ValidationCharge)> {
        if candidates.len() > 1 {
            let shards = batch::shard_count(candidates.len());
            self.telemetry.metrics().incr("ccm.batches");
            self.telemetry.emit(|| TraceEvent::ValidationBatch {
                candidates: candidates.len() as u32,
                shards,
                pool: shards,
            });
        }
        let env = self.partition_env(exec);
        let miss_charge = match self.config.validation.engine {
            ConstraintEngine::Interpreted => ValidationCharge::Interpreted,
            ConstraintEngine::Compiled => ValidationCharge::Compiled,
        };
        let mut results: Vec<Option<(RawEvaluation, ValidationCharge)>> = Vec::new();
        results.resize_with(candidates.len(), || None);
        // Candidate index → cache key to insert under after a miss
        // evaluates to a definite degree.
        let mut inserts: Vec<Option<(ObjectId, dedisys_types::Version)>> = Vec::new();
        inserts.resize_with(candidates.len(), || None);
        let mut misses: Vec<usize> = Vec::new();
        for (i, candidate) in candidates.iter().enumerate() {
            match self.cacheable_probe(candidate, exec, tx) {
                Some((object, version)) => {
                    let hit = self
                        .ccm
                        .cached_verdict(&object, exec, candidate.constraint.name(), version)
                        .cloned();
                    if let Some(hit) = hit {
                        self.telemetry.metrics().incr("ccm.verdict_cache.hit");
                        self.telemetry.emit(|| TraceEvent::VerdictCacheHit {
                            constraint: candidate.constraint.name().to_string(),
                            object: object.to_string(),
                        });
                        results[i] = Some((
                            RawEvaluation {
                                outcome: Ok(hit.degree),
                                accessed: hit.accessed,
                            },
                            ValidationCharge::CacheHit,
                        ));
                    } else {
                        self.telemetry.metrics().incr("ccm.verdict_cache.miss");
                        self.telemetry.emit(|| TraceEvent::VerdictCacheMiss {
                            constraint: candidate.constraint.name().to_string(),
                            object: object.to_string(),
                        });
                        inserts[i] = Some((object, version));
                        misses.push(i);
                    }
                }
                None => misses.push(i),
            }
        }
        if !misses.is_empty() {
            let miss_candidates: Vec<BatchCandidate> =
                misses.iter().map(|&i| candidates[i].clone()).collect();
            let evals = batch::evaluate_batch(
                &miss_candidates,
                &self.containers,
                &self.replication,
                &self.topology,
                exec,
                tx,
                env,
                self.config.validation.engine,
                self.config.validation.parallelism,
            );
            for (&i, eval) in misses.iter().zip(evals) {
                if let Some((object, version)) = inserts[i].take() {
                    if let Ok(
                        degree @ (SatisfactionDegree::Satisfied | SatisfactionDegree::Violated),
                    ) = eval.outcome
                    {
                        self.ccm.store_verdict(
                            object,
                            exec,
                            candidates[i].constraint.name().clone(),
                            crate::ccm::CachedVerdict {
                                version,
                                degree,
                                accessed: eval.accessed.clone(),
                            },
                        );
                    }
                }
                results[i] = Some((eval, miss_charge));
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every candidate is answered by probe or evaluation"))
            .collect()
    }

    /// Serial merge phase for one evaluated candidate: staleness
    /// degradation, statistics, telemetry and the virtual-time charge
    /// for the check (per the candidate's [`ValidationCharge`]).
    pub(crate) fn merge_validation(
        &mut self,
        constraint: &RegisteredConstraint,
        eval: (RawEvaluation, ValidationCharge),
        exec: NodeId,
        tx: TxId,
    ) -> Result<ValidationVerdict> {
        let (eval, charge) = eval;
        let now = self.clock.now();
        let verdict = {
            let access = ReplicaAccess::new(
                &self.containers,
                &self.replication,
                &self.topology,
                exec,
                tx,
            );
            self.ccm.finish_validation(constraint, eval, &access, now)?
        };
        self.clock.advance(match charge {
            ValidationCharge::Interpreted => self.costs.constraint_check,
            ValidationCharge::Compiled => self.costs.compiled_constraint_check,
            ValidationCharge::CacheHit => self.costs.verdict_cache_probe,
        });
        Ok(verdict)
    }

    /// Merge + verdict processing for one evaluated candidate:
    /// [`Cluster::merge_validation`] followed by negotiation and
    /// threat storage.
    pub(crate) fn merge_one_validation(
        &mut self,
        exec: NodeId,
        tx: TxId,
        constraint: &RegisteredConstraint,
        context_object: Option<ObjectId>,
        eval: (RawEvaluation, ValidationCharge),
    ) -> Result<()> {
        let verdict = self.merge_validation(constraint, eval, exec, tx)?;
        let was_threat = verdict.degree.is_threat();
        let outcome =
            self.ccm
                .process_verdict(constraint, context_object, verdict, tx, self.clock.now())?;
        if was_threat {
            self.clock.advance(self.costs.negotiation);
        }
        if let Some(outcome) = outcome {
            self.charge_threat_storage(outcome);
        }
        Ok(())
    }

    pub(crate) fn charge_threat_storage(&mut self, outcome: StoreOutcome) {
        let identities = self.ccm.threat_store().identity_count() as u64;
        match outcome {
            StoreOutcome::Stored => {
                self.clock.advance(self.costs.threat_new_fixed);
                self.clock
                    .advance(self.costs.threat_scan_per_identity * identities.saturating_sub(1));
            }
            StoreOutcome::LinkedOccurrence => {
                self.clock.advance(self.costs.threat_link_fixed);
                self.clock
                    .advance(self.costs.threat_scan_per_identity * identities.saturating_sub(1));
                self.maybe_compact_threats();
            }
            StoreOutcome::Deduplicated => {
                self.clock.advance(self.costs.threat_dedup_read);
            }
        }
    }

    /// Folds duplicate threat records *during* degraded mode under
    /// [`HistoryPolicy::Reduced`], once the duplicate volume crosses
    /// the threshold — so heal-time reconciliation ships one folded
    /// record per identity instead of the occurrence history (§5.5.1).
    fn maybe_compact_threats(&mut self) {
        if self.ccm.threat_store().policy() != HistoryPolicy::Reduced {
            return;
        }
        if self.ccm.threat_store().duplicate_records() < self.config.durability.compaction_threshold
        {
            return;
        }
        let report = self.ccm.threat_store_mut().compact();
        self.charge_compaction(report);
    }

    fn charge_compaction(&mut self, report: crate::threat::CompactionReport) {
        if report.folded == 0 {
            return;
        }
        // One batched rewrite per folded identity group, plus the
        // marginal scan cost per removed record.
        self.clock.advance(
            self.costs.db_write * report.retained
                + self.costs.threat_scan_per_identity * report.folded,
        );
        self.telemetry
            .metrics()
            .add("reconcile.threats_folded", report.folded);
        self.telemetry.emit(|| TraceEvent::ThreatCompaction {
            folded: report.folded,
            retained: report.retained,
        });
    }

    // ------------------------------------------------------------------
    // Convenience accessors used by examples and benches
    // ------------------------------------------------------------------

    /// Invokes the conventional setter for `field`.
    ///
    /// # Errors
    ///
    /// As [`Cluster::invoke`].
    pub fn set_field(
        &mut self,
        node: NodeId,
        tx: TxId,
        target: &ObjectId,
        field: &str,
        value: Value,
    ) -> Result<()> {
        self.invoke(node, tx, target, setter_name(field), vec![value])
            .map(|_| ())
    }

    /// Invokes the conventional getter for `field`.
    ///
    /// # Errors
    ///
    /// As [`Cluster::invoke`].
    pub fn get_field(
        &mut self,
        node: NodeId,
        tx: TxId,
        target: &ObjectId,
        field: &str,
    ) -> Result<Value> {
        self.invoke(node, tx, target, getter_name(field), vec![])
    }

    pub(crate) fn replication_and_containers(
        &mut self,
    ) -> (&mut ReplicationManager, &mut [EntityContainer]) {
        (&mut self.replication, &mut self.containers)
    }

    pub(crate) fn recon_env(&mut self) -> (&SimClock, &CostModel, &mut [EntityContainer]) {
        (&self.clock, &self.costs, &mut self.containers)
    }

    pub(crate) fn validation_env(
        &mut self,
    ) -> (&ReplicationManager, &[EntityContainer], &Topology, &mut Ccm) {
        (
            &self.replication,
            &self.containers,
            &self.topology,
            &mut self.ccm,
        )
    }

    /// Runs `f` inside a fresh transaction on `node`, committing on
    /// success and rolling back on failure.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error (after rollback) or the commit
    /// failure.
    pub fn run_tx<T>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut Cluster, TxId) -> Result<T>,
    ) -> Result<T> {
        let tx = self.begin_tx(node);
        match f(self, tx) {
            Ok(value) => {
                self.commit(tx)?;
                Ok(value)
            }
            Err(e) => {
                let _ = self.rollback(tx);
                Err(e)
            }
        }
    }
}

/// The conventional setter name for a field (`sold` → `setSold`).
pub fn setter_name(field: &str) -> String {
    format!("set{}", capitalize(field))
}

/// The conventional getter name for a field (`sold` → `getSold`).
pub fn getter_name(field: &str) -> String {
    format!("get{}", capitalize(field))
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(first) => first.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}
