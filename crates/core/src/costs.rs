//! The virtual-time cost model.
//!
//! The paper's Chapter 5 numbers were measured on 2–3 GHz machines with
//! MySQL persistence over a 100 Mbit LAN. This reproduction replaces
//! wall-clock with virtual time: each middleware action advances the
//! shared [`dedisys_net::SimClock`] by a calibrated unit cost, so the
//! throughput *shapes* (who wins, by what factor, where crossovers lie)
//! emerge from the protocols' real operation counts.
//!
//! Calibration targets (No-DeDiSys single node, Figure 5.1/5.4):
//! empty ≈ 150 ops/s, getter ≈ 145 ops/s, setter/delete ≈ 75 ops/s,
//! create ≈ 60 ops/s.

use dedisys_types::SimDuration;

/// Unit costs of middleware actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Fixed cost of a (remote) EJB-style invocation: marshalling,
    /// authentication/authorization, transaction association, bean
    /// locking (§5.1 lists these as dominating).
    pub base_invocation: SimDuration,
    /// A database write (entity state, threat record, replica
    /// metadata).
    pub db_write: SimDuration,
    /// A database point read.
    pub db_read: SimDuration,
    /// Extra database work for entity creation (insert + key
    /// bookkeeping).
    pub create_extra: SimDuration,
    /// One network hop (one-way point-to-point message).
    pub net_hop: SimDuration,
    /// Fixed overhead of one synchronous update propagation round:
    /// state extraction, serialization, group multicast, transaction
    /// association at the backups, confirmation (§5.1 attributes the
    /// bulk of the write slowdown to this path).
    pub propagation_fixed: SimDuration,
    /// Additional propagation cost per backup beyond the first
    /// (multicast fan-out is mostly parallel; a small serial component
    /// remains).
    pub propagation_per_extra_backup: SimDuration,
    /// Running through the replication framework's interceptors even
    /// when nothing is replicated (the ADAPT share of the "empty
    /// method" overhead — 22 of the 27 percentage points, §5.1).
    pub replication_interceptor: SimDuration,
    /// Running through the CCM interceptor: repository lookups and
    /// bookkeeping (the ~5% share, §5.1).
    pub ccm_interceptor: SimDuration,
    /// Executing one constraint's `validate` (beyond repository
    /// lookup); the Chapter 5 tests return constants, so this is small.
    /// This is the *interpreted* engine's cost — the Dresden-OCL-style
    /// tool-generated check Chapter 2 measures.
    pub constraint_check: SimDuration,
    /// Executing one constraint through the compiled stack-VM engine.
    /// Chapter 2 attributes most of the interpreted overhead to
    /// re-walking tool-generated checking code; the flat program
    /// removes that share.
    pub compiled_constraint_check: SimDuration,
    /// Probing the verdict cache (version-vector comparison) when a
    /// cacheable candidate is answered without evaluation.
    pub verdict_cache_probe: SimDuration,
    /// Lowering one constraint expression to its compiled program
    /// (paid once per constraint, at registration or engine switch).
    pub constraint_compile: SimDuration,
    /// One consistency-threat negotiation (callback round).
    pub negotiation: SimDuration,
    /// Fixed cost of persisting and replicating a *new* threat: at
    /// least three database objects (§5.1), transaction-bound storage
    /// and synchronous replication of the threat record.
    pub threat_new_fixed: SimDuration,
    /// Fixed cost of linking an additional identical threat under the
    /// full-history policy (two further database objects, §5.2).
    pub threat_link_fixed: SimDuration,
    /// Cost per already-stored distinct threat identity when
    /// processing a further threat (duplicate detection / linking scans
    /// grow with the gathered data, §5.2).
    pub threat_scan_per_identity: SimDuration,
    /// Database read detecting an already-stored identical threat
    /// under the identical-once policy (§5.5.1).
    pub threat_dedup_read: SimDuration,
    /// One exponential-backoff unit waited by the replication ship
    /// path when a backup install fails (retries wait 1, 2, 4, …
    /// units).
    pub ship_retry_backoff: SimDuration,
    /// Replaying one journal entry while a crashed node restarts from
    /// its persisted store.
    pub wal_replay_per_entry: SimDuration,
    /// Virtual time an in-doubt transaction (coordinator crashed
    /// between prepare and commit) waits before the presumed-abort
    /// recovery fires.
    pub in_doubt_timeout: SimDuration,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            base_invocation: SimDuration::from_micros(6_500),
            db_write: SimDuration::from_micros(6_500),
            db_read: SimDuration::from_micros(300),
            create_extra: SimDuration::from_micros(3_000),
            net_hop: SimDuration::from_micros(500),
            propagation_fixed: SimDuration::from_micros(28_000),
            propagation_per_extra_backup: SimDuration::from_micros(3_500),
            replication_interceptor: SimDuration::from_micros(2_000),
            ccm_interceptor: SimDuration::from_micros(450),
            constraint_check: SimDuration::from_micros(1_000),
            compiled_constraint_check: SimDuration::from_micros(120),
            verdict_cache_probe: SimDuration::from_micros(20),
            constraint_compile: SimDuration::from_micros(2_000),
            negotiation: SimDuration::from_micros(3_500),
            threat_new_fixed: SimDuration::from_micros(95_000),
            threat_link_fixed: SimDuration::from_micros(60_000),
            threat_scan_per_identity: SimDuration::from_micros(250),
            threat_dedup_read: SimDuration::from_micros(2_500),
            ship_retry_backoff: SimDuration::from_micros(1_000),
            wal_replay_per_entry: SimDuration::from_micros(350),
            in_doubt_timeout: SimDuration::from_micros(250_000),
        }
    }
}

impl CostModel {
    /// A zero-cost model for logic-only tests.
    pub fn free() -> Self {
        Self {
            base_invocation: SimDuration::ZERO,
            db_write: SimDuration::ZERO,
            db_read: SimDuration::ZERO,
            create_extra: SimDuration::ZERO,
            net_hop: SimDuration::ZERO,
            propagation_fixed: SimDuration::ZERO,
            propagation_per_extra_backup: SimDuration::ZERO,
            replication_interceptor: SimDuration::ZERO,
            ccm_interceptor: SimDuration::ZERO,
            constraint_check: SimDuration::ZERO,
            compiled_constraint_check: SimDuration::ZERO,
            verdict_cache_probe: SimDuration::ZERO,
            constraint_compile: SimDuration::ZERO,
            negotiation: SimDuration::ZERO,
            threat_new_fixed: SimDuration::ZERO,
            threat_link_fixed: SimDuration::ZERO,
            threat_scan_per_identity: SimDuration::ZERO,
            threat_dedup_read: SimDuration::ZERO,
            ship_retry_backoff: SimDuration::ZERO,
            wal_replay_per_entry: SimDuration::ZERO,
            in_doubt_timeout: SimDuration::ZERO,
        }
    }

    /// Total cost of one synchronous propagation round to `backups`
    /// recipients (zero recipients ⇒ zero cost).
    pub fn propagation(&self, backups: usize) -> SimDuration {
        if backups == 0 {
            return SimDuration::ZERO;
        }
        // Backups apply the update in parallel (§5.1): one backup's
        // database write bounds the round, plus a small serial fan-out
        // component per extra backup.
        self.propagation_fixed
            + self.net_hop * 2
            + self.db_write
            + self.propagation_per_extra_backup * (backups as u64 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_calibration_yields_paper_order_throughputs() {
        let c = CostModel::default();
        let per_sec = |d: SimDuration| 1.0 / d.as_secs_f64();
        // Empty ≈ 154/s, getter ≈ 147/s, setter ≈ 77/s, create ≈ 62/s.
        assert!((140.0..170.0).contains(&per_sec(c.base_invocation)));
        assert!((130.0..160.0).contains(&per_sec(c.base_invocation + c.db_read)));
        assert!((65.0..90.0).contains(&per_sec(c.base_invocation + c.db_write)));
        assert!((50.0..70.0).contains(&per_sec(c.base_invocation + c.db_write + c.create_extra)));
    }

    #[test]
    fn compiled_and_cached_checks_are_strictly_cheaper() {
        let c = CostModel::default();
        assert!(c.compiled_constraint_check < c.constraint_check);
        assert!(c.verdict_cache_probe < c.compiled_constraint_check);
    }

    #[test]
    fn propagation_scales_with_backups() {
        let c = CostModel::default();
        assert_eq!(c.propagation(0), SimDuration::ZERO);
        let one = c.propagation(1);
        let three = c.propagation(3);
        assert!(three > one);
        // Mostly parallel: 3 backups cost far less than 3× one backup.
        assert!(three.as_nanos() < 2 * one.as_nanos());
    }
}
