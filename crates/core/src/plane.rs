//! The deterministic request plane: admission control, priority
//! queues and deadline-based shedding in front of a [`Cluster`].
//!
//! Every client interaction so far called straight into the cluster;
//! under overload that means every request executes, critical or not,
//! and latency grows without bound. The [`RequestPlane`] puts the
//! classic dependability front-end from the paper's middleware stack
//! in between:
//!
//! * **Admission control** — one token bucket per node
//!   ([`PlaneConfig::refill_per_second`] / [`PlaneConfig::burst`]),
//!   refilled on the *virtual* clock. An empty bucket refuses the
//!   request at admission with [`Error::Overloaded`].
//! * **Priority queues** — per node, one bounded FIFO per
//!   [`PriorityClass`]. An arrival at the per-node bound displaces the
//!   newest queued strictly-lower-priority request (shed with cause
//!   `displaced`) or is rejected.
//! * **Deadline shedding** — expired work is dropped *before*
//!   execution, never after paying for it
//!   (`request_deadline_missed`).
//! * **Mode-coupled backpressure** — while the cluster is degraded,
//!   or the submitting node sits in a non-primary partition under a
//!   quorum policy, queued `Background` work is shed first
//!   ([`PlaneConfig::shed_background_when_degraded`]); partitions
//!   whose writes are refused outright
//!   ([`MinorityWriteHandling::Refuse`](dedisys_gms::MinorityWriteHandling))
//!   reject at admission with [`Error::NotPrimary`].
//!
//! Requests are closures over the [`Session`] API: the plane opens the
//! session on the request's node and the closure drives
//! invoke/commit/rollback itself. Dispatch is deterministic — strict
//! priority order, FIFO within a class, ties broken by global
//! admission sequence — so two same-seed runs produce byte-identical
//! traces. The plane reads [`Cluster::config`] live at every admission
//! and dispatch, so [`Cluster::reconfigure`] takes effect mid-run.

use crate::cluster::Cluster;
use crate::config::PlaneConfig;
use crate::session::Session;
use dedisys_telemetry::{AdmissionReject, InvocationOutcome, ShedCause, TraceEvent};
use dedisys_types::{Error, NodeId, PriorityClass, Result, SimDuration, SimTime, SystemMode};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// A queued unit of work: the closure receives an owned [`Session`] on
/// the request's node and drives commit/rollback itself.
pub type RequestWork = Box<dyn for<'a> FnOnce(Session<'a>) -> Result<()>>;

/// Token-bucket scaling: one token = `SCALE` bucket units, so refill
/// arithmetic stays in integers (floats would break determinism).
const SCALE: u64 = 1_000_000_000;

/// How admission treats the cluster's [`SystemMode`]. A routing layer
/// in front of several clusters (the federation router) sets
/// [`ModeGate::RejectUnlessHealthy`] on a shard's plane so admission
/// itself consults the target shard's mode instead of buffering work a
/// degraded shard would serve with threatened consistency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ModeGate {
    /// Mode never refuses at admission (the historical behaviour;
    /// degraded modes still shed `Background` work at dispatch).
    #[default]
    Admit,
    /// Any mode other than [`SystemMode::Healthy`] rejects at
    /// admission with [`Error::ModeRestriction`].
    RejectUnlessHealthy,
}

struct Queued {
    id: u64,
    /// Global admission sequence — the deterministic FIFO tiebreaker
    /// across nodes within one priority class.
    seq: u64,
    node: NodeId,
    class: PriorityClass,
    admitted_at: SimTime,
    deadline: Option<SimTime>,
    work: RequestWork,
}

struct NodeQueues {
    classes: [VecDeque<Queued>; 3],
    /// Bucket level in `SCALE` units of a token.
    bucket: u64,
    last_refill: SimTime,
}

impl NodeQueues {
    fn new(config: &PlaneConfig, now: SimTime) -> Self {
        Self {
            classes: [VecDeque::new(), VecDeque::new(), VecDeque::new()],
            bucket: u64::from(config.burst) * SCALE,
            last_refill: now,
        }
    }

    fn refill(&mut self, config: &PlaneConfig, now: SimTime) {
        let elapsed = now.since(self.last_refill).as_nanos();
        self.last_refill = now;
        // `refill_per_second` tokens over 1e9 ns, in `SCALE` (= 1e9)
        // units per token: the factors cancel to ns × tokens/s.
        let earned = u128::from(elapsed) * u128::from(config.refill_per_second);
        let cap = u128::from(config.burst) * u128::from(SCALE);
        self.bucket = (u128::from(self.bucket) + earned).min(cap) as u64;
    }

    fn depth(&self) -> u32 {
        self.classes.iter().map(|q| q.len() as u32).sum()
    }
}

/// Per-class admission/execution counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassCounters {
    /// Requests submitted (admitted or not).
    pub offered: u64,
    /// Requests that passed admission into a queue.
    pub admitted: u64,
    /// Requests refused at admission (bucket empty, queue full,
    /// non-primary partition).
    pub rejected: u64,
    /// Admitted requests that executed (successfully or not).
    pub completed: u64,
    /// Executed requests whose closure returned an error.
    pub failed: u64,
    /// Admitted requests dropped before execution (displacement or
    /// mode pressure).
    pub shed: u64,
    /// Admitted requests dropped because their deadline passed while
    /// queued.
    pub deadline_missed: u64,
}

impl ClassCounters {
    fn absorb(&mut self, other: &ClassCounters) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.completed += other.completed;
        self.failed += other.failed;
        self.shed += other.shed;
        self.deadline_missed += other.deadline_missed;
    }
}

/// The plane's counters, split by [`PriorityClass`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PlaneStats {
    /// Counters for [`PriorityClass::Critical`].
    pub critical: ClassCounters,
    /// Counters for [`PriorityClass::Normal`].
    pub normal: ClassCounters,
    /// Counters for [`PriorityClass::Background`].
    pub background: ClassCounters,
}

impl PlaneStats {
    /// The counters for `class`.
    pub fn class(&self, class: PriorityClass) -> &ClassCounters {
        match class {
            PriorityClass::Critical => &self.critical,
            PriorityClass::Normal => &self.normal,
            PriorityClass::Background => &self.background,
        }
    }

    fn class_mut(&mut self, class: PriorityClass) -> &mut ClassCounters {
        match class {
            PriorityClass::Critical => &mut self.critical,
            PriorityClass::Normal => &mut self.normal,
            PriorityClass::Background => &mut self.background,
        }
    }

    /// All classes summed.
    pub fn total(&self) -> ClassCounters {
        let mut t = ClassCounters::default();
        for class in PriorityClass::ALL {
            t.absorb(self.class(class));
        }
        t
    }

    /// The conservation invariant the chaos checker asserts:
    /// every offered request is accounted for —
    /// `offered == admitted + rejected` and
    /// `admitted == completed + shed + deadline_missed + queued`.
    pub fn conserves(&self, queued: u64) -> bool {
        let t = self.total();
        t.offered == t.admitted + t.rejected
            && t.admitted == t.completed + t.shed + t.deadline_missed + queued
    }
}

/// What [`RequestPlane::run_until_idle`] drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlaneReport {
    /// Dispatch steps taken (executions + sheds + deadline drops).
    pub steps: u64,
    /// Requests still queued afterwards (0 unless a queue was refilled
    /// concurrently — `run_until_idle` drains everything).
    pub queued: u64,
    /// Counter snapshot at completion.
    pub stats: PlaneStats,
}

/// The deterministic request plane in front of one [`Cluster`]. See
/// the module docs for the admission/dispatch contract.
///
/// The plane holds no clock or telemetry of its own — every operation
/// takes `&mut Cluster` and reads the shared virtual clock, the
/// telemetry bus and the live [`PlaneConfig`] from it.
#[derive(Default)]
pub struct RequestPlane {
    queues: BTreeMap<NodeId, NodeQueues>,
    next_id: u64,
    next_seq: u64,
    stats: PlaneStats,
    mode_gate: ModeGate,
}

impl std::fmt::Debug for RequestPlane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RequestPlane")
            .field("queued", &self.queued_total())
            .field("stats", &self.stats)
            .finish()
    }
}

impl RequestPlane {
    /// An empty plane.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters so far.
    pub fn stats(&self) -> &PlaneStats {
        &self.stats
    }

    /// Sets how admission treats the cluster's [`SystemMode`] (see
    /// [`ModeGate`]; default [`ModeGate::Admit`]).
    pub fn set_mode_gate(&mut self, gate: ModeGate) {
        self.mode_gate = gate;
    }

    /// The current admission mode gate.
    pub fn mode_gate(&self) -> ModeGate {
        self.mode_gate
    }

    /// Requests currently queued on `node`.
    pub fn queue_depth(&self, node: NodeId) -> u32 {
        self.queues.get(&node).map_or(0, NodeQueues::depth)
    }

    /// Requests currently queued across all nodes.
    pub fn queued_total(&self) -> u64 {
        self.queues.values().map(|q| u64::from(q.depth())).sum()
    }

    /// Whether the conservation invariant holds right now (see
    /// [`PlaneStats::conserves`]).
    pub fn conserves(&self) -> bool {
        self.stats.conserves(self.queued_total())
    }

    /// Submits `work` on `node` under `class` with the class's default
    /// deadline ([`PlaneConfig::default_deadline`]).
    ///
    /// # Errors
    ///
    /// * [`Error::NotPrimary`] — `node` is in a minority partition and
    ///   the cluster refuses minority writes at admission.
    /// * [`Error::Overloaded`] — the node's token bucket is empty, or
    ///   its queues are full and nothing lower-priority could be
    ///   displaced.
    pub fn submit(
        &mut self,
        cluster: &mut Cluster,
        node: NodeId,
        class: PriorityClass,
        work: impl for<'a> FnOnce(Session<'a>) -> Result<()> + 'static,
    ) -> Result<u64> {
        let deadline = cluster.config().plane.default_deadline(class);
        self.submit_with_deadline(cluster, node, class, deadline, work)
    }

    /// Submits `work` with an explicit relative deadline (`None`: no
    /// deadline), overriding the class default.
    ///
    /// # Errors
    ///
    /// As [`RequestPlane::submit`].
    pub fn submit_with_deadline(
        &mut self,
        cluster: &mut Cluster,
        node: NodeId,
        class: PriorityClass,
        deadline: Option<SimDuration>,
        work: impl for<'a> FnOnce(Session<'a>) -> Result<()> + 'static,
    ) -> Result<u64> {
        let config = cluster.config().plane;
        let now = cluster.clock().now();
        self.next_id += 1;
        let id = self.next_id;
        self.stats.class_mut(class).offered += 1;

        // The mode gate rejects for a non-healthy cluster before any
        // queueing — the federation router's RejectDegraded policy
        // surfaces the target shard's mode at admission time.
        if self.mode_gate == ModeGate::RejectUnlessHealthy && cluster.mode() != SystemMode::Healthy
        {
            let mode = cluster.mode();
            self.reject(cluster, id, node, class, AdmissionReject::Degraded);
            return Err(Error::ModeRestriction(format!(
                "admission refused: target cluster is {mode:?}"
            )));
        }

        // Refuse-mode partitions reject at admission — the queue never
        // buffers work the write path is guaranteed to throw away.
        if cluster.minority_writes() == dedisys_gms::MinorityWriteHandling::Refuse
            && cluster.primary_policy().is_quorum()
            && !cluster.is_primary(node)
        {
            let partition_size = cluster.topology().partition_of(node).len() as u32;
            self.reject(cluster, id, node, class, AdmissionReject::NotPrimary);
            return Err(Error::NotPrimary {
                node,
                partition_size,
            });
        }

        let entry = self
            .queues
            .entry(node)
            .or_insert_with(|| NodeQueues::new(&config, now));
        entry.refill(&config, now);
        if entry.bucket < SCALE {
            let depth = entry.depth();
            self.reject(cluster, id, node, class, AdmissionReject::Overloaded);
            return Err(Error::Overloaded { node, depth });
        }

        if entry.depth() >= config.queue_capacity {
            // Displace the newest queued request of the lowest class
            // strictly below the arrival — or reject.
            let victim_rank = (class.rank() + 1..PriorityClass::ALL.len())
                .rev()
                .find(|&r| !entry.classes[r].is_empty());
            match victim_rank {
                Some(r) => {
                    let victim = entry.classes[r].pop_back().expect("victim queue nonempty");
                    self.shed(cluster, victim, ShedCause::Displaced);
                }
                None => {
                    let depth = self.queues[&node].depth();
                    self.reject(cluster, id, node, class, AdmissionReject::QueueFull);
                    return Err(Error::Overloaded { node, depth });
                }
            }
        }

        let entry = self.queues.get_mut(&node).expect("queue entry just made");
        entry.bucket -= SCALE;
        self.next_seq += 1;
        entry.classes[class.rank()].push_back(Queued {
            id,
            seq: self.next_seq,
            node,
            class,
            admitted_at: now,
            deadline: deadline.map(|d| now + d),
            work: Box::new(work),
        });
        let depth = entry.depth();
        self.stats.class_mut(class).admitted += 1;
        let telemetry = cluster.telemetry();
        telemetry.metrics().incr("plane.admitted");
        telemetry.metrics().incr(admit_metric(class));
        telemetry.metrics().observe(
            depth_metric(class),
            SimDuration::from_nanos(u64::from(depth)),
        );
        telemetry.emit(|| TraceEvent::RequestAdmitted {
            request: id,
            node,
            class,
            depth,
        });
        Ok(id)
    }

    /// Takes one deterministic dispatch action: sheds one queued
    /// `Background` request under mode pressure, drops one expired
    /// request, or executes the highest-priority oldest request.
    /// Returns `false` when every queue is empty.
    pub fn step(&mut self, cluster: &mut Cluster) -> bool {
        let config = cluster.config().plane;
        // Backpressure coupled to the system mode: degraded or
        // non-primary nodes drain Background work without running it.
        if config.shed_background_when_degraded {
            let degraded = cluster.mode() != SystemMode::Healthy;
            let quorum = cluster.primary_policy().is_quorum();
            let pressured = self
                .queues
                .iter()
                .find(|(node, q)| {
                    !q.classes[PriorityClass::Background.rank()].is_empty()
                        && (degraded || (quorum && !cluster.is_primary(**node)))
                })
                .map(|(node, _)| *node);
            if let Some(node) = pressured {
                let victim = self.queues.get_mut(&node).expect("node just found").classes
                    [PriorityClass::Background.rank()]
                .pop_front()
                .expect("background queue nonempty");
                self.shed(cluster, victim, ShedCause::ModePressure);
                return true;
            }
        }

        // Strict priority, FIFO within a class, admission sequence as
        // the cross-node tiebreaker: the unique minimal (rank, seq).
        let next = self
            .queues
            .iter()
            .flat_map(|(node, q)| {
                q.classes
                    .iter()
                    .enumerate()
                    .filter_map(|(rank, queue)| queue.front().map(|h| ((rank, h.seq), *node)))
            })
            .min();
        let Some(((rank, _), node)) = next else {
            return false;
        };
        let request = self
            .queues
            .get_mut(&node)
            .expect("selected node exists")
            .classes[rank]
            .pop_front()
            .expect("selected queue nonempty");

        let now = cluster.clock().now();
        if request.deadline.is_some_and(|d| d < now) {
            let waited = now.since(request.admitted_at);
            self.stats.class_mut(request.class).deadline_missed += 1;
            let telemetry = cluster.telemetry();
            telemetry.metrics().incr("plane.deadline_missed");
            let (id, class) = (request.id, request.class);
            telemetry.emit(move || TraceEvent::RequestDeadlineMissed {
                request: id,
                node,
                class,
                waited_ns: waited.as_nanos(),
            });
            return true;
        }

        let Queued {
            id,
            class,
            admitted_at,
            work,
            ..
        } = request;
        let session = cluster.session(node);
        let result = work(session);
        let finished = cluster.clock().now();
        let queued_ns = now.since(admitted_at).as_nanos();
        let service_ns = finished.since(now).as_nanos();
        let outcome = match result {
            Ok(()) => InvocationOutcome::Ok,
            Err(_) => InvocationOutcome::Failed,
        };
        let counters = self.stats.class_mut(class);
        counters.completed += 1;
        if outcome == InvocationOutcome::Failed {
            counters.failed += 1;
        }
        let telemetry = cluster.telemetry();
        telemetry.metrics().incr("plane.completed");
        telemetry
            .metrics()
            .observe(latency_metric(class), finished.since(admitted_at));
        telemetry
            .metrics()
            .observe(service_metric(class), SimDuration::from_nanos(service_ns));
        telemetry.emit(move || TraceEvent::RequestCompleted {
            request: id,
            node,
            class,
            outcome,
            queued_ns,
            service_ns,
        });
        true
    }

    /// Dispatches until every queue is empty, polling the failure
    /// detector between steps when the membership pipeline is enabled
    /// — plane traffic and detector events interleave on the one
    /// virtual clock.
    pub fn run_until_idle(&mut self, cluster: &mut Cluster) -> PlaneReport {
        let mut steps = 0u64;
        loop {
            if cluster.detector_enabled() {
                cluster.poll_detector();
            }
            if !self.step(cluster) {
                break;
            }
            steps += 1;
        }
        PlaneReport {
            steps,
            queued: self.queued_total(),
            stats: self.stats,
        }
    }

    fn reject(
        &mut self,
        cluster: &Cluster,
        id: u64,
        node: NodeId,
        class: PriorityClass,
        reason: AdmissionReject,
    ) {
        self.stats.class_mut(class).rejected += 1;
        let telemetry = cluster.telemetry();
        telemetry.metrics().incr("plane.rejected");
        telemetry.emit(move || TraceEvent::RequestRejected {
            request: id,
            node,
            class,
            reason,
        });
    }

    fn shed(&mut self, cluster: &Cluster, victim: Queued, cause: ShedCause) {
        self.stats.class_mut(victim.class).shed += 1;
        let telemetry = cluster.telemetry();
        telemetry.metrics().incr("plane.shed");
        let (id, node, class) = (victim.id, victim.node, victim.class);
        telemetry.emit(move || TraceEvent::RequestShed {
            request: id,
            node,
            class,
            cause,
        });
    }
}

fn admit_metric(class: PriorityClass) -> &'static str {
    match class {
        PriorityClass::Critical => "plane.admitted.critical",
        PriorityClass::Normal => "plane.admitted.normal",
        PriorityClass::Background => "plane.admitted.background",
    }
}

fn depth_metric(class: PriorityClass) -> &'static str {
    match class {
        PriorityClass::Critical => "plane.queue_depth.critical",
        PriorityClass::Normal => "plane.queue_depth.normal",
        PriorityClass::Background => "plane.queue_depth.background",
    }
}

fn latency_metric(class: PriorityClass) -> &'static str {
    match class {
        PriorityClass::Critical => "plane.latency.critical",
        PriorityClass::Normal => "plane.latency.normal",
        PriorityClass::Background => "plane.latency.background",
    }
}

fn service_metric(class: PriorityClass) -> &'static str {
    match class {
        PriorityClass::Critical => "plane.service.critical",
        PriorityClass::Normal => "plane.service.normal",
        PriorityClass::Background => "plane.service.background",
    }
}
