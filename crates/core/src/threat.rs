//! Consistency threats and the persistent threat store (§3.2.2).

use dedisys_types::{ConstraintName, ObjectId, SatisfactionDegree, SimTime, TxId, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Reconciliation instructions attached to an accepted threat
/// (§3.2.2): whether rollback may be used, and whether the application
/// wants to hear about replica conflicts even when the constraint turns
/// out satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ReconcileInstructions {
    /// Allow rollback to historical states during reconciliation.
    pub allow_rollback: bool,
    /// Notify the application if a replica conflict touched the
    /// threat's objects even though the constraint is satisfied (§3.3).
    pub notify_on_replica_conflict: bool,
}

/// An accepted consistency threat, persisted for re-evaluation during
/// the reconciliation phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyThreat {
    /// The threatened constraint.
    pub constraint: ConstraintName,
    /// The context object validation starts from (`None` for
    /// query-based constraints — §3.2.2 case 2).
    pub context_object: Option<ObjectId>,
    /// The satisfaction degree observed when the threat arose.
    pub degree: SatisfactionDegree,
    /// Objects accessed by the threatened validation.
    pub affected_objects: BTreeSet<ObjectId>,
    /// Application-specific data associated with the threat.
    pub app_data: Option<Value>,
    /// Reconciliation instructions.
    pub instructions: ReconcileInstructions,
    /// Virtual time the threat occurred.
    pub occurred_at: SimTime,
    /// The transaction that produced the threat.
    pub tx: TxId,
}

impl ConsistencyThreat {
    /// The identity of a threat (§3.2.2): two threats are identical if
    /// they refer to the same constraint and — if applicable — the same
    /// context object.
    pub fn identity(&self) -> ThreatIdentity {
        ThreatIdentity {
            constraint: self.constraint.clone(),
            context_object: self.context_object.clone(),
        }
    }
}

/// Threat identity: `(constraint, context object)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ThreatIdentity {
    /// Constraint name.
    pub constraint: ConstraintName,
    /// Optional context object.
    pub context_object: Option<ObjectId>,
}

/// Threat-history policy (§3.2.2 / §5.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HistoryPolicy {
    /// Store identical threats only once (sufficient when rollback to
    /// intermediate states is not required) — the fig5-8 improvement.
    #[default]
    IdenticalOnce,
    /// Store every occurrence (needed for rollback/undo to
    /// intermediate states).
    FullHistory,
    /// Store every occurrence, but fold identical records together
    /// *during* degraded mode ([`ThreatStore::compact`]) so the heal-time
    /// reconciliation ships one folded record per identity instead of
    /// the full occurrence history (§5.5.1 reduced-history proposal).
    Reduced,
}

/// Outcome of storing a threat — drives the persistence cost charged
/// by the cluster (§5.1: a threat initially needs ≥3 database objects,
/// plus 2 per additional identical threat under full history).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreOutcome {
    /// First occurrence: full record persisted.
    Stored,
    /// Identical threat under [`HistoryPolicy::FullHistory`]:
    /// additional occurrence persisted and linked.
    LinkedOccurrence,
    /// Identical threat under [`HistoryPolicy::IdenticalOnce`]: only a
    /// read was needed to detect the duplicate.
    Deduplicated,
}

/// The persistent store of accepted consistency threats (§3.2.2:
/// accepted threats are *persistently* stored by the middleware and
/// processed again during the reconciliation phase).
///
/// Records are durably written through a write-ahead-logged table
/// store (`dedisys-store`); [`ThreatStore::recover`] rebuilds the
/// in-memory index after a simulated crash.
#[derive(Debug, Clone, Default)]
pub struct ThreatStore {
    policy: HistoryPolicy,
    threats: Vec<ConsistencyThreat>,
    /// Secondary index: object → identities of threats touching it
    /// (context object and every affected object). Maintained on every
    /// insert/removal so incremental reconciliation can map a dirty
    /// object set to the threats that need re-evaluation without a
    /// full scan.
    object_index: BTreeMap<ObjectId, BTreeSet<ThreatIdentity>>,
    /// Distinct identities in first-occurrence order, maintained
    /// incrementally (replaces the former O(n²) scan).
    identity_order: Vec<ThreatIdentity>,
    table: dedisys_store::TableStore,
    wal: dedisys_store::WriteAheadLog,
    next_record: u64,
}

/// Result of folding duplicate threat records under
/// [`HistoryPolicy::Reduced`] ([`ThreatStore::compact`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionReport {
    /// Duplicate records removed (folded into their first occurrence).
    pub folded: u64,
    /// Identities whose histories were folded.
    pub retained: u64,
}

/// Table name of the persisted threat records.
const THREAT_TABLE: &str = "consistency_threats";

impl ThreatStore {
    /// Creates a store with the given policy.
    pub fn new(policy: HistoryPolicy) -> Self {
        Self {
            policy,
            threats: Vec::new(),
            object_index: BTreeMap::new(),
            identity_order: Vec::new(),
            table: dedisys_store::TableStore::new(),
            wal: dedisys_store::WriteAheadLog::new(),
            next_record: 0,
        }
    }

    /// The history policy.
    pub fn policy(&self) -> HistoryPolicy {
        self.policy
    }

    /// Stores an accepted threat per the policy.
    pub fn store(&mut self, threat: ConsistencyThreat) -> StoreOutcome {
        let identity = threat.identity();
        let exists = self.identity_order.contains(&identity);
        match (exists, self.policy) {
            (false, _) => {
                self.persist(&threat);
                self.index_threat(&threat);
                self.identity_order.push(identity);
                self.threats.push(threat);
                StoreOutcome::Stored
            }
            (true, HistoryPolicy::FullHistory) | (true, HistoryPolicy::Reduced) => {
                self.persist(&threat);
                self.index_threat(&threat);
                self.threats.push(threat);
                StoreOutcome::LinkedOccurrence
            }
            (true, HistoryPolicy::IdenticalOnce) => StoreOutcome::Deduplicated,
        }
    }

    /// Adds `threat`'s objects to the secondary object index.
    fn index_threat(&mut self, threat: &ConsistencyThreat) {
        let identity = threat.identity();
        if let Some(ctx) = &threat.context_object {
            self.object_index
                .entry(ctx.clone())
                .or_default()
                .insert(identity.clone());
        }
        for obj in &threat.affected_objects {
            self.object_index
                .entry(obj.clone())
                .or_default()
                .insert(identity.clone());
        }
    }

    /// Drops `identity` from the secondary object index.
    fn unindex_identity(&mut self, identity: &ThreatIdentity) {
        self.object_index.retain(|_, ids| {
            ids.remove(identity);
            !ids.is_empty()
        });
    }

    /// Rebuilds the derived indexes from `threats` (recovery path).
    fn rebuild_indexes(&mut self) {
        self.object_index.clear();
        self.identity_order.clear();
        let threats = std::mem::take(&mut self.threats);
        for threat in &threats {
            let identity = threat.identity();
            if !self.identity_order.contains(&identity) {
                self.identity_order.push(identity);
            }
            self.index_threat(threat);
        }
        self.threats = threats;
    }

    fn persist(&mut self, threat: &ConsistencyThreat) {
        if let Ok(json) = serde_json::to_string(threat) {
            let key = format!(
                "{:08}|{}",
                self.next_record,
                storage_key(&threat.identity())
            );
            self.next_record += 1;
            self.wal.append_put(THREAT_TABLE, &key, json.clone());
            self.table.put(THREAT_TABLE, key, json);
        }
    }

    /// Number of durably persisted records (should equal
    /// [`ThreatStore::len`]).
    pub fn persisted_records(&self) -> usize {
        self.table.table_len(THREAT_TABLE)
    }

    /// Simulates a middleware crash: drops the in-memory index and the
    /// table, replays the write-ahead log and deserializes the
    /// surviving records. Returns how many threats were recovered.
    pub fn recover(&mut self) -> usize {
        self.threats.clear();
        self.table = dedisys_store::TableStore::new();
        self.wal.replay_into(&mut self.table);
        let mut rows: Vec<(String, String)> = self
            .table
            .scan(THREAT_TABLE)
            .map(|(k, v)| (k.to_owned(), v.to_owned()))
            .collect();
        rows.sort();
        for (_, json) in rows {
            if let Ok(threat) = serde_json::from_str::<ConsistencyThreat>(&json) {
                self.threats.push(threat);
            }
        }
        self.rebuild_indexes();
        self.threats.len()
    }

    /// All stored threats, in occurrence order.
    pub fn threats(&self) -> &[ConsistencyThreat] {
        &self.threats
    }

    /// Distinct threat identities, in first-occurrence order
    /// (identical threats re-evaluate identically, §5.2, so
    /// reconciliation iterates identities). Served from the maintained
    /// order index — O(identities), not O(records²).
    pub fn identities(&self) -> Vec<ThreatIdentity> {
        self.identity_order.clone()
    }

    /// Number of distinct identities, without materialising them.
    pub fn identity_count(&self) -> usize {
        self.identity_order.len()
    }

    /// Identities of threats touching `object` (as context object or
    /// affected object), from the secondary index.
    pub fn identities_for_object(&self, object: &ObjectId) -> Option<&BTreeSet<ThreatIdentity>> {
        self.object_index.get(object)
    }

    /// Union of identities touching any object of `objects` — the
    /// entry point of incremental reconciliation: map a dirty object
    /// set to the threats that need re-evaluation.
    pub fn identities_touching<'a>(
        &self,
        objects: impl IntoIterator<Item = &'a ObjectId>,
    ) -> BTreeSet<ThreatIdentity> {
        let mut out = BTreeSet::new();
        for obj in objects {
            if let Some(ids) = self.object_index.get(obj) {
                out.extend(ids.iter().cloned());
            }
        }
        out
    }

    /// Every object touched by threats of `identity` (context object
    /// plus affected objects, across all stored occurrences).
    pub fn objects_of(&self, identity: &ThreatIdentity) -> BTreeSet<ObjectId> {
        let mut out = BTreeSet::new();
        for t in self.threats.iter().filter(|t| &t.identity() == identity) {
            if let Some(ctx) = &t.context_object {
                out.insert(ctx.clone());
            }
            out.extend(t.affected_objects.iter().cloned());
        }
        out
    }

    /// Records beyond the first occurrence of their identity
    /// (compaction candidates under [`HistoryPolicy::Reduced`]).
    pub fn duplicate_records(&self) -> usize {
        self.threats.len() - self.identity_order.len()
    }

    /// Folds duplicate records of each identity into the first
    /// occurrence: affected objects are unioned and the reconciliation
    /// instructions OR-ed so no rollback permission or notification
    /// request is lost; the surviving persisted record is rewritten and
    /// the duplicates durably deleted. Intended for
    /// [`HistoryPolicy::Reduced`] during degraded mode, so heal-time
    /// reconciliation ships one record per identity (§5.5.1).
    pub fn compact(&mut self) -> CompactionReport {
        let mut report = CompactionReport::default();
        for identity in self.identity_order.clone() {
            let indices: Vec<usize> = self
                .threats
                .iter()
                .enumerate()
                .filter(|(_, t)| t.identity() == identity)
                .map(|(i, _)| i)
                .collect();
            if indices.len() < 2 {
                continue;
            }
            report.retained += 1;
            report.folded += (indices.len() - 1) as u64;

            let mut merged_objects = BTreeSet::new();
            let mut allow_rollback = false;
            let mut notify = false;
            for &i in &indices {
                merged_objects.extend(self.threats[i].affected_objects.iter().cloned());
                allow_rollback |= self.threats[i].instructions.allow_rollback;
                notify |= self.threats[i].instructions.notify_on_replica_conflict;
            }
            let first = indices[0];
            self.threats[first].affected_objects = merged_objects;
            self.threats[first].instructions.allow_rollback = allow_rollback;
            self.threats[first].instructions.notify_on_replica_conflict = notify;
            let folded = self.threats[first].clone();

            // Drop every occurrence beyond the first from memory.
            let mut kept_first = false;
            self.threats.retain(|t| {
                if t.identity() == identity {
                    if kept_first {
                        false
                    } else {
                        kept_first = true;
                        true
                    }
                } else {
                    true
                }
            });

            // Durably delete the duplicates and rewrite the survivor
            // with the folded record.
            let suffix = format!("|{}", storage_key(&identity));
            let keys: Vec<String> = self
                .table
                .scan(THREAT_TABLE)
                .filter(|(k, _)| k.ends_with(&suffix))
                .map(|(k, _)| k.to_owned())
                .collect();
            if let Some((first_key, rest)) = keys.split_first() {
                for key in rest {
                    self.wal.append_delete(THREAT_TABLE, key);
                    self.table.delete(THREAT_TABLE, key);
                }
                if let Ok(json) = serde_json::to_string(&folded) {
                    self.wal.append_put(THREAT_TABLE, first_key, json.clone());
                    self.table.put(THREAT_TABLE, first_key.clone(), json);
                }
            }
        }
        report
    }

    /// The first stored threat with `identity`.
    pub fn first_of(&self, identity: &ThreatIdentity) -> Option<&ConsistencyThreat> {
        self.threats.iter().find(|t| &t.identity() == identity)
    }

    /// Whether any stored threat of `identity` allows rollback.
    pub fn any_allows_rollback(&self, identity: &ThreatIdentity) -> bool {
        self.threats
            .iter()
            .filter(|t| &t.identity() == identity)
            .any(|t| t.instructions.allow_rollback)
    }

    /// Whether any stored threat of `identity` requests conflict
    /// notification.
    pub fn any_wants_conflict_notification(&self, identity: &ThreatIdentity) -> bool {
        self.threats
            .iter()
            .filter(|t| &t.identity() == identity)
            .any(|t| t.instructions.notify_on_replica_conflict)
    }

    /// Removes the threat *and all identical threats* (§3.3), returning
    /// how many records were dropped. The persisted records are
    /// deleted through the write-ahead log as well.
    pub fn remove_identity(&mut self, identity: &ThreatIdentity) -> usize {
        let before = self.threats.len();
        self.threats.retain(|t| &t.identity() != identity);
        self.identity_order.retain(|id| id != identity);
        self.unindex_identity(identity);
        let suffix = format!("|{}", storage_key(identity));
        let keys: Vec<String> = self
            .table
            .scan(THREAT_TABLE)
            .filter(|(k, _)| k.ends_with(&suffix))
            .map(|(k, _)| k.to_owned())
            .collect();
        for key in keys {
            self.wal.append_delete(THREAT_TABLE, &key);
            self.table.delete(THREAT_TABLE, &key);
        }
        before - self.threats.len()
    }

    /// Number of stored threat records.
    pub fn len(&self) -> usize {
        self.threats.len()
    }

    /// Whether no threats are stored.
    pub fn is_empty(&self) -> bool {
        self.threats.is_empty()
    }

    /// Drops everything (test support).
    pub fn clear(&mut self) {
        self.threats.clear();
        self.object_index.clear();
        self.identity_order.clear();
        self.table.clear_table(THREAT_TABLE);
    }
}

/// Stable storage key of a threat identity.
fn storage_key(identity: &ThreatIdentity) -> String {
    match &identity.context_object {
        Some(ctx) => format!("{}@{ctx}", identity.constraint),
        None => identity.constraint.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_types::NodeId;

    fn threat(constraint: &str, key: &str) -> ConsistencyThreat {
        ConsistencyThreat {
            constraint: ConstraintName::from(constraint),
            context_object: Some(ObjectId::new("Flight", key)),
            degree: SatisfactionDegree::PossiblySatisfied,
            affected_objects: BTreeSet::new(),
            app_data: None,
            instructions: ReconcileInstructions::default(),
            occurred_at: SimTime::ZERO,
            tx: TxId::new(NodeId(0), 1),
        }
    }

    #[test]
    fn identical_once_deduplicates() {
        let mut store = ThreatStore::new(HistoryPolicy::IdenticalOnce);
        assert_eq!(store.store(threat("C", "F1")), StoreOutcome::Stored);
        assert_eq!(store.store(threat("C", "F1")), StoreOutcome::Deduplicated);
        assert_eq!(store.store(threat("C", "F2")), StoreOutcome::Stored);
        assert_eq!(store.len(), 2);
        assert_eq!(store.identities().len(), 2);
    }

    #[test]
    fn full_history_links_occurrences() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        assert_eq!(store.store(threat("C", "F1")), StoreOutcome::Stored);
        assert_eq!(
            store.store(threat("C", "F1")),
            StoreOutcome::LinkedOccurrence
        );
        assert_eq!(store.len(), 2);
        assert_eq!(store.identities().len(), 1);
    }

    #[test]
    fn remove_identity_drops_all_identical() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        store.store(threat("C", "F1"));
        store.store(threat("C", "F1"));
        store.store(threat("C", "F2"));
        let removed = store.remove_identity(&threat("C", "F1").identity());
        assert_eq!(removed, 2);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn instruction_aggregation_across_identical_threats() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        store.store(threat("C", "F1"));
        let mut t = threat("C", "F1");
        t.instructions.allow_rollback = true;
        store.store(t);
        assert!(store.any_allows_rollback(&threat("C", "F1").identity()));
        assert!(!store.any_wants_conflict_notification(&threat("C", "F1").identity()));
    }

    #[test]
    fn query_based_threats_share_identity_by_constraint() {
        let mut store = ThreatStore::new(HistoryPolicy::IdenticalOnce);
        let mut a = threat("Q", "x");
        a.context_object = None;
        let mut b = threat("Q", "y");
        b.context_object = None;
        store.store(a);
        assert_eq!(store.store(b), StoreOutcome::Deduplicated);
    }

    #[test]
    fn threats_serialize() {
        let t = threat("C", "F1");
        let json = serde_json::to_string(&t).unwrap();
        let back: ConsistencyThreat = serde_json::from_str(&json).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn threats_survive_a_crash_via_the_wal() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        store.store(threat("C", "F1"));
        store.store(threat("C", "F1"));
        store.store(threat("D", "F2"));
        assert_eq!(store.persisted_records(), 3);
        let recovered = store.recover();
        assert_eq!(recovered, 3);
        assert_eq!(store.len(), 3);
        assert_eq!(store.identities().len(), 2);
        assert_eq!(
            store
                .first_of(&threat("C", "F1").identity())
                .unwrap()
                .constraint,
            ConstraintName::from("C")
        );
    }

    #[test]
    fn removal_is_durable() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        store.store(threat("C", "F1"));
        store.store(threat("C", "F1"));
        store.store(threat("D", "F2"));
        store.remove_identity(&threat("C", "F1").identity());
        assert_eq!(store.persisted_records(), 1);
        store.recover();
        assert_eq!(store.len(), 1);
        assert_eq!(store.threats()[0].constraint, ConstraintName::from("D"));
    }

    #[test]
    fn object_index_tracks_inserts_and_removals() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        let mut a = threat("C", "F1");
        a.affected_objects.insert(ObjectId::new("Seat", "S1"));
        store.store(a);
        store.store(threat("D", "F1"));
        let f1 = ObjectId::new("Flight", "F1");
        let s1 = ObjectId::new("Seat", "S1");
        assert_eq!(store.identities_for_object(&f1).map(BTreeSet::len), Some(2));
        assert_eq!(store.identities_for_object(&s1).map(BTreeSet::len), Some(1));
        let touched = store.identities_touching([&s1]);
        assert_eq!(touched.len(), 1);
        assert!(touched
            .iter()
            .all(|id| id.constraint == ConstraintName::from("C")));
        assert_eq!(store.objects_of(&threat("C", "F1").identity()).len(), 2);

        store.remove_identity(&threat("C", "F1").identity());
        assert!(store.identities_for_object(&s1).is_none());
        assert_eq!(store.identities_for_object(&f1).map(BTreeSet::len), Some(1));
        assert_eq!(store.identity_count(), 1);
    }

    #[test]
    fn recovery_rebuilds_the_object_index() {
        let mut store = ThreatStore::new(HistoryPolicy::FullHistory);
        let mut a = threat("C", "F1");
        a.affected_objects.insert(ObjectId::new("Seat", "S1"));
        store.store(a);
        store.store(threat("D", "F2"));
        store.recover();
        assert_eq!(store.identity_count(), 2);
        assert_eq!(
            store
                .identities_for_object(&ObjectId::new("Seat", "S1"))
                .map(BTreeSet::len),
            Some(1)
        );
        assert_eq!(store.identities()[0].constraint, ConstraintName::from("C"));
    }

    #[test]
    fn compaction_folds_duplicates_preserving_first_occurrence() {
        let mut store = ThreatStore::new(HistoryPolicy::Reduced);
        let mut first = threat("C", "F1");
        first.affected_objects.insert(ObjectId::new("Seat", "S1"));
        first.occurred_at = SimTime::ZERO;
        store.store(first);
        let mut second = threat("C", "F1");
        second.affected_objects.insert(ObjectId::new("Seat", "S2"));
        second.instructions.allow_rollback = true;
        store.store(second);
        let mut third = threat("C", "F1");
        third.instructions.notify_on_replica_conflict = true;
        assert_eq!(store.store(third), StoreOutcome::LinkedOccurrence);
        store.store(threat("D", "F2"));
        assert_eq!(store.len(), 4);
        assert_eq!(store.duplicate_records(), 2);

        let report = store.compact();
        assert_eq!(report.folded, 2);
        assert_eq!(report.retained, 1);
        assert_eq!(store.len(), 2);
        assert_eq!(store.duplicate_records(), 0);
        assert_eq!(store.persisted_records(), 2);

        // The survivor is the first occurrence, carrying the union of
        // affected objects and the OR of the instruction flags.
        let folded = store.first_of(&threat("C", "F1").identity()).unwrap();
        assert_eq!(folded.occurred_at, SimTime::ZERO);
        assert_eq!(folded.tx, TxId::new(NodeId(0), 1));
        assert_eq!(folded.affected_objects.len(), 2);
        assert!(folded.instructions.allow_rollback);
        assert!(folded.instructions.notify_on_replica_conflict);
        assert!(store.any_allows_rollback(&threat("C", "F1").identity()));
        assert!(store.any_wants_conflict_notification(&threat("C", "F1").identity()));

        // The folded record is durable: a crash recovers it unchanged.
        store.recover();
        assert_eq!(store.len(), 2);
        let folded = store.first_of(&threat("C", "F1").identity()).unwrap();
        assert_eq!(folded.affected_objects.len(), 2);
        assert!(folded.instructions.allow_rollback);
        assert!(folded.instructions.notify_on_replica_conflict);
    }

    #[test]
    fn compaction_is_a_noop_without_duplicates() {
        let mut store = ThreatStore::new(HistoryPolicy::Reduced);
        store.store(threat("C", "F1"));
        store.store(threat("D", "F2"));
        let report = store.compact();
        assert_eq!(report, CompactionReport::default());
        assert_eq!(store.len(), 2);
        assert_eq!(store.persisted_records(), 2);
    }

    #[test]
    fn dedup_does_not_write_additional_records() {
        let mut store = ThreatStore::new(HistoryPolicy::IdenticalOnce);
        store.store(threat("C", "F1"));
        store.store(threat("C", "F1"));
        assert_eq!(store.persisted_records(), 1);
    }
}
