//! The reconciliation phase (§3.3, §4.4, Figure 4.6).
//!
//! Two steps: the replication service first re-establishes replica
//! consistency (missed-update propagation, write-write conflict
//! resolution via the replica-consistency handler), then the CCMgr
//! re-evaluates accepted consistency threats and — for actual
//! violations — runs the rollback search and/or the application's
//! constraint-reconciliation handler, which may resolve immediately or
//! defer (§4.4).

use crate::batch::{self, BatchCandidate};
use crate::ccm::{RawEvaluation, ReplicaAccess};
use crate::cluster::Cluster;
use crate::threat::{ConsistencyThreat, ThreatIdentity};
use dedisys_object::EntityState;
use dedisys_replication::{ReconcileReport, ReplicaConflict, ReplicaConsistencyHandler};
use dedisys_telemetry::{TraceEvent, TransitionCause};
use dedisys_types::{
    Error, NodeId, ObjectId, Result, SatisfactionDegree, SimDuration, SystemMode, TxId, Value,
};
use std::collections::BTreeMap;

/// A constraint violation detected during reconciliation.
#[derive(Debug, Clone)]
pub struct ViolationReport {
    /// The violated constraint + context object.
    pub identity: ThreatIdentity,
    /// The first stored threat record (carries app data and
    /// instructions).
    pub threat: ConsistencyThreat,
}

/// Direct repair operations offered to the reconciliation handler.
///
/// Writes bypass transactions and apply cluster-wide (the system is
/// re-unified at this point); they model the compensating actions of
/// the roll-forward approach (§5.2).
pub struct ReconOps<'a> {
    containers: &'a mut [dedisys_object::EntityContainer],
    clock: &'a dedisys_net::SimClock,
    costs: &'a crate::CostModel,
    node_count: u32,
}

impl ReconOps<'_> {
    /// Reads a field of `id`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if no node holds the object.
    pub fn read(&mut self, id: &ObjectId, field: &str) -> Result<Value> {
        self.clock.advance(self.costs.db_read);
        self.containers
            .iter()
            .find_map(|c| c.committed_entity(id))
            .map(|e| e.field(field).clone())
            .ok_or_else(|| Error::ObjectNotFound(id.clone()))
    }

    /// Writes a field of `id` on every node holding it.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ObjectNotFound`] if no node holds the object.
    pub fn write(&mut self, id: &ObjectId, field: &str, value: Value) -> Result<()> {
        self.clock.advance(self.costs.db_write);
        self.clock.advance(
            self.costs
                .propagation(self.node_count.saturating_sub(1) as usize),
        );
        let mut state = self
            .containers
            .iter()
            .find_map(|c| c.committed_entity(id))
            .cloned()
            .ok_or_else(|| Error::ObjectNotFound(id.clone()))?;
        state.set_field(field, value, self.clock.now());
        for c in self.containers.iter_mut() {
            if c.committed_entity(id).is_some() {
                c.install_committed(state.clone());
            }
        }
        Ok(())
    }

    /// Deletes `id` on every node (a compensating cancellation).
    pub fn delete(&mut self, id: &ObjectId) {
        self.clock.advance(self.costs.db_write);
        for c in self.containers.iter_mut() {
            c.remove_committed(id);
        }
    }
}

/// The application's constraint-reconciliation callback (Figure 4.6).
pub trait ConstraintReconciliationHandler {
    /// Called for each violated constraint. Return `true` when the
    /// violation has been cleaned up immediately (the CCMgr re-validates
    /// and removes the threat); return `false` to defer — the
    /// middleware keeps the threat and later business operations that
    /// satisfy the constraint clean it up (§4.4).
    fn reconcile(&mut self, violation: &ViolationReport, ops: &mut ReconOps<'_>) -> bool;

    /// Notification that a replica conflict touched the objects of a
    /// threat whose constraint turned out *satisfied* (§3.3), requested
    /// via [`crate::ReconcileInstructions::notify_on_replica_conflict`].
    fn on_replica_conflict(&mut self, identity: &ThreatIdentity, conflict: &ReplicaConflict) {
        let _ = (identity, conflict);
    }
}

/// A handler that defers every violation (pure asynchronous
/// reconciliation — the usual case per §5.4).
#[derive(Debug, Clone, Copy, Default)]
pub struct DeferAll;

impl ConstraintReconciliationHandler for DeferAll {
    fn reconcile(&mut self, _violation: &ViolationReport, _ops: &mut ReconOps<'_>) -> bool {
        false
    }
}

impl<F> ConstraintReconciliationHandler for F
where
    F: FnMut(&ViolationReport, &mut ReconOps<'_>) -> bool,
{
    fn reconcile(&mut self, violation: &ViolationReport, ops: &mut ReconOps<'_>) -> bool {
        self(violation, ops)
    }
}

/// How constraint reconciliation selects the threats to re-evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReconcileStrategy {
    /// Re-evaluate every stored threat identity — the dissertation's
    /// baseline, whose cost grows with the total threat volume
    /// (Figure 5.6).
    FullScan,
    /// Object-indexed incremental engine (§5.5.1): re-evaluate only
    /// threats whose objects are in the replica-reconciliation dirty
    /// set or became fully checkable; postpone the rest without a
    /// database read. Outcome-equivalent to [`ReconcileStrategy::FullScan`]
    /// (skipped threats would re-validate to a threat degree anyway).
    #[default]
    Incremental,
}

/// Outcome counters of the constraint-reconciliation step.
///
/// Invariants (enforced by a debug assertion and the property tests):
/// `violations == resolved_by_rollback + resolved_by_handler + deferred`
/// and `skipped <= postponed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConstraintReconcileReport {
    /// Distinct threat identities re-evaluated.
    pub re_evaluated: usize,
    /// Threats whose constraints were satisfied (removed).
    pub satisfied_removed: usize,
    /// Actual violations detected.
    pub violations: usize,
    /// Violations resolved by rollback to a historical state.
    pub resolved_by_rollback: usize,
    /// Violations resolved immediately by the handler.
    pub resolved_by_handler: usize,
    /// Violations deferred to later application-driven cleanup.
    pub deferred: usize,
    /// Threats still threatened (postponed — partitions remain).
    /// Includes the skipped ones.
    pub postponed: usize,
    /// Threat identities the incremental engine postponed *without*
    /// re-evaluating (not dirty, not yet checkable). Always zero under
    /// [`ReconcileStrategy::FullScan`].
    pub skipped: usize,
    /// Replica-conflict notifications delivered for satisfied
    /// constraints.
    pub conflict_notifications: usize,
}

/// Summary of one full reconciliation run.
#[derive(Debug, Clone, Default)]
pub struct ReconciliationSummary {
    /// Replica-reconciliation outcome.
    pub replica: ReconcileReport,
    /// Constraint-reconciliation outcome.
    pub constraints: ConstraintReconcileReport,
    /// Virtual time the replica step took.
    pub replica_duration: SimDuration,
    /// Virtual time the constraint step took.
    pub constraint_duration: SimDuration,
}

impl Cluster {
    /// Runs the two-step reconciliation phase. Call after
    /// [`Cluster::heal`].
    ///
    /// Replica consistency is re-established *before* constraint
    /// consistency (§5.2 justifies the ordering); conflict details are
    /// forwarded to the constraint step.
    pub fn reconcile(
        &mut self,
        replica_handler: &mut dyn ReplicaConsistencyHandler,
        constraint_handler: &mut dyn ConstraintReconciliationHandler,
    ) -> ReconciliationSummary {
        assert!(
            self.topology().is_healthy(),
            "reconcile after heal — for partial re-unifications use reconcile_partial (§3.3)"
        );
        self.reconcile_scoped(NodeId(0), replica_handler, constraint_handler)
    }

    /// Reconciliation after a *partial* re-unification (§3.3): some
    /// partitions merged while others remain. Only objects whose
    /// degraded-mode writer partitions are all reachable from
    /// `observer` are replica-reconciled; threats whose constraints
    /// are still threatened (objects stale or unreachable) are
    /// postponed until further partitions re-unify. The system returns
    /// to degraded mode afterwards unless everything was resolved.
    pub fn reconcile_partial(
        &mut self,
        observer: NodeId,
        replica_handler: &mut dyn ReplicaConsistencyHandler,
        constraint_handler: &mut dyn ConstraintReconciliationHandler,
    ) -> ReconciliationSummary {
        self.reconcile_scoped(observer, replica_handler, constraint_handler)
    }

    fn reconcile_scoped(
        &mut self,
        observer: NodeId,
        replica_handler: &mut dyn ReplicaConsistencyHandler,
        constraint_handler: &mut dyn ConstraintReconciliationHandler,
    ) -> ReconciliationSummary {
        self.set_mode(SystemMode::Reconciliation, TransitionCause::Scripted);
        let mut summary = ReconciliationSummary::default();

        // Step 1: replica reconciliation.
        let t0 = self.clock().now();
        let topology = self.topology().clone();
        let replica_report = {
            let (replication, containers) = self.replication_and_containers();
            replication.reconcile_replicas_scoped(&topology, observer, containers, replica_handler)
        };
        // The replica phase rewrites committed states wholesale
        // (missed updates, conflict resolutions) without bumping
        // through the commit path — memoized verdicts are stale.
        self.clear_verdict_cache_with_event();
        // Charge: every missed update/conflict resolution is one
        // propagation round; conflict resolution additionally reads the
        // divergent states.
        let per_install = self
            .costs()
            .propagation(self.node_count().saturating_sub(1) as usize);
        let installs = replica_report.missed_updates + replica_report.conflicts.len() as u64;
        self.clock().advance(per_install * installs);
        let conflict_reads: u64 = replica_report
            .conflicts
            .iter()
            .map(|(c, _)| c.candidates.len() as u64)
            .sum();
        self.clock().advance(self.costs().db_read * conflict_reads);
        // Missed updates *include the consistency threats* gathered in
        // the other partitions (§4.4): every stored threat record is
        // synchronized, which is why replica reconciliation scales
        // worse under the full-history policy (Figure 5.6). Shipping
        // is batched per identity group — one network round per group,
        // per-record database volume — instead of a full
        // write-plus-round per record.
        let threat_records = self.ccm.threat_store().len() as u64;
        let threat_groups = self.ccm.threat_store().identity_count() as u64;
        self.clock().advance(
            self.costs().db_write * threat_records + self.costs().net_hop * 2 * threat_groups,
        );
        // The identity groups ship as canonical lanes (same shard
        // layout as validation batches); the lane count is a pure
        // function of the group count, so it — like every virtual-time
        // charge above — is identical across parallelism settings.
        self.telemetry().metrics().add(
            "reconcile.ship_lanes",
            u64::from(batch::shard_count(threat_groups as usize)),
        );
        summary.replica_duration = self.clock().now().since(t0);
        self.telemetry().emit(|| TraceEvent::ReconcileReplicaPhase {
            missed_updates: replica_report.missed_updates,
            conflicts: replica_report.conflicts.len() as u32,
            duration_ns: summary.replica_duration.as_nanos(),
        });

        // Step 2: constraint reconciliation.
        let t1 = self.clock().now();
        summary.constraints =
            self.reconcile_constraints(observer, &replica_report, constraint_handler);
        summary.constraint_duration = self.clock().now().since(t1);
        summary.replica = replica_report;
        let constraints = summary.constraints;
        let duration_ns = summary.constraint_duration.as_nanos();
        self.telemetry()
            .emit(|| TraceEvent::ReconcileConstraintPhase {
                re_evaluated: constraints.re_evaluated as u64,
                satisfied_removed: constraints.satisfied_removed as u64,
                violations: constraints.violations as u64,
                resolved_by_rollback: constraints.resolved_by_rollback as u64,
                resolved_by_handler: constraints.resolved_by_handler as u64,
                deferred: constraints.deferred as u64,
                postponed: constraints.postponed as u64,
                skipped: constraints.skipped as u64,
                duration_ns,
            });
        let metrics = self.telemetry().metrics();
        metrics.add("reconcile.re_evaluated", constraints.re_evaluated as u64);
        metrics.add("reconcile.postponed", constraints.postponed as u64);
        metrics.add("reconcile.deferred", constraints.deferred as u64);

        // Fully healed: drop the degraded bookkeeping and return to
        // healthy. After a partial re-unification the system stays
        // degraded and keeps its histories for the remaining objects.
        if self.topology().is_healthy() {
            self.replication.clear_degraded_state();
            self.set_mode(SystemMode::Healthy, TransitionCause::Scripted);
        } else {
            self.set_mode(SystemMode::Degraded, TransitionCause::Scripted);
        }
        summary
    }

    fn reconcile_constraints(
        &mut self,
        observer: NodeId,
        replica_report: &ReconcileReport,
        handler: &mut dyn ConstraintReconciliationHandler,
    ) -> ConstraintReconcileReport {
        let mut report = ConstraintReconcileReport::default();
        let recon_tx = self.begin_tx(observer);
        let strategy = self.reconcile_strategy();
        // Object-indexed lookup: the threat identities touched by the
        // dirty set reported from replica reconciliation.
        let dirty_touched = self
            .ccm
            .threat_store()
            .identities_touching(replica_report.dirty.iter());
        let identities = self.ccm.threat_store().identities();
        // Phase A: every identity the walk below will re-evaluate is
        // pre-validated as one batch on the configured pool. The walk
        // consumes a cached evaluation only while the committed state
        // is still exactly the state the batch saw (`state_dirty`):
        // the rollback search and handler callbacks of the Violated
        // arm mutate committed objects, after which later identities
        // fall back to live serial revalidation. Either way the merge
        // order, statistics and trace match the serial engine.
        let mut batched: Vec<(usize, BatchCandidate)> = Vec::new();
        for (i, identity) in identities.iter().enumerate() {
            if strategy == ReconcileStrategy::Incremental
                && !dirty_touched.contains(identity)
                && !self.identity_checkable(observer, identity)
            {
                continue;
            }
            let Some(constraint) = self.repository().get(&identity.constraint).cloned() else {
                continue;
            };
            batched.push((
                i,
                BatchCandidate {
                    constraint,
                    context_object: identity.context_object.clone(),
                    call: None,
                    pre_state: BTreeMap::new(),
                },
            ));
        }
        let candidates: Vec<BatchCandidate> = batched.iter().map(|(_, c)| c.clone()).collect();
        // Reconciliation's Phase A keeps its historical costing (no
        // per-check clock charge), so the charge tag is dropped here.
        let evals = self
            .evaluate_candidates(&candidates, observer, recon_tx)
            .into_iter()
            .map(|(eval, _)| eval);
        let mut cached: BTreeMap<usize, RawEvaluation> =
            batched.into_iter().map(|(i, _)| i).zip(evals).collect();
        let mut state_dirty = false;
        for (index, identity) in identities.into_iter().enumerate() {
            // Incremental engine: a threat must be re-evaluated when
            // the replica step changed one of its objects (dirty) or
            // when all its objects are checkable from the observer —
            // reachable, current and no longer awaiting replica
            // reconciliation — since its verdict can now change.
            // Anything else would re-validate to a threat degree and
            // be postponed, so it is postponed directly, without the
            // per-identity database read (§5.5.1).
            if strategy == ReconcileStrategy::Incremental
                && !dirty_touched.contains(&identity)
                && !self.identity_checkable(observer, &identity)
            {
                report.postponed += 1;
                report.skipped += 1;
                self.telemetry().metrics().incr("reconcile.skipped");
                self.telemetry().emit(|| TraceEvent::ReconcileSkipped {
                    constraint: identity.constraint.to_string(),
                    context: identity.context_object.as_ref().map(|o| o.to_string()),
                });
                continue;
            }
            report.re_evaluated += 1;
            // Load the threat record (database read).
            self.clock().advance(self.costs().db_read);
            let Some(first) = self.ccm.threat_store().first_of(&identity).cloned() else {
                continue;
            };
            let Some(constraint) = self.repository().get(&identity.constraint).cloned() else {
                // Constraint was removed at runtime: threat is moot.
                self.ccm.threat_store_mut().remove_identity(&identity);
                continue;
            };
            let degree = match cached.remove(&index) {
                Some(eval) if !state_dirty => {
                    self.finish_revalidate(observer, recon_tx, &constraint, eval)
                }
                _ => self.revalidate(observer, recon_tx, &constraint, &identity),
            };
            match degree {
                SatisfactionDegree::Satisfied => {
                    report.satisfied_removed += 1;
                    // Capture the notification flag and the affected
                    // objects *before* the store is purged — the old
                    // order consulted `any_wants_conflict_notification`
                    // after `remove_identity`, silently dropping
                    // per-record notify flags beyond the first.
                    let wants_notify = first.instructions.notify_on_replica_conflict
                        || self
                            .ccm
                            .threat_store()
                            .any_wants_conflict_notification(&identity);
                    let affected = self.ccm.threat_store().objects_of(&identity);
                    let removed = self.ccm.threat_store_mut().remove_identity(&identity);
                    // Batched delete: one database write for the
                    // identity group plus the marginal scan cost per
                    // additional record.
                    self.clock().advance(
                        self.costs().db_write
                            + self.costs().threat_scan_per_identity
                                * removed.saturating_sub(1) as u64,
                    );
                    // Notify about replica conflicts if requested.
                    if wants_notify {
                        for (conflict, _) in &replica_report.conflicts {
                            if affected.contains(&conflict.object) {
                                report.conflict_notifications += 1;
                                handler.on_replica_conflict(&identity, conflict);
                            }
                        }
                    }
                }
                SatisfactionDegree::Violated => {
                    report.violations += 1;
                    // Both resolution paths below mutate committed
                    // state; pre-evaluated results are stale from here.
                    state_dirty = true;
                    let mut resolved = false;
                    // Rollback search if permitted (§3.3).
                    if self.ccm.threat_store().any_allows_rollback(&identity)
                        && self.try_rollback(observer, recon_tx, &constraint, &identity, &first)
                    {
                        report.resolved_by_rollback += 1;
                        resolved = true;
                    }
                    if !resolved {
                        // Handler callback, bounded retries (§4.4: the
                        // CCMgr re-validates and contacts the handler
                        // again until resolved or deferred).
                        let violation = ViolationReport {
                            identity: identity.clone(),
                            threat: first.clone(),
                        };
                        let mut deferred = false;
                        for _attempt in 0..3 {
                            let immediate = {
                                let node_count = self.node_count();
                                let (clock, costs, containers) = self.recon_env();
                                let mut ops = ReconOps {
                                    containers,
                                    clock,
                                    costs,
                                    node_count,
                                };
                                handler.reconcile(&violation, &mut ops)
                            };
                            if !immediate {
                                deferred = true;
                                break;
                            }
                            if self.revalidate(observer, recon_tx, &constraint, &identity)
                                == SatisfactionDegree::Satisfied
                            {
                                report.resolved_by_handler += 1;
                                resolved = true;
                                break;
                            }
                        }
                        // A handler that claims immediate success three
                        // times without the constraint ever becoming
                        // satisfied exhausts its retries: account the
                        // violation as deferred so the invariant
                        // `violations == rollback + handler + deferred`
                        // holds (previously such violations vanished
                        // from every counter).
                        if deferred || !resolved {
                            report.deferred += 1;
                        }
                    }
                    if resolved {
                        let removed = self.ccm.threat_store_mut().remove_identity(&identity);
                        self.clock().advance(
                            self.costs().db_write
                                + self.costs().threat_scan_per_identity
                                    * removed.saturating_sub(1) as u64,
                        );
                    }
                }
                _ => {
                    // Still threatened: affected objects remain
                    // unreachable (bound placement on crashed nodes) —
                    // postpone (§3.3).
                    report.postponed += 1;
                }
            }
        }
        let _ = self.rollback(recon_tx);
        debug_assert_eq!(
            report.violations,
            report.resolved_by_rollback + report.resolved_by_handler + report.deferred,
            "violation accounting must balance (§4.4)"
        );
        report
    }

    /// Whether every object of `identity`'s threats is fully checkable
    /// from `observer`: reachable, not possibly stale, and not awaiting
    /// further replica reconciliation. Checkable threats are
    /// re-evaluated even when untouched by the dirty set — a full scan
    /// would resolve them too, and skipping them would diverge.
    fn identity_checkable(&self, observer: NodeId, identity: &ThreatIdentity) -> bool {
        let objects = self.ccm.threat_store().objects_of(identity);
        let topology = self.topology();
        objects.iter().all(|obj| {
            self.replication.is_reachable(obj, observer, topology)
                && !self
                    .replication
                    .is_possibly_stale_quiet(obj, observer, topology)
                && !self.replication.is_degraded_tracked(obj)
        })
    }

    /// Merge phase for a pre-evaluated identity: identical to
    /// [`Cluster::revalidate`] except that the pure evaluation already
    /// happened in the Phase-A batch.
    fn finish_revalidate(
        &mut self,
        observer: NodeId,
        recon_tx: TxId,
        constraint: &dedisys_constraints::RegisteredConstraint,
        eval: RawEvaluation,
    ) -> SatisfactionDegree {
        let now = self.clock().now();
        let (replication, containers, topology, ccm) = self.validation_env();
        let access = ReplicaAccess::new(containers, replication, topology, observer, recon_tx);
        match ccm.finish_validation(constraint, eval, &access, now) {
            Ok(verdict) => verdict.degree,
            Err(_) => SatisfactionDegree::Uncheckable,
        }
    }

    fn revalidate(
        &mut self,
        observer: NodeId,
        recon_tx: TxId,
        constraint: &dedisys_constraints::RegisteredConstraint,
        identity: &ThreatIdentity,
    ) -> SatisfactionDegree {
        let env = self.partition_env(observer);
        let engine = self.constraint_engine();
        let now = self.clock().now();
        let (replication, containers, topology, ccm) = self.validation_env();
        let mut access = ReplicaAccess::new(containers, replication, topology, observer, recon_tx);
        match ccm.validate_constraint(
            constraint,
            identity.context_object.as_ref(),
            None,
            BTreeMap::new(),
            &mut access,
            env,
            engine,
            now,
        ) {
            Ok(verdict) => verdict.degree,
            Err(_) => SatisfactionDegree::Uncheckable,
        }
    }

    /// Attempts rollback to a historical degraded-mode state of the
    /// threat's affected objects (latest first). Returns `true` when a
    /// consistent state was found and installed.
    fn try_rollback(
        &mut self,
        observer: NodeId,
        recon_tx: TxId,
        constraint: &dedisys_constraints::RegisteredConstraint,
        identity: &ThreatIdentity,
        threat: &ConsistencyThreat,
    ) -> bool {
        let node_count = self.node_count();
        // Scope everything to the observer's partition: reading the
        // restore-on-failure state from a hardcoded `NodeId(0)` is
        // wrong (or yields nothing) during `reconcile_partial` when
        // node 0 sits in an unmerged partition, and installing
        // candidates across the partition boundary would overwrite
        // states the unreachable side still relies on.
        let reachable: Vec<NodeId> = self
            .topology()
            .partition_of(observer)
            .iter()
            .copied()
            .collect();
        for object in &threat.affected_objects {
            // Current (post-replica-reconciliation) state within the
            // observer's partition, to restore on failure.
            let original = reachable
                .iter()
                .find_map(|&n| self.entity_on(n, object))
                .cloned();
            for pkey in 0..node_count {
                let states: Vec<EntityState> = { self.replication.partition_history(object, pkey) };
                for candidate in states.iter().rev() {
                    self.clock().advance(self.costs().db_read);
                    self.install_reachable(&reachable, candidate.clone());
                    if self.revalidate(observer, recon_tx, constraint, identity)
                        == SatisfactionDegree::Satisfied
                    {
                        return true;
                    }
                }
            }
            if let Some(original) = original {
                self.install_reachable(&reachable, original);
            }
        }
        false
    }

    /// Installs `state` on every reachable node already holding the
    /// object (the rollback search never crosses the partition
    /// boundary).
    fn install_reachable(&mut self, nodes: &[NodeId], state: EntityState) {
        self.clock().advance(self.costs().db_write);
        let (_, containers) = self.replication_and_containers();
        for &node in nodes {
            let c = &mut containers[node.index()];
            if c.committed_entity(state.id()).is_some() {
                c.install_committed(state.clone());
            }
        }
    }
}
