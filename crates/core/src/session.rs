//! The RAII transaction handle.
//!
//! [`Cluster::session`] replaces the raw
//! `begin`/`invoke(tx)`/`commit(tx)` surface: a [`Session`] borrows
//! the cluster, carries its transaction id internally and **rolls the
//! transaction back when dropped** unless it was committed, prepared
//! or detached. That makes the common client shape leak-free by
//! construction — an early `?` return inside a transactional block no
//! longer strands buffered changes and locks:
//!
//! ```no_run
//! # use dedisys_core::ClusterBuilder;
//! # use dedisys_object::AppDescriptor;
//! # use dedisys_types::{NodeId, ObjectId};
//! # let mut cluster = ClusterBuilder::new(3, AppDescriptor::new("app")).build()?;
//! # let seat: ObjectId = ObjectId::new("Ticket", "t1");
//! let mut session = cluster.session(NodeId(0));
//! session.invoke(&seat, "reserve", vec![])?;
//! session.commit()?;
//! # Ok::<(), dedisys_types::Error>(())
//! ```
//!
//! Chaos/fault-injection drivers that deliberately leave transactions
//! open across partition events use [`Session::detach`] to recover the
//! raw [`TxId`] without triggering the drop-rollback.

use crate::cluster::Cluster;
use crate::negotiation::NegotiationHandler;
use dedisys_object::EntityState;
use dedisys_types::{MethodName, NodeId, ObjectId, Result, TxId, Value};

/// A transaction in progress on one node, tied to the borrow of its
/// [`Cluster`]. Created by [`Cluster::session`]; rolls back on drop
/// unless committed, prepared or detached.
#[must_use = "a dropped session rolls its transaction back"]
pub struct Session<'a> {
    cluster: &'a mut Cluster,
    tx: TxId,
    /// Cleared by commit/prepare/rollback/detach; a still-open session
    /// rolls back in `Drop`.
    open: bool,
}

impl<'a> Session<'a> {
    pub(crate) fn new(cluster: &'a mut Cluster, tx: TxId) -> Self {
        Self {
            cluster,
            tx,
            open: true,
        }
    }

    /// The transaction id (for inspection APIs such as
    /// [`Cluster::stats`]-adjacent queries that take a [`TxId`]).
    pub fn tx(&self) -> TxId {
        self.tx
    }

    /// The node the transaction was begun on.
    pub fn node(&self) -> NodeId {
        self.tx.node
    }

    /// The underlying cluster (read-only inspection mid-transaction).
    pub fn cluster(&self) -> &Cluster {
        &*self.cluster
    }

    /// Invokes `method` on `target` within this transaction, from the
    /// session's node.
    ///
    /// # Errors
    ///
    /// As [`Cluster::invoke`].
    pub fn invoke(
        &mut self,
        target: &ObjectId,
        method: impl Into<MethodName>,
        args: Vec<Value>,
    ) -> Result<Value> {
        let node = self.node();
        self.cluster.invoke(node, self.tx, target, method, args)
    }

    /// Invokes the conventional setter for `field`.
    ///
    /// # Errors
    ///
    /// As [`Cluster::invoke`].
    pub fn set_field(&mut self, target: &ObjectId, field: &str, value: Value) -> Result<()> {
        let node = self.node();
        self.cluster.set_field(node, self.tx, target, field, value)
    }

    /// Invokes the conventional getter for `field`.
    ///
    /// # Errors
    ///
    /// As [`Cluster::invoke`].
    pub fn get_field(&mut self, target: &ObjectId, field: &str) -> Result<Value> {
        let node = self.node();
        self.cluster.get_field(node, self.tx, target, field)
    }

    /// Creates `entity` within this transaction, replicated on every
    /// node.
    ///
    /// # Errors
    ///
    /// As [`Cluster::create`].
    pub fn create(&mut self, entity: EntityState) -> Result<()> {
        let node = self.node();
        self.cluster.create(node, self.tx, entity)
    }

    /// Creates `entity` with an explicit replica set and primary.
    ///
    /// # Errors
    ///
    /// As [`Cluster::create_bound`].
    pub fn create_bound(
        &mut self,
        entity: EntityState,
        replicas: Vec<NodeId>,
        primary: NodeId,
    ) -> Result<()> {
        let node = self.node();
        self.cluster
            .create_bound(node, self.tx, entity, replicas, primary)
    }

    /// Deletes `id` within this transaction.
    ///
    /// # Errors
    ///
    /// As [`Cluster::delete`].
    pub fn delete(&mut self, id: &ObjectId) -> Result<()> {
        let node = self.node();
        self.cluster.delete(node, self.tx, id)
    }

    /// Registers a dynamic negotiation handler for this transaction
    /// (§4.2.3).
    pub fn register_negotiation_handler(&mut self, handler: Box<dyn NegotiationHandler>) {
        self.cluster.register_negotiation_handler(self.tx, handler);
    }

    /// Phase 1 of an explicit two-phase commit; the prepared
    /// transaction is handed back as a raw [`TxId`] for phase 2
    /// ([`Cluster::commit`]) or in-doubt resolution.
    ///
    /// # Errors
    ///
    /// As [`Cluster::prepare`]; the session is consumed either way
    /// (a failed prepare has already rolled back).
    pub fn prepare(mut self) -> Result<TxId> {
        self.open = false;
        let tx = self.tx;
        self.cluster.prepare(tx)?;
        Ok(tx)
    }

    /// Commits this transaction (constraint prepare vote + apply).
    ///
    /// # Errors
    ///
    /// As [`Cluster::commit`]; the session is consumed either way (a
    /// failed commit has already rolled back).
    pub fn commit(mut self) -> Result<()> {
        self.open = false;
        let tx = self.tx;
        self.cluster.commit(tx)
    }

    /// Rolls this transaction back explicitly (same as dropping the
    /// session, but surfaces the result).
    ///
    /// # Errors
    ///
    /// As [`Cluster::rollback`].
    pub fn rollback(mut self) -> Result<()> {
        self.open = false;
        let tx = self.tx;
        self.cluster.rollback(tx)
    }

    /// Releases the transaction from RAII management and returns its
    /// raw [`TxId`] — for drivers that deliberately keep transactions
    /// open past the session borrow (chaos injection, in-doubt
    /// scenarios). The caller becomes responsible for eventually
    /// committing or rolling the transaction back via the `TxId`-based
    /// [`Cluster`] API.
    pub fn detach(mut self) -> TxId {
        self.open = false;
        self.tx
    }
}

impl Drop for Session<'_> {
    fn drop(&mut self) {
        if self.open {
            // Best-effort: the transaction may already be gone (e.g.
            // vetoed and rolled back by the middleware).
            let _ = self.cluster.rollback(self.tx);
        }
    }
}
