//! Runtime constraint management at the cluster level: adding and
//! re-enabling constraints triggers a full check over all context
//! objects (§3.3), and threat persistence survives middleware crashes.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::ClusterBuilder;
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{ConstraintName, NodeId, ObjectId, SatisfactionDegree, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("stocks").with_class(
        ClassDescriptor::new("Warehouse")
            .with_field("stock", Value::Int(0))
            .with_field("capacity", Value::Int(100)),
    )
}

fn capacity_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Capacity"),
        Arc::new(ExprConstraint::parse("self.stock <= self.capacity").unwrap()),
    )
    .context_class("Warehouse")
    .affects("Warehouse", "setStock", ContextPreparation::CalledObject)
}

#[test]
fn adding_a_constraint_checks_all_existing_context_objects() {
    let mut cluster = ClusterBuilder::new(2, app()).build().unwrap();
    let node = NodeId(0);
    // Three warehouses created *before* the constraint exists — one of
    // them already over capacity.
    for (key, stock) in [("W1", 50), ("W2", 150), ("W3", 99)] {
        let id = ObjectId::new("Warehouse", key);
        cluster
            .run_tx(node, move |c, tx| {
                c.create(node, tx, EntityState::for_class(c.app(), &id)?)?;
                c.set_field(node, tx, &id, "stock", Value::Int(stock))
            })
            .unwrap();
    }
    let violating = cluster
        .add_constraint_with_check(capacity_constraint())
        .unwrap();
    assert_eq!(violating, vec![ObjectId::new("Warehouse", "W2")]);
    // The constraint is live from now on.
    let w3 = ObjectId::new("Warehouse", "W3");
    let result = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &w3, "stock", Value::Int(101))
    });
    assert!(result.is_err());
}

#[test]
fn re_enabling_checks_context_objects_again() {
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(capacity_constraint())
        .build()
        .unwrap();
    let node = NodeId(0);
    let id = ObjectId::new("Warehouse", "W1");
    cluster
        .run_tx(node, move |c, tx| {
            c.create(
                node,
                tx,
                EntityState::for_class(c.app(), &ObjectId::new("Warehouse", "W1"))?,
            )
        })
        .unwrap();
    // Disable for a bulk import that exceeds capacity.
    let name = ConstraintName::from("Capacity");
    cluster.set_constraint_enabled(&name, false).unwrap();
    cluster
        .run_tx(node, |c, tx| {
            c.set_field(node, tx, &id, "stock", Value::Int(500))
        })
        .unwrap();
    // Re-enable: the full check surfaces the violation introduced
    // while the constraint was off.
    let violating = cluster.enable_constraint_with_check(&name).unwrap();
    assert_eq!(violating, vec![id.clone()]);
    // Duplicate registration is still rejected.
    assert!(cluster
        .add_constraint_with_check(capacity_constraint())
        .is_err());
}

#[test]
fn accepted_threats_survive_a_middleware_crash() {
    let mut constraint = capacity_constraint();
    constraint.meta = constraint
        .meta
        .tradeable(SatisfactionDegree::PossiblySatisfied);
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(constraint)
        .build()
        .unwrap();
    let node = NodeId(0);
    let id = ObjectId::new("Warehouse", "W1");
    cluster
        .run_tx(node, move |c, tx| {
            c.create(
                node,
                tx,
                EntityState::for_class(c.app(), &ObjectId::new("Warehouse", "W1"))?,
            )
        })
        .unwrap();
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    cluster
        .run_tx(node, |c, tx| {
            c.set_field(node, tx, &id, "stock", Value::Int(10))
        })
        .unwrap();
    assert_eq!(cluster.threats().len(), 1);
    assert_eq!(cluster.threats().persisted_records(), 1);
    // Crash-recover the threat store from its write-ahead log.
    let recovered = cluster.recover_threats();
    assert_eq!(recovered, 1);
    assert_eq!(cluster.threats().len(), 1);
    assert_eq!(
        cluster.threats().threats()[0].constraint,
        ConstraintName::from("Capacity")
    );
}

#[test]
fn deployed_interceptors_wrap_every_invocation() {
    use dedisys_core::HookInfo;
    use dedisys_object::{Interceptor, Invocation};
    use std::sync::atomic::{AtomicUsize, Ordering};

    static CALLS: AtomicUsize = AtomicUsize::new(0);

    struct Auditor;
    impl Interceptor<HookInfo> for Auditor {
        fn name(&self) -> &str {
            "auditor"
        }
        fn before(
            &mut self,
            _cx: &mut HookInfo,
            _inv: &mut Invocation,
        ) -> dedisys_types::Result<()> {
            CALLS.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    struct Security;
    impl Interceptor<HookInfo> for Security {
        fn name(&self) -> &str {
            "security"
        }
        fn before(
            &mut self,
            _cx: &mut HookInfo,
            inv: &mut Invocation,
        ) -> dedisys_types::Result<()> {
            if inv.method.as_str() == "setCapacity" {
                return Err(dedisys_types::Error::ModeRestriction(
                    "capacity changes require the admin role".into(),
                ));
            }
            Ok(())
        }
    }

    let mut cluster = ClusterBuilder::new(1, app()).build().unwrap();
    cluster.add_interceptor(Box::new(Auditor));
    cluster.add_interceptor(Box::new(Security));
    let node = NodeId(0);
    let id = ObjectId::new("Warehouse", "W1");
    let e = id.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    cluster
        .run_tx(node, |c, tx| {
            c.set_field(node, tx, &id, "stock", Value::Int(5))
        })
        .unwrap();
    assert!(CALLS.load(Ordering::SeqCst) >= 1);
    // The security interceptor vetoes before the container is touched.
    let denied = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &id, "capacity", Value::Int(1))
    });
    assert!(matches!(
        denied,
        Err(dedisys_types::Error::ModeRestriction(_))
    ));
    assert_eq!(
        cluster.entity_on(node, &id).unwrap().field("capacity"),
        &Value::Int(100)
    );
}
