//! Edge-case behaviour of the cluster façade: locking, deployment
//! checks, remote reads of bound objects, metrics and naming.

use dedisys_core::nodes;
use dedisys_core::ClusterBuilder;
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, SystemMode, Value};

fn app() -> AppDescriptor {
    AppDescriptor::new("edges")
        .with_class(ClassDescriptor::new("Item").with_field("v", Value::Int(0)))
}

fn cluster(nodes: u32) -> dedisys_core::Cluster {
    ClusterBuilder::new(nodes, app()).build().unwrap()
}

fn seed(c: &mut dedisys_core::Cluster, key: &str) -> ObjectId {
    let id = ObjectId::new("Item", key);
    let e = id.clone();
    c.run_tx(NodeId(0), move |c, tx| {
        c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
    })
    .unwrap();
    id
}

#[test]
fn concurrent_transactions_conflict_on_the_same_object() {
    let mut c = cluster(2);
    let id = seed(&mut c, "a");
    // Two live transactions need raw ids: detach them from their RAII
    // sessions.
    let tx1 = c.session(NodeId(0)).detach();
    let tx2 = c.session(NodeId(1)).detach();
    c.set_field(NodeId(0), tx1, &id, "v", Value::Int(1))
        .unwrap();
    // Entity-bean locking: the second transaction cannot write.
    let conflict = c.set_field(NodeId(1), tx2, &id, "v", Value::Int(2));
    assert!(matches!(conflict, Err(Error::LockConflict { .. })));
    // After commit the lock is released.
    c.commit(tx1).unwrap();
    c.set_field(NodeId(1), tx2, &id, "v", Value::Int(2))
        .unwrap();
    c.commit(tx2).unwrap();
    assert_eq!(
        c.entity_on(NodeId(0), &id).unwrap().field("v"),
        &Value::Int(2)
    );
}

#[test]
fn unknown_classes_and_objects_are_rejected() {
    let mut c = cluster(1);
    let mut session = c.session(NodeId(0));
    let ghost_class = ObjectId::new("Ghost", "g");
    assert!(matches!(
        session.invoke(&ghost_class, "setV", vec![Value::Int(1)]),
        Err(Error::ClassNotDeployed(_))
    ));
    let missing = ObjectId::new("Item", "missing");
    assert!(matches!(
        session.invoke(&missing, "setV", vec![Value::Int(1)]),
        Err(Error::ObjectNotFound(_))
    ));
}

#[test]
fn terminated_transactions_cannot_be_reused() {
    let mut c = cluster(1);
    let id = seed(&mut c, "a");
    let tx = c.session(NodeId(0)).detach();
    c.commit(tx).unwrap();
    assert!(matches!(c.commit(tx), Err(Error::NoSuchTransaction(_))));
    assert!(matches!(c.rollback(tx), Err(Error::NoSuchTransaction(_))));
    assert!(matches!(
        c.set_field(NodeId(0), tx, &id, "v", Value::Int(1)),
        Err(Error::NoSuchTransaction(_))
    ));
}

#[test]
fn session_rolls_back_on_drop_and_raw_begin_still_works() {
    let mut c = cluster(1);
    let id = seed(&mut c, "a");
    {
        let mut session = c.session(NodeId(0));
        session.set_field(&id, "v", Value::Int(9)).unwrap();
        // Dropped without commit: the buffered write must vanish.
    }
    assert_eq!(
        c.entity_on(NodeId(0), &id).unwrap().field("v"),
        &Value::Int(0),
        "dropped session rolled back"
    );
    // The raw TxId surface stays reachable via a detached session.
    let tx = c.session(NodeId(0)).detach();
    c.set_field(NodeId(0), tx, &id, "v", Value::Int(3)).unwrap();
    c.commit(tx).unwrap();
    assert_eq!(
        c.entity_on(NodeId(0), &id).unwrap().field("v"),
        &Value::Int(3)
    );
}

#[test]
fn bound_objects_are_read_remotely_within_the_partition() {
    let mut c = cluster(3);
    // An object living only on node 2.
    let id = ObjectId::new("Item", "bound");
    let e = id.clone();
    c.run_tx(NodeId(0), move |c, tx| {
        let mut state = EntityState::for_class(c.app(), &e)?;
        state.set_field("v", Value::Int(42), c.now());
        c.create_bound(NodeId(0), tx, state, vec![NodeId(2)], NodeId(2))
    })
    .unwrap();
    // Node 0 holds no replica but can read through the partition.
    let got = c
        .run_tx(NodeId(0), |c, tx| c.get_field(NodeId(0), tx, &id, "v"))
        .unwrap();
    assert_eq!(got, Value::Int(42));
    // After isolating node 2, the object is unreachable from node 0.
    c.partition(&[nodes![0, 1], nodes![2]]).unwrap();
    let gone = c.run_tx(NodeId(0), |c, tx| c.get_field(NodeId(0), tx, &id, "v"));
    assert!(matches!(gone, Err(Error::ObjectUnreachable(_))));
}

#[test]
fn empty_methods_do_not_propagate() {
    let app = AppDescriptor::new("edges").with_class(
        ClassDescriptor::new("Item")
            .with_field("v", Value::Int(0))
            .with_method(dedisys_object::MethodDescriptor::with_kind(
                "poke",
                dedisys_object::MethodKind::Write,
            )),
    );
    let mut c = ClusterBuilder::new(2, app).build().unwrap();
    let id = seed(&mut c, "a");
    let before = c.stats().replication.propagations;
    c.run_tx(NodeId(0), |c, tx| {
        c.invoke(NodeId(0), tx, &id, "poke", vec![])
    })
    .unwrap();
    assert_eq!(
        c.stats().replication.propagations,
        before,
        "no state change, nothing propagated (§5.1)"
    );
}

#[test]
fn metrics_count_attempts_and_failures() {
    let mut c = cluster(1);
    let id = seed(&mut c, "a");
    let _ = c.run_tx(NodeId(0), |c, tx| {
        c.set_field(NodeId(0), tx, &id, "v", Value::Int(1))
    });
    let missing = ObjectId::new("Item", "missing");
    let _ = c.run_tx(NodeId(0), |c, tx| c.get_field(NodeId(0), tx, &missing, "v"));
    let m = c.stats().cluster;
    assert_eq!(m.invocations, 2);
    assert_eq!(m.failed_invocations, 1);
    assert_eq!(m.creates, 1);
}

#[test]
fn naming_service_binds_and_resolves_targets() {
    let mut c = cluster(1);
    let id = seed(&mut c, "a");
    c.naming_mut().bind("items/primary", id.clone()).unwrap();
    let resolved = c.naming_mut().lookup("items/primary").unwrap().clone();
    let got = c
        .run_tx(NodeId(0), move |c, tx| {
            c.get_field(NodeId(0), tx, &resolved, "v")
        })
        .unwrap();
    assert_eq!(got, Value::Int(0));
}

#[test]
fn views_track_partition_membership_per_node() {
    let mut c = cluster(4);
    assert_eq!(c.view_of(NodeId(0)).size(), 4);
    c.partition(&[nodes![0, 1], nodes![2, 3]]).unwrap();
    assert_eq!(c.view_of(NodeId(0)).size(), 2);
    assert_eq!(c.view_of(NodeId(3)).size(), 2);
    assert!(!c.view_of(NodeId(0)).contains(NodeId(2)));
    assert_eq!(c.mode(), SystemMode::Degraded);
    c.heal();
    assert_eq!(c.view_of(NodeId(2)).size(), 4);
}

#[test]
fn partition_fraction_reflects_weights() {
    let mut c = ClusterBuilder::new(4, app())
        .weights(dedisys_gms::NodeWeights::explicit(vec![3, 1, 1, 1]))
        .build()
        .unwrap();
    c.partition(&[nodes![0], nodes![1, 2, 3]]).unwrap();
    assert!((c.partition_fraction(NodeId(0)) - 0.5).abs() < 1e-9);
    assert!((c.partition_fraction(NodeId(1)) - 0.5).abs() < 1e-9);
}
