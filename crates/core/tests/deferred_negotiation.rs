//! §5.4 deferred negotiation: threats detected during a transaction
//! are collected; the transaction continues under the assumption that
//! they will be accepted and blocks before commit until every decision
//! is available.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::{Cluster, ClusterBuilder, ConsistencyThreat, NegotiationTiming, ThreatDecision};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{Error, NodeId, ObjectId, SatisfactionDegree, Value};
use std::sync::Arc;

fn app() -> AppDescriptor {
    AppDescriptor::new("inv").with_class(
        ClassDescriptor::new("Counter")
            .with_field("n", Value::Int(0))
            .with_field("max", Value::Int(100)),
    )
}

fn constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("Bounded").tradeable(SatisfactionDegree::PossiblySatisfied),
        Arc::new(ExprConstraint::parse("self.n <= self.max").unwrap()),
    )
    .context_class("Counter")
    .affects("Counter", "setN", ContextPreparation::CalledObject)
}

fn degraded_cluster() -> (Cluster, ObjectId) {
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(constraint())
        .configure(|c| c.validation.negotiation_timing = NegotiationTiming::Deferred)
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    (cluster, id)
}

#[test]
fn operations_continue_and_threats_are_stored_at_commit() {
    let (mut cluster, id) = degraded_cluster();
    let node = NodeId(0);
    let mut session = cluster.session(node);
    // Two threatened writes within one transaction: neither negotiates
    // yet.
    session.set_field(&id, "n", Value::Int(1)).unwrap();
    session.set_field(&id, "n", Value::Int(2)).unwrap();
    assert_eq!(
        session.cluster().threats().len(),
        0,
        "nothing stored before commit"
    );
    session.commit().unwrap();
    // Identical threats deduplicate to one record, accepted via the
    // static declaration.
    assert_eq!(cluster.threats().identities().len(), 1);
    assert!(cluster.stats().ccm.threats_accepted >= 2);
}

#[test]
fn rejection_at_commit_rolls_back_the_whole_transaction() {
    let (mut cluster, id) = degraded_cluster();
    let node = NodeId(0);
    let mut session = cluster.session(node);
    session
        .register_negotiation_handler(Box::new(|_: &mut ConsistencyThreat| ThreatDecision::Reject));
    session.set_field(&id, "n", Value::Int(5)).unwrap();
    let result = session.commit();
    assert!(matches!(result, Err(Error::ThreatRejected { .. })));
    assert_eq!(
        cluster.entity_on(node, &id).unwrap().field("n"),
        &Value::Int(0),
        "write rolled back"
    );
    assert!(cluster.threats().is_empty());
}

#[test]
fn dynamic_handler_sees_every_deferred_threat() {
    let (mut cluster, id) = degraded_cluster();
    let node = NodeId(0);
    let mut session = cluster.session(node);
    let seen = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let seen_in_handler = Arc::clone(&seen);
    session.register_negotiation_handler(Box::new(move |threat: &mut ConsistencyThreat| {
        seen_in_handler.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        threat.app_data = Some(Value::from("deferred"));
        ThreatDecision::Accept
    }));
    session.set_field(&id, "n", Value::Int(1)).unwrap();
    session.set_field(&id, "n", Value::Int(2)).unwrap();
    assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 0);
    session.commit().unwrap();
    assert_eq!(seen.load(std::sync::atomic::Ordering::SeqCst), 2);
    assert_eq!(
        cluster.threats().threats()[0].app_data,
        Some(Value::from("deferred"))
    );
}

#[test]
fn healthy_mode_is_unaffected_by_deferred_timing() {
    let mut cluster = ClusterBuilder::new(2, app())
        .constraint(constraint())
        .configure(|c| c.validation.negotiation_timing = NegotiationTiming::Deferred)
        .build()
        .unwrap();
    let id = ObjectId::new("Counter", "c1");
    let e = id.clone();
    cluster
        .run_tx(NodeId(0), move |c, tx| {
            c.create(NodeId(0), tx, EntityState::for_class(c.app(), &e)?)
        })
        .unwrap();
    // Violations still abort immediately in healthy mode (no threat, a
    // definite violation).
    let result = cluster.run_tx(NodeId(0), |c, tx| {
        c.set_field(NodeId(0), tx, &id, "n", Value::Int(500))
    });
    assert!(matches!(result, Err(Error::ConstraintViolated { .. })));
}
