//! End-to-end reproduction of the motivating scenario of §1.3:
//! 80 seats, 70 sold in healthy mode; a partition splits the system;
//! 7 tickets are sold in partition A and 8 in partition B under
//! accepted consistency threats; after re-unification the merged state
//! (85 sold) violates the ticket constraint and reconciliation rebooks
//! 5 passengers.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::nodes;
use dedisys_core::{
    ClusterBuilder, ReconOps, ReconcileInstructions, ReplicaConflict, ViolationReport,
};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, SatisfactionDegree, SystemMode, Value};
use std::sync::Arc;

fn booking_app() -> AppDescriptor {
    AppDescriptor::new("booking").with_class(
        ClassDescriptor::new("Flight")
            .with_field("seats", Value::Int(0))
            .with_field("sold", Value::Int(0)),
    )
}

fn ticket_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("TicketConstraint")
            .tradeable(SatisfactionDegree::PossiblySatisfied)
            .describe("sold tickets must not exceed seats"),
        Arc::new(ExprConstraint::parse("self.sold <= self.seats").unwrap()),
    )
    .context_class("Flight")
    .affects("Flight", "setSold", ContextPreparation::CalledObject)
}

#[test]
fn flight_booking_partition_threat_reconciliation() {
    let mut cluster = ClusterBuilder::new(3, booking_app())
        .constraint(ticket_constraint())
        .default_instructions(ReconcileInstructions {
            allow_rollback: false,
            notify_on_replica_conflict: true,
        })
        .build()
        .unwrap();
    let flight = ObjectId::new("Flight", "LH-441");
    let a = NodeId(0);
    let b = NodeId(1);

    // Healthy mode: create the flight and sell 70 of 80 seats.
    cluster
        .run_tx(a, |c, tx| {
            c.create(a, tx, EntityState::for_class(c.app(), &flight)?)?;
            c.set_field(a, tx, &flight, "seats", Value::Int(80))?;
            c.set_field(a, tx, &flight, "sold", Value::Int(70))
        })
        .unwrap();
    assert_eq!(cluster.mode(), SystemMode::Healthy);
    // Replication propagated the state to all three nodes.
    for n in 0..3 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &flight).unwrap().field("sold"),
            &Value::Int(70)
        );
    }

    // Network partition: {0} vs {1, 2}.
    cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
    assert_eq!(cluster.mode(), SystemMode::Degraded);

    // Partition A sells 7 (70 → 77 ≤ 80: possibly satisfied, accepted
    // by the static declaration).
    cluster
        .run_tx(a, |c, tx| {
            c.set_field(a, tx, &flight, "sold", Value::Int(77))
        })
        .unwrap();
    // Partition B sells 8 (70 → 78 ≤ 80 from its stale copy).
    cluster
        .run_tx(b, |c, tx| {
            c.set_field(b, tx, &flight, "sold", Value::Int(78))
        })
        .unwrap();

    assert_eq!(cluster.threats().identities().len(), 1, "identical-once");
    assert!(cluster.stats().ccm.threats_accepted >= 2);

    // Reunification.
    cluster.heal();
    assert_eq!(cluster.mode(), SystemMode::Reconciliation);

    // Replica reconciliation: additive merge of the two partitions'
    // sales (the application knows sales are increments).
    let mut merge_sales = |conflict: &ReplicaConflict| {
        let healthy_sold = 70;
        let total_increment: i64 = conflict
            .candidates
            .iter()
            .filter_map(|(_, s)| s.as_ref())
            .filter_map(|s| s.field("sold").as_int())
            .map(|sold| sold - healthy_sold)
            .sum();
        let mut merged = conflict.candidates[0].1.clone().expect("live state");
        merged.set_field(
            "sold",
            Value::Int(healthy_sold + total_increment),
            dedisys_types::SimTime::ZERO,
        );
        Some(merged)
    };

    // Constraint reconciliation: rebook the overbooked passengers.
    let notified_conflicts;
    let mut rebooked = 0i64;
    {
        let mut constraint_handler = |violation: &ViolationReport, ops: &mut ReconOps<'_>| {
            assert_eq!(violation.identity.constraint.as_str(), "TicketConstraint");
            let sold = ops.read(&flight, "sold").unwrap().as_int().unwrap();
            let seats = ops.read(&flight, "seats").unwrap().as_int().unwrap();
            rebooked = sold - seats;
            ops.write(&flight, "sold", Value::Int(seats)).unwrap();
            true // resolved immediately
        };
        let summary = cluster.reconcile(&mut merge_sales, &mut constraint_handler);
        assert_eq!(summary.replica.conflicts.len(), 1, "write-write conflict");
        assert_eq!(summary.constraints.re_evaluated, 1);
        assert_eq!(summary.constraints.violations, 1);
        assert_eq!(summary.constraints.resolved_by_handler, 1);
        notified_conflicts = summary.constraints.conflict_notifications;
    }
    // 70 + 7 + 8 = 85 sold on an 80-seat plane → 5 rebooked.
    assert_eq!(rebooked, 5);
    let _ = notified_conflicts; // constraint was violated, not satisfied ⇒ no notification

    assert_eq!(cluster.mode(), SystemMode::Healthy);
    assert!(cluster.threats().is_empty());
    for n in 0..3 {
        assert_eq!(
            cluster.entity_on(NodeId(n), &flight).unwrap().field("sold"),
            &Value::Int(80),
            "node {n} consistent after reconciliation"
        );
    }
}

#[test]
fn non_tradeable_constraints_block_degraded_writes() {
    let mut constraint = ticket_constraint();
    constraint.meta.priority = dedisys_constraints::ConstraintPriority::NonTradeable;
    let mut cluster = ClusterBuilder::new(2, booking_app())
        .constraint(constraint)
        .build()
        .unwrap();
    let flight = ObjectId::new("Flight", "F1");
    let node = NodeId(0);
    cluster
        .run_tx(node, |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &flight)?)?;
            c.set_field(node, tx, &flight, "seats", Value::Int(10))
        })
        .unwrap();
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    // Fallback to conventional behaviour: the system blocks (§3.2).
    let result = cluster.run_tx(node, |c, tx| {
        c.set_field(node, tx, &flight, "sold", Value::Int(1))
    });
    assert!(matches!(
        result,
        Err(dedisys_types::Error::ThreatRejected { .. })
    ));
    assert_eq!(
        cluster.entity_on(node, &flight).unwrap().field("sold"),
        &Value::Int(0)
    );
}

#[test]
fn deferred_reconciliation_is_cleaned_up_by_business_operations() {
    let mut cluster = ClusterBuilder::new(2, booking_app())
        .constraint(ticket_constraint())
        .build()
        .unwrap();
    let flight = ObjectId::new("Flight", "F1");
    let a = NodeId(0);
    let b = NodeId(1);
    cluster
        .run_tx(a, |c, tx| {
            c.create(a, tx, EntityState::for_class(c.app(), &flight)?)?;
            c.set_field(a, tx, &flight, "seats", Value::Int(10))?;
            c.set_field(a, tx, &flight, "sold", Value::Int(9))
        })
        .unwrap();
    cluster.partition(&[nodes![0], nodes![1]]).unwrap();
    cluster
        .run_tx(a, |c, tx| {
            c.set_field(a, tx, &flight, "sold", Value::Int(10))
        })
        .unwrap();
    cluster
        .run_tx(b, |c, tx| {
            c.set_field(b, tx, &flight, "sold", Value::Int(10))
        })
        .unwrap();
    cluster.heal();

    // Defer every violation (asynchronous reconciliation, §5.4).
    let mut merge = |conflict: &ReplicaConflict| {
        // 9 → 10 in both partitions: one extra ticket each ⇒ 11 total.
        let mut merged = conflict.candidates[0].1.clone().unwrap();
        merged.set_field("sold", Value::Int(11), dedisys_types::SimTime::ZERO);
        Some(merged)
    };
    let summary = cluster.reconcile(&mut merge, &mut dedisys_core::DeferAll);
    assert_eq!(summary.constraints.violations, 1);
    assert_eq!(summary.constraints.deferred, 1);
    assert_eq!(cluster.threats().identities().len(), 1, "threat retained");
    assert_eq!(cluster.mode(), SystemMode::Healthy);

    // The operator later cancels two bookings through a normal
    // business operation; the satisfied validation cleans up the
    // deferred threat (§4.4).
    cluster
        .run_tx(a, |c, tx| {
            c.set_field(a, tx, &flight, "sold", Value::Int(9))
        })
        .unwrap();
    assert!(cluster.threats().is_empty(), "threat removed by cleanup");
}
