//! # dedisys-apps
//!
//! The application scenarios of the dissertation, modelled on top of
//! the DeDiSys-RS middleware:
//!
//! * [`flight`] — the distributed flight booking system of §1.3 (the
//!   running example: the ticket constraint, overbooking under
//!   partitions, reconciliation by rebooking), including the
//!   partition-sensitive variant of §5.5.2.
//! * [`ats`] — the distributed alarm tracking system of §1.4 (Figure
//!   1.5): alarms and repair reports with the
//!   `ComponentKindReferenceConsistency` constraint spanning both.
//! * [`dtms`] — the distributed telecommunication management system of
//!   §1.4: site-bound voice-communication-channel endpoints whose
//!   configuration must stay consistent across sites (objects with
//!   strong ownership — replicas bound to subsets of nodes).
//! * [`workload`] — parameterized workload generation (read/write
//!   mixes, entity pools) for the Chapter 5 throughput studies.

pub mod ats;
pub mod dtms;
pub mod flight;
pub mod workload;
