//! The flight booking system of §1.3.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::partition_sensitive::PartitionSensitiveTicketConstraint;
use dedisys_core::{Cluster, ClusterBuilder};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState, MethodBody, MethodTable};
use dedisys_types::{NodeId, ObjectId, Result, SatisfactionDegree, Value};
use std::sync::Arc;

/// The booking application: flights with seats and sold tickets, and
/// passengers.
pub fn flight_app() -> AppDescriptor {
    AppDescriptor::new("flight-booking")
        .with_class(
            ClassDescriptor::new("Flight")
                .with_field("seats", Value::Int(0))
                .with_field("sold", Value::Int(0))
                .with_method(dedisys_object::MethodDescriptor::with_kind(
                    "sellTickets",
                    dedisys_object::MethodKind::Write,
                )),
        )
        .with_class(
            ClassDescriptor::new("Person")
                .with_field("name", Value::Null)
                .with_field("bookedFlight", Value::Null),
        )
}

/// The business methods: `Flight::sellTickets(count)` increments the
/// sold counter and returns the new total (Listing 1.2 — the business
/// logic holds no constraint code).
pub fn flight_methods() -> MethodTable {
    let mut table = MethodTable::new();
    table.register(
        "Flight",
        "sellTickets",
        MethodBody::custom(|cx| {
            let count = cx.invocation.arg0().and_then(Value::as_int).unwrap_or(1);
            let sold = cx.read_own("sold")?.as_int().unwrap_or(0);
            cx.write_own("sold", Value::Int(sold + count))?;
            Ok(Value::Int(sold + count))
        }),
    );
    table
}

/// The ticket constraint (Figure 1.6): sold ≤ seats, tradeable during
/// degraded mode with `possibly satisfied` as the acceptance floor
/// (§3.1: overselling slightly is acceptable, knowing tickets are
/// mainly sold and rarely returned).
pub fn ticket_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("TicketConstraint")
            .tradeable(SatisfactionDegree::PossiblySatisfied)
            .describe("number of sold tickets must not exceed the seats of the flight"),
        Arc::new(ExprConstraint::parse("self.sold <= self.seats").expect("valid expression")),
    )
    .context_class("Flight")
    .affects("Flight", "setSold", ContextPreparation::CalledObject)
    .affects("Flight", "sellTickets", ContextPreparation::CalledObject)
}

/// The §5.5.2 partition-sensitive variant: each partition may only
/// sell its weight share of the remaining tickets, so (almost) no
/// inconsistency is introduced at all.
pub fn partition_sensitive_ticket_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("PartitionSensitiveTicketConstraint")
            .tradeable(SatisfactionDegree::PossiblySatisfied)
            .describe("per-partition ticket quota by partition weight"),
        Arc::new(PartitionSensitiveTicketConstraint::new("seats", "sold")),
    )
    .context_class("Flight")
    .affects("Flight", "setSold", ContextPreparation::CalledObject)
    .affects("Flight", "sellTickets", ContextPreparation::CalledObject)
}

/// Builds a booking cluster of `nodes` nodes with the plain ticket
/// constraint.
///
/// # Errors
///
/// Propagates cluster-construction failures.
pub fn booking_cluster(nodes: u32) -> Result<Cluster> {
    ClusterBuilder::new(nodes, flight_app())
        .methods(flight_methods())
        .constraint(ticket_constraint())
        .build()
}

/// Creates a flight with `seats` seats and `sold` pre-sold tickets.
///
/// # Errors
///
/// Propagates transaction failures.
pub fn create_flight(
    cluster: &mut Cluster,
    node: NodeId,
    key: &str,
    seats: i64,
    sold: i64,
) -> Result<ObjectId> {
    let id = ObjectId::new("Flight", key);
    let flight = id.clone();
    cluster.run_tx(node, move |c, tx| {
        c.create(node, tx, EntityState::for_class(c.app(), &flight)?)?;
        c.set_field(node, tx, &flight, "seats", Value::Int(seats))?;
        c.set_field(node, tx, &flight, "sold", Value::Int(sold))
    })?;
    Ok(id)
}

/// Sells `count` tickets via the business method; returns the new
/// total.
///
/// # Errors
///
/// Fails when the ticket constraint is violated or the resulting
/// threat is rejected.
pub fn sell_tickets(
    cluster: &mut Cluster,
    node: NodeId,
    flight: &ObjectId,
    count: i64,
) -> Result<i64> {
    let flight = flight.clone();
    cluster
        .run_tx(node, move |c, tx| {
            c.invoke(node, tx, &flight, "sellTickets", vec![Value::Int(count)])
        })
        .map(|v| v.as_int().unwrap_or(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_core::nodes;

    #[test]
    fn selling_within_capacity_succeeds() {
        let mut cluster = booking_cluster(2).unwrap();
        let node = NodeId(0);
        let flight = create_flight(&mut cluster, node, "LH-441", 80, 70).unwrap();
        assert_eq!(sell_tickets(&mut cluster, node, &flight, 5).unwrap(), 75);
        assert_eq!(
            cluster.entity_on(NodeId(1), &flight).unwrap().field("sold"),
            &Value::Int(75),
            "propagated to the backup"
        );
    }

    #[test]
    fn overselling_is_rejected_in_healthy_mode() {
        let mut cluster = booking_cluster(2).unwrap();
        let node = NodeId(0);
        let flight = create_flight(&mut cluster, node, "LH-441", 80, 70).unwrap();
        assert!(sell_tickets(&mut cluster, node, &flight, 11).is_err());
        assert_eq!(
            cluster.entity_on(node, &flight).unwrap().field("sold"),
            &Value::Int(70)
        );
    }

    #[test]
    fn degraded_sales_produce_accepted_threats() {
        let mut cluster = booking_cluster(3).unwrap();
        let node = NodeId(0);
        let flight = create_flight(&mut cluster, node, "LH-441", 80, 70).unwrap();
        cluster.partition(&[nodes![0], nodes![1, 2]]).unwrap();
        sell_tickets(&mut cluster, NodeId(0), &flight, 7).unwrap();
        sell_tickets(&mut cluster, NodeId(1), &flight, 8).unwrap();
        assert_eq!(cluster.threats().identities().len(), 1);
    }

    #[test]
    fn partition_sensitive_variant_bounds_each_partition() {
        let mut cluster = ClusterBuilder::new(2, flight_app())
            .methods(flight_methods())
            .constraint(partition_sensitive_ticket_constraint())
            .build()
            .unwrap();
        let node = NodeId(0);
        let flight = create_flight(&mut cluster, node, "F", 80, 70).unwrap();
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        // 10 remaining, weight 1/2 each → 5 per partition.
        assert!(sell_tickets(&mut cluster, NodeId(0), &flight, 5).is_ok());
        assert!(sell_tickets(&mut cluster, NodeId(0), &flight, 1).is_err());
        assert!(sell_tickets(&mut cluster, NodeId(1), &flight, 5).is_ok());
        assert!(sell_tickets(&mut cluster, NodeId(1), &flight, 1).is_err());
    }
}
