//! The distributed telecommunication management system (DTMS) of
//! §1.4.
//!
//! Each site runs its own DTMS instance managing the local voice
//! communication system; the hardware is represented by objects
//! *bound* to their site (strong ownership — a site failure must not
//! have effects beyond the site). Integrity constraints span sites:
//! the two endpoints of a voice channel must agree on their
//! configuration (frequency) to enable communication.
//!
//! Because endpoint objects are replicated only on their own site's
//! node, a partition makes the *peer* endpoint genuinely unreachable —
//! producing `uncheckable` (NCC) threats rather than the stale-read
//! (LCC) threats of the fully replicated scenarios.

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintKind, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{Cluster, ClusterBuilder};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, Result, SatisfactionDegree, Value};
use std::sync::Arc;

/// The DTMS application model: sites and channel endpoints.
pub fn dtms_app() -> AppDescriptor {
    AppDescriptor::new("dtms")
        .with_class(
            ClassDescriptor::new("Site")
                .with_field("name", Value::from(""))
                .with_field("online", Value::Bool(true)),
        )
        .with_class(
            ClassDescriptor::new("ChannelEndpoint")
                .with_field("channel", Value::from(""))
                .with_field("frequency", Value::Int(0))
                .with_field("peer", Value::Null),
        )
}

/// The cross-site channel-configuration constraint: both endpoints of
/// a channel must use the same frequency. A **soft** invariant
/// (\[JQ92\], §1.6): a coordinated retune of both endpoints within one
/// business transaction passes through an inconsistent intermediate
/// state, so validation happens at the end of the transaction.
/// Tradeable: during a split a site may retune its endpoint, accepting
/// an `uncheckable` threat that reconciliation re-evaluates.
pub fn channel_config_constraint() -> RegisteredConstraint {
    RegisteredConstraint::new(
        ConstraintMeta::new("ChannelConfigConsistency")
            .kind(ConstraintKind::SoftInvariant)
            .tradeable(SatisfactionDegree::Uncheckable)
            .describe("channel endpoints must agree on the frequency"),
        Arc::new(
            ExprConstraint::parse("self.frequency = self.peer.frequency")
                .expect("valid expression"),
        ),
    )
    .context_class("ChannelEndpoint")
    .affects(
        "ChannelEndpoint",
        "setFrequency",
        ContextPreparation::CalledObject,
    )
}

/// Builds a DTMS cluster with one node per site.
///
/// # Errors
///
/// Propagates cluster-construction failures.
pub fn dtms_cluster(sites: u32) -> Result<Cluster> {
    ClusterBuilder::new(sites, dtms_app())
        .constraint(channel_config_constraint())
        .build()
}

/// Creates a voice channel between two sites: one endpoint per site,
/// each **bound to its site's node** (no replication across sites).
///
/// # Errors
///
/// Propagates transaction failures.
pub fn create_channel(
    cluster: &mut Cluster,
    channel: &str,
    site_a: NodeId,
    site_b: NodeId,
    frequency: i64,
) -> Result<(ObjectId, ObjectId)> {
    let ep_a = ObjectId::new("ChannelEndpoint", format!("{channel}@{site_a}"));
    let ep_b = ObjectId::new("ChannelEndpoint", format!("{channel}@{site_b}"));
    let (a, b) = (ep_a.clone(), ep_b.clone());
    let ch = channel.to_owned();
    cluster.run_tx(site_a, move |c, tx| {
        let mut ea = EntityState::for_class(c.app(), &a)?;
        ea.set_field("channel", Value::from(ch.as_str()), c.now());
        ea.set_field("frequency", Value::Int(frequency), c.now());
        ea.set_field("peer", Value::Ref(b.clone()), c.now());
        c.create_bound(site_a, tx, ea, vec![site_a], site_a)?;
        let mut eb = EntityState::for_class(c.app(), &b)?;
        eb.set_field("channel", Value::from(ch.as_str()), c.now());
        eb.set_field("frequency", Value::Int(frequency), c.now());
        eb.set_field("peer", Value::Ref(a.clone()), c.now());
        c.create_bound(site_a, tx, eb, vec![site_b], site_b)?;
        Ok(())
    })?;
    Ok((ep_a, ep_b))
}

/// Retunes an endpoint to a new frequency.
///
/// # Errors
///
/// Fails on violation or rejected threat.
pub fn retune(
    cluster: &mut Cluster,
    site: NodeId,
    endpoint: &ObjectId,
    frequency: i64,
) -> Result<()> {
    let ep = endpoint.clone();
    cluster.run_tx(site, move |c, tx| {
        c.set_field(site, tx, &ep, "frequency", Value::Int(frequency))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_core::nodes;

    #[test]
    fn endpoints_are_bound_to_their_sites() {
        let mut cluster = dtms_cluster(2).unwrap();
        let (ep_a, ep_b) = create_channel(&mut cluster, "ch1", NodeId(0), NodeId(1), 120).unwrap();
        assert!(cluster.entity_on(NodeId(0), &ep_a).is_some());
        assert!(
            cluster.entity_on(NodeId(1), &ep_a).is_none(),
            "not replicated"
        );
        assert!(cluster.entity_on(NodeId(1), &ep_b).is_some());
    }

    #[test]
    fn consistent_retune_of_both_endpoints_succeeds() {
        let mut cluster = dtms_cluster(2).unwrap();
        let (ep_a, ep_b) = create_channel(&mut cluster, "ch1", NodeId(0), NodeId(1), 120).unwrap();
        // Retuning one endpoint alone violates; a coordinated change
        // within one transaction keeps the invariant.
        let result = cluster.run_tx(NodeId(0), |c, tx| {
            c.set_field(NodeId(0), tx, &ep_a, "frequency", Value::Int(121))?;
            c.set_field(NodeId(0), tx, &ep_b, "frequency", Value::Int(121))
        });
        assert!(result.is_ok(), "{result:?}");
    }

    #[test]
    fn lone_retune_violates_in_healthy_mode() {
        let mut cluster = dtms_cluster(2).unwrap();
        let (ep_a, _) = create_channel(&mut cluster, "ch1", NodeId(0), NodeId(1), 120).unwrap();
        let result = retune(&mut cluster, NodeId(0), &ep_a, 130);
        assert!(matches!(
            result,
            Err(dedisys_types::Error::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn partition_makes_peer_unreachable_and_threat_uncheckable() {
        let mut cluster = dtms_cluster(2).unwrap();
        let (ep_a, ep_b) = create_channel(&mut cluster, "ch1", NodeId(0), NodeId(1), 120).unwrap();
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        // The peer endpoint is genuinely unreachable (bound object):
        // NCC — uncheckable — accepted per the constraint policy.
        retune(&mut cluster, NodeId(0), &ep_a, 130).unwrap();
        let threat = &cluster.threats().threats()[0];
        assert_eq!(
            threat.degree,
            dedisys_types::SatisfactionDegree::Uncheckable
        );
        // After repair, reconciliation detects the violation; the
        // operator retunes the peer (immediate reconciliation).
        cluster.heal();
        let ep_b2 = ep_b.clone();
        let mut fix = move |violation: &dedisys_core::ViolationReport,
                            ops: &mut dedisys_core::ReconOps<'_>| {
            assert_eq!(
                violation.identity.constraint.as_str(),
                "ChannelConfigConsistency"
            );
            ops.write(&ep_b2, "frequency", Value::Int(130)).unwrap();
            true
        };
        let summary = cluster.reconcile(&mut dedisys_core::HighestVersionWins, &mut fix);
        assert_eq!(summary.constraints.violations, 1);
        assert_eq!(summary.constraints.resolved_by_handler, 1);
        assert!(cluster.threats().is_empty());
        assert_eq!(
            cluster
                .entity_on(NodeId(1), &ep_b)
                .unwrap()
                .field("frequency"),
            &Value::Int(130)
        );
    }
}
