//! The distributed alarm tracking system (ATS) of §1.4 / Figure 1.5.
//!
//! Administrative operators manage alarms; technical operators fill
//! out repair reports, potentially on different servers. The
//! `ComponentKindReferenceConsistency` constraint spans both objects:
//! an alarm with `alarmKind = "Signal"` can only be removed by
//! repairing a component that is a "Signal Controller" or a "Signal
//! Cable".

use dedisys_constraints::{
    expr::ExprConstraint, ConstraintMeta, ContextPreparation, RegisteredConstraint,
};
use dedisys_core::{Cluster, ClusterBuilder};
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState};
use dedisys_types::{NodeId, ObjectId, Result, SatisfactionDegree, Value};
use std::sync::Arc;

/// The ATS application model (Figure 1.5, simplified).
pub fn ats_app() -> AppDescriptor {
    AppDescriptor::new("ats")
        .with_class(
            ClassDescriptor::new("Alarm")
                .with_field("alarmKind", Value::from("Signal"))
                .with_field("description", Value::from(""))
                .with_field("repairReport", Value::Null),
        )
        .with_class(
            ClassDescriptor::new("RepairReport")
                .with_field("componentKind", Value::from("Signal Controller"))
                .with_field("affectedComponent", Value::from(""))
                .with_field("alarm", Value::Null),
        )
}

/// The `ComponentKindReferenceConsistency` constraint of Figure 1.5 /
/// Listing 4.1: validated from the repair report, triggered by
/// `RepairReport::setComponentKind` (context = called object) *and*
/// `Alarm::setAlarmKind` (context = the alarm's repair report, reached
/// through the reference getter — the `<preparation-class>`).
///
/// Per §3.1 the ATS accepts even *possibly violated* threats (the
/// technical operator knows the repaired component), so the acceptance
/// floor is `uncheckable` as in Listing 4.1.
pub fn component_kind_constraint() -> RegisteredConstraint {
    let expr = "self.alarm.alarmKind <> \"Signal\" or \
                self.componentKind = \"Signal Controller\" or \
                self.componentKind = \"Signal Cable\"";
    RegisteredConstraint::new(
        ConstraintMeta::new("ComponentKindReferenceConsistency")
            .tradeable(SatisfactionDegree::Uncheckable)
            .describe("signal alarms require signal components"),
        Arc::new(ExprConstraint::parse(expr).expect("valid expression")),
    )
    .context_class("RepairReport")
    .affects(
        "RepairReport",
        "setComponentKind",
        ContextPreparation::CalledObject,
    )
    .affects(
        "Alarm",
        "setAlarmKind",
        ContextPreparation::ReferenceField("repairReport".into()),
    )
}

/// Builds an ATS cluster.
///
/// # Errors
///
/// Propagates cluster-construction failures.
pub fn ats_cluster(nodes: u32) -> Result<Cluster> {
    ClusterBuilder::new(nodes, ats_app())
        .constraint(component_kind_constraint())
        .build()
}

/// Creates a linked alarm/repair-report pair.
///
/// # Errors
///
/// Propagates transaction failures.
pub fn create_alarm_with_report(
    cluster: &mut Cluster,
    node: NodeId,
    key: &str,
) -> Result<(ObjectId, ObjectId)> {
    let alarm = ObjectId::new("Alarm", key);
    let report = ObjectId::new("RepairReport", format!("R-{key}"));
    let (a, r) = (alarm.clone(), report.clone());
    cluster.run_tx(node, move |c, tx| {
        c.create(node, tx, EntityState::for_class(c.app(), &a)?)?;
        c.create(node, tx, EntityState::for_class(c.app(), &r)?)?;
        c.set_field(node, tx, &a, "repairReport", Value::Ref(r.clone()))?;
        c.set_field(node, tx, &r, "alarm", Value::Ref(a.clone()))
    })?;
    Ok((alarm, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_core::nodes;

    #[test]
    fn consistent_repair_is_accepted() {
        let mut cluster = ats_cluster(2).unwrap();
        let node = NodeId(0);
        let (_alarm, report) = create_alarm_with_report(&mut cluster, node, "A-17").unwrap();
        cluster
            .run_tx(node, |c, tx| {
                c.set_field(
                    node,
                    tx,
                    &report,
                    "componentKind",
                    Value::from("Signal Cable"),
                )
            })
            .unwrap();
    }

    #[test]
    fn wrong_component_kind_violates_in_healthy_mode() {
        let mut cluster = ats_cluster(2).unwrap();
        let node = NodeId(0);
        let (_alarm, report) = create_alarm_with_report(&mut cluster, node, "A-17").unwrap();
        let result = cluster.run_tx(node, |c, tx| {
            c.set_field(node, tx, &report, "componentKind", Value::from("Antenna"))
        });
        assert!(matches!(
            result,
            Err(dedisys_types::Error::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn alarm_kind_change_triggers_constraint_via_reference_preparation() {
        let mut cluster = ats_cluster(2).unwrap();
        let node = NodeId(0);
        let (alarm, report) = create_alarm_with_report(&mut cluster, node, "A-17").unwrap();
        // Repair with a power component first — invalid for a Signal
        // alarm, but fine once the alarm kind changes.
        let result = cluster.run_tx(node, |c, tx| {
            c.set_field(node, tx, &alarm, "alarmKind", Value::from("Power"))
        });
        assert!(result.is_ok());
        cluster
            .run_tx(node, |c, tx| {
                c.set_field(node, tx, &report, "componentKind", Value::from("Fuse"))
            })
            .unwrap();
        // Changing the alarm back to Signal now violates — detected
        // through the Alarm::setAlarmKind trigger point.
        let result = cluster.run_tx(node, |c, tx| {
            c.set_field(node, tx, &alarm, "alarmKind", Value::from("Signal"))
        });
        assert!(matches!(
            result,
            Err(dedisys_types::Error::ConstraintViolated { .. })
        ));
    }

    #[test]
    fn ats_scenario_of_section_3_1_under_partition() {
        // The technical operator sets the component kind while the
        // alarm's partition is unreachable: the validation is a
        // consistency threat and — per the ATS policy — accepted even
        // though possibly violated.
        let mut cluster = ats_cluster(2).unwrap();
        let node = NodeId(0);
        let (alarm, report) = create_alarm_with_report(&mut cluster, node, "A-17").unwrap();
        cluster.partition(&[nodes![0], nodes![1]]).unwrap();
        // Administrative operator changes the alarm in partition {1}.
        cluster
            .run_tx(NodeId(1), |c, tx| {
                c.set_field(NodeId(1), tx, &alarm, "alarmKind", Value::from("Power"))
            })
            .unwrap();
        // Technical operator fills the report in partition {0} with a
        // power component — violated per the stale local alarm copy
        // (still "Signal"), but accepted as a possibly-violated threat.
        cluster
            .run_tx(NodeId(0), |c, tx| {
                c.set_field(NodeId(0), tx, &report, "componentKind", Value::from("Fuse"))
            })
            .unwrap();
        // Both writes threaten the same (constraint, context object)
        // identity; the default identical-once policy stores it once.
        assert_eq!(cluster.threats().identities().len(), 1);
        assert!(
            cluster.stats().ccm.threats_accepted >= 2,
            "both writes threatened"
        );
        // Reunification: the merged state (alarm = Power, component =
        // Fuse) satisfies the constraint; reconciliation clears the
        // threats without application involvement.
        cluster.heal();
        let summary = cluster.reconcile(
            &mut dedisys_core::HighestVersionWins,
            &mut dedisys_core::DeferAll,
        );
        assert_eq!(summary.constraints.violations, 0);
        assert!(cluster.threats().is_empty());
    }
}
