//! Parameterized workloads for the Chapter 5 throughput studies.

use dedisys_core::Cluster;
use dedisys_object::{AppDescriptor, ClassDescriptor, EntityState, MethodDescriptor, MethodKind};
use dedisys_types::{NodeId, ObjectId, Result, SimDuration, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The benchmark entity of the DedisysTest application (§5.1): one
/// string attribute plus empty methods with/without constraints.
pub fn bench_app() -> AppDescriptor {
    AppDescriptor::new("dedisys-test").with_class(
        ClassDescriptor::new("Item")
            .with_field("value", Value::from(""))
            .with_method(MethodDescriptor::with_kind(
                "emptyMethod",
                MethodKind::Write,
            ))
            .with_method(MethodDescriptor::with_kind(
                "emptyConstrained",
                MethodKind::Write,
            ))
            .with_method(MethodDescriptor::with_kind(
                "emptyThreatened",
                MethodKind::Write,
            )),
    )
}

/// Creates `count` items through individual transactions; returns
/// their ids.
///
/// # Errors
///
/// Propagates transaction failures.
pub fn create_items(cluster: &mut Cluster, node: NodeId, count: usize) -> Result<Vec<ObjectId>> {
    let mut ids = Vec::with_capacity(count);
    for i in 0..count {
        let id = ObjectId::new("Item", format!("I-{i}"));
        let entity_id = id.clone();
        cluster.run_tx(node, move |c, tx| {
            c.create(node, tx, EntityState::for_class(c.app(), &entity_id)?)
        })?;
        ids.push(id);
    }
    Ok(ids)
}

/// One operation kind of the §5.1 measurement mix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchOp {
    /// Create a fresh entity.
    Create,
    /// `setValue("…")`.
    Setter,
    /// `getValue()`.
    Getter,
    /// An empty method without constraints.
    Empty,
    /// An empty method with an (always satisfied/violated) constraint.
    EmptyConstrained,
    /// Delete the entity.
    Delete,
}

/// Throughput outcome of a timed batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Throughput {
    /// Operations completed successfully.
    pub ops: u64,
    /// Operations that failed.
    pub failed: u64,
    /// Virtual time consumed.
    pub elapsed: SimDuration,
}

impl Throughput {
    /// Successful operations per virtual second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.ops as f64 / self.elapsed.as_secs_f64()
    }
}

/// Runs `count` repetitions of `op` against the item pool, one
/// transaction per operation (the §5.1 measurement discipline),
/// measuring virtual time.
pub fn run_batch(
    cluster: &mut Cluster,
    node: NodeId,
    op: BenchOp,
    items: &[ObjectId],
    count: usize,
) -> Throughput {
    let start = cluster.now();
    let mut ok = 0u64;
    let mut failed = 0u64;
    for i in 0..count {
        let result: Result<()> = match op {
            BenchOp::Create => {
                let id = ObjectId::new("Item", format!("C-{}-{i}", start.as_nanos()));
                cluster.run_tx(node, move |c, tx| {
                    c.create(node, tx, EntityState::for_class(c.app(), &id)?)
                })
            }
            BenchOp::Setter => {
                let id = items[i % items.len()].clone();
                cluster.run_tx(node, move |c, tx| {
                    c.set_field(node, tx, &id, "value", Value::from("x"))
                })
            }
            BenchOp::Getter => {
                let id = items[i % items.len()].clone();
                cluster
                    .run_tx(node, move |c, tx| c.get_field(node, tx, &id, "value"))
                    .map(|_| ())
            }
            BenchOp::Empty => {
                let id = items[i % items.len()].clone();
                cluster
                    .run_tx(node, move |c, tx| {
                        c.invoke(node, tx, &id, "emptyMethod", vec![])
                    })
                    .map(|_| ())
            }
            BenchOp::EmptyConstrained => {
                let id = items[i % items.len()].clone();
                cluster
                    .run_tx(node, move |c, tx| {
                        c.invoke(node, tx, &id, "emptyConstrained", vec![])
                    })
                    .map(|_| ())
            }
            BenchOp::Delete => {
                let id = items[i % items.len()].clone();
                cluster.run_tx(node, move |c, tx| c.delete(node, tx, &id))
            }
        };
        match result {
            Ok(()) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    Throughput {
        ops: ok,
        failed,
        elapsed: cluster.now().since(start),
    }
}

/// A read/write mix driven across the item pool with a seeded RNG —
/// used for the "read-to-write ratio" sensitivity analyses.
pub fn run_mixed(
    cluster: &mut Cluster,
    node: NodeId,
    items: &[ObjectId],
    total_ops: usize,
    write_fraction: f64,
    seed: u64,
) -> Throughput {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = cluster.now();
    let mut ok = 0u64;
    let mut failed = 0u64;
    for _ in 0..total_ops {
        let id = items[rng.gen_range(0..items.len())].clone();
        let write = rng.gen_bool(write_fraction);
        let result: Result<()> = if write {
            cluster.run_tx(node, move |c, tx| {
                c.set_field(node, tx, &id, "value", Value::from("w"))
            })
        } else {
            cluster
                .run_tx(node, move |c, tx| c.get_field(node, tx, &id, "value"))
                .map(|_| ())
        };
        match result {
            Ok(()) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    Throughput {
        ops: ok,
        failed,
        elapsed: cluster.now().since(start),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dedisys_core::ClusterBuilder;

    fn cluster(nodes: u32) -> Cluster {
        ClusterBuilder::new(nodes, bench_app()).build().unwrap()
    }

    #[test]
    fn batches_measure_virtual_time() {
        let mut c = cluster(1);
        let items = create_items(&mut c, NodeId(0), 5).unwrap();
        let t = run_batch(&mut c, NodeId(0), BenchOp::Setter, &items, 20);
        assert_eq!(t.ops, 20);
        assert!(t.ops_per_sec() > 0.0);
    }

    #[test]
    fn getters_are_faster_than_setters() {
        let mut c = cluster(2);
        let items = create_items(&mut c, NodeId(0), 5).unwrap();
        let set = run_batch(&mut c, NodeId(0), BenchOp::Setter, &items, 50);
        let get = run_batch(&mut c, NodeId(0), BenchOp::Getter, &items, 50);
        assert!(
            get.ops_per_sec() > set.ops_per_sec() * 2.0,
            "get {} vs set {}",
            get.ops_per_sec(),
            set.ops_per_sec()
        );
    }

    #[test]
    fn mixed_workload_is_deterministic_per_seed() {
        let mut c1 = cluster(1);
        let items1 = create_items(&mut c1, NodeId(0), 10).unwrap();
        let t1 = run_mixed(&mut c1, NodeId(0), &items1, 100, 0.3, 42);
        let mut c2 = cluster(1);
        let items2 = create_items(&mut c2, NodeId(0), 10).unwrap();
        let t2 = run_mixed(&mut c2, NodeId(0), &items2, 100, 0.3, 42);
        assert_eq!(t1, t2);
    }
}
