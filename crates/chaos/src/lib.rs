//! # dedisys-chaos — deterministic chaos engine
//!
//! Robustness harness for the DeDiSys reproduction: seeded fault
//! schedules ([`FaultPlan`]), a workload/fault interleaver
//! ([`ChaosEngine`]) and safety invariants ([`InvariantChecker`])
//! checked after every injected fault.
//!
//! Everything runs on the shared virtual clock, and every random
//! decision flows from one explicit seed through [`ChaosRng`]
//! (SplitMix64 — no external RNG dependency), so a chaos run is a
//! *reproducible artifact*: the seed of a failing soak is the bug
//! report, and two runs of the same seed write byte-identical JSONL
//! traces.
//!
//! ```
//! use dedisys_chaos::{ChaosConfig, ChaosEngine};
//!
//! let report = ChaosEngine::new(ChaosConfig {
//!     seed: 42,
//!     ops: 60,
//!     faults: 6,
//!     ..ChaosConfig::default()
//! })
//! .unwrap()
//! .run()
//! .unwrap();
//! assert!(report.clean(), "{:?}", report.violations);
//! ```

#![warn(missing_docs)]

mod engine;
mod federation;
mod invariant;
mod plan;
mod rng;

pub use engine::{ChaosConfig, ChaosEngine, ChaosReport};
pub use federation::{
    check_federation, FederationChaosConfig, FederationChaosEngine, FederationChaosReport,
};
pub use invariant::{InvariantChecker, InvariantViolation};
pub use plan::{FaultPlan, FaultStep, PlannedFault};
pub use rng::ChaosRng;
