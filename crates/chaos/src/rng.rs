//! A tiny deterministic RNG (SplitMix64) for seed-reproducible fault
//! schedules and workloads.
//!
//! The crate deliberately avoids an external RNG dependency: the whole
//! point of the chaos engine is that a fixed seed yields a
//! byte-identical run, so the generator must be fully specified here.

/// SplitMix64: tiny, fast, and statistically fine for schedule
/// generation (not for cryptography).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// Creates a generator from `seed`. Equal seeds yield equal
    /// sequences forever.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `0..bound` (`bound == 0` returns 0). The
    /// modulo bias is irrelevant for schedule generation.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }

    /// `true` with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }

    /// Picks one element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_seeds_equal_sequences() {
        let mut a = ChaosRng::new(42);
        let mut b = ChaosRng::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaosRng::new(1);
        let mut b = ChaosRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = ChaosRng::new(7);
        assert!((0..1000).all(|_| rng.below(13) < 13));
        assert_eq!(rng.below(0), 0);
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut rng = ChaosRng::new(9);
        let hits = (0..1000).filter(|_| rng.chance(25)).count();
        assert!((150..350).contains(&hits), "hits = {hits}");
    }
}
